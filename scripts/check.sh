#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# solver-cache perf smoke (writes BENCH_solver_cache.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== perf smoke (BENCH_solver_cache.json)"
cargo build --release -p bench --quiet
./target/release/perf_smoke

echo "== OK"
