#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# solver-cache perf smoke (writes BENCH_solver_cache.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== perf smoke (BENCH_solver_cache.json, BENCH_solver_tiers.json, BENCH_solver_incremental.json, BENCH_interproc.json)"
cargo build --release -p bench --quiet
./target/release/perf_smoke
# The solver cache must pay for itself: with hash-consed terms the key is
# a Vec of interned ids with a precomputed digest, so on every case where
# the cache sees any hits at all the cached run may not be slower than the
# uncached one. Cases with a zero hit rate (all-miss workloads) only
# measure store overhead and are exempt.
python3 - <<'EOF'
import json
bench = json.load(open("BENCH_solver_cache.json"))
for case in bench["cases"]:
    if case["cache_hit_rate"] > 0:
        s = case["speedup_cache"]
        assert s >= 1.0, (
            f"{case['case']}: cached solve is slower than uncached "
            f"(speedup {s:.3f}x < 1.0 at hit rate {case['cache_hit_rate']:.1%})")
        print(f"solver cache gate: {case['case']} {s:.3f}x "
              f"(hit rate {case['cache_hit_rate']:.1%}, floor 1.0)")
mb = bench["cachekey_microbench"]
assert mb["speedup_interned"] >= 1.0, (
    f"interned cache-key construction is slower than the deep baseline "
    f"({mb['speedup_interned']:.3f}x < 1.0)")
print(f"cache-key microbench gate: interned {mb['interned_ns_per_key']:.0f} ns/key vs "
      f"deep {mb['deep_baseline_ns_per_key']:.0f} ns/key "
      f"({mb['speedup_interned']:.2f}x, floor 1.0)")
EOF
# Disabled tracing must cost nothing: the gap between the two untraced
# samples in the trace_overhead footer is pure run-to-run noise and must
# stay within ±2%.
python3 - <<'EOF'
import json
overhead = json.load(open("BENCH_solver_cache.json"))["trace_overhead"]
pct = overhead["disabled_overhead_percent"]
assert abs(pct) <= 2.0, f"disabled-tracing overhead {pct:+.2f}% exceeds 2%"
print(f"trace overhead gate: disabled {pct:+.2f}% (limit ±2%)")
EOF
# The tiered backend must carry its weight: never more than 2% slower
# than simplex-only on the corpus slice (it should be faster), and the
# cheap tiers must answer at least 25% of executed queries.
python3 - <<'EOF'
import json
t = json.load(open("BENCH_solver_tiers.json"))
ratio = t["tiered_ms"] / t["simplex_only_ms"]
assert ratio <= 1.02, (
    f"tiered backend {t['tiered_ms']:.2f} ms is {100 * (ratio - 1):.1f}% slower "
    f"than simplex-only {t['simplex_only_ms']:.2f} ms (limit +2%)")
rate = t["tier1_answer_rate"]
assert rate >= 0.25, f"tier-1 answer rate {rate:.1%} below the 25% floor"
print(f"solver tiers gate: tiered/simplex {ratio:.3f}x (limit 1.02), "
      f"tier-1 rate {rate:.1%} (floor 25%)")
EOF
# Warm prefix-sharing sessions must pay for themselves: incremental
# solving may never be slower than scratch on the corpus slice (it
# should be meaningfully faster; equivalence of the *answers* is the
# tests' job — tests/incremental_differential.rs).
python3 - <<'EOF'
import json
inc = json.load(open("BENCH_solver_incremental.json"))
ratio = inc["incremental_vs_scratch_ratio"]
assert ratio <= 1.0, (
    f"incremental solving {inc['incremental_ms']:.2f} ms is slower than "
    f"scratch {inc['scratch_ms']:.2f} ms ({ratio:.3f}x, limit 1.0)")
print(f"solver incremental gate: incremental/scratch {ratio:.3f}x (limit 1.0)")
EOF
# Summary application must beat inlining on the multi-function slice: the
# steady-state (warm-table) request path collapses callee path spaces to
# ψ atoms, so generation + inference must come in at no more than 0.85x
# the inline-mode wall clock. Equivalence of the inferred ψ is the tests'
# job — tests/interproc_differential.rs.
python3 - <<'EOF'
import json
ip = json.load(open("BENCH_interproc.json"))
ratio = ip["summary_vs_inline_ratio"]
assert ratio <= 0.85, (
    f"summary-mode inference {ip['summary_ms']:.2f} ms is {ratio:.3f}x inline "
    f"{ip['inline_ms']:.2f} ms over {ip['methods']} methods (limit 0.85)")
assert ip["table_hits"] >= ip["table_entries"] > 0, (
    f"summary table was not warm: {ip['table_hits']} hits over "
    f"{ip['table_entries']} entries")
print(f"interproc gate: summary/inline {ratio:.3f}x (limit 0.85) over "
      f"{ip['methods']} methods, {ip['summary_applies']} summary applies")
EOF

echo "== trace smoke (preinfer --trace-out)"
cargo build --release --bin preinfer --quiet
cat > trace_smoke.ml <<'EOF'
fn lookup(table [int], key int) -> int {
    if (key < 0) { return -1; }
    return table[key % 4];
}
EOF
./target/release/preinfer trace_smoke.ml --jobs 1 --trace-out trace_smoke.jsonl
# Every line must parse as JSON, and with --jobs 1 the pipeline runs
# inline, so the top-level stage spans are disjoint: their durations must
# sum to no more than the run event's wall clock.
python3 - <<'EOF'
import json
lines = [json.loads(l) for l in open("trace_smoke.jsonl")]
assert lines, "empty trace"
top = {e["id"] for e in lines if e["ev"] == "span_start" and e.get("parent") is None}
spans = sum(e["dur_us"] for e in lines if e["ev"] == "span_end" and e["id"] in top)
run = next(e for e in lines if e["ev"] == "run")
assert spans <= run["dur_us"], f"stage spans ({spans} us) exceed wall clock ({run['dur_us']} us)"
print(f"trace smoke: {len(lines)} events, {len(top)} top-level spans, "
      f"{spans} of {run['dur_us']} us inside top-level stages")
EOF

echo "== trace analysis smoke (preinfer-trace)"
cargo build --release --bin preinfer-trace --quiet
./target/release/preinfer-trace trace_smoke.jsonl --folded - > trace_smoke.txt
# The analyzer's exclusive self-times are disjoint by construction, so
# their total can never exceed the run's wall clock.
python3 - <<'EOF'
import re
report = open("trace_smoke.txt").read()
m = re.search(r"exclusive total ([\d.]+) ms over a ([\d.]+) ms wall clock", report)
assert m, f"preinfer-trace printed no exclusive-total line:\n{report}"
excl, wall = float(m.group(1)), float(m.group(2))
assert excl <= wall, f"exclusive total {excl} ms exceeds wall clock {wall} ms"
folded = [l for l in report.splitlines() if re.fullmatch(r"[\w;]+ \d+", l)]
assert folded, f"preinfer-trace emitted no folded stacks:\n{report}"
print(f"trace analysis smoke: exclusive {excl} ms <= wall {wall} ms, "
      f"{len(folded)} folded stacks")
EOF
rm -f trace_smoke.ml trace_smoke.jsonl trace_smoke.txt

echo "== server smoke (preinferd + preinfer-client)"
cargo build --release -p server --quiet
./target/release/preinferd --addr 127.0.0.1:0 --trace-sample 2 >server_smoke.out 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f server_smoke.out server_metrics.txt server_trace.jsonl' EXIT
# Wait for the bound-port announcement (port 0 → OS-assigned).
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' server_smoke.out | head -n1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "preinferd never announced its address"; exit 1; }
# A corpus slice, each served ψ checked byte-for-byte against the offline
# pipeline (the client exits non-zero on any divergence).
for SUBJECT in guarded_div reverse_words binary_search; do
    ./target/release/preinfer-client --addr "$ADDR" corpus "$SUBJECT" --check-offline
done
# The metrics verb must serve well-formed Prometheus text exposition
# (traced requests may append OpenMetrics exemplars after " # " on
# histogram bucket lines — validated, then stripped before the
# version-0.0.4 checks).
./target/release/preinfer-client --addr "$ADDR" metrics > server_metrics.txt
python3 - server_metrics.txt <<'EOF'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty metrics exposition"
names = set()
exemplars = 0
for line in lines:
    if line.startswith("# "):
        kind, name = line[2:].split(" ", 2)[:2]
        assert kind in ("HELP", "TYPE"), f"bad comment line: {line}"
        names.add(name)
        continue
    sample, sep, exemplar = line.partition(" # ")
    if sep:
        assert "_bucket{" in sample, f"exemplar on a non-bucket line: {line}"
        assert re.fullmatch(r'\{trace_id="[0-9a-f]{32}"\} \d+(\.\d+)?', exemplar), \
            f"malformed exemplar: {line}"
        exemplars += 1
    series, value = sample.rsplit(" ", 1)
    assert value == "+Inf" or float(value) >= 0, f"bad sample value: {line}"
    base = series.split("{")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        base = base.removesuffix(suffix)
    assert base in names, f"sample without HELP/TYPE metadata: {line}"
print(f"metrics smoke: {len(lines)} exposition lines, {len(names)} metric "
      f"families, {exemplars} exemplars")
EOF
python3 - <<'EOF'
lines = open("server_metrics.txt").read().splitlines()
for needle in ("preinfer_infer_results_total{result=\"ok\"} 3",
               "preinfer_queue_capacity 64",
               "preinfer_traces_retained_total{reason=\"head\"} 2"):
    assert any(l == needle for l in lines), f"exposition lacks `{needle}`"
EOF
# A head-sampled trace must round-trip through the analyzer. (Analyze to
# a file, not a pipe: `grep -q` exiting at first match would SIGPIPE the
# analyzer mid-write, which `pipefail` turns into a spurious failure.)
./target/release/preinfer-client --addr "$ADDR" trace --last 1 > server_trace.jsonl
./target/release/preinfer-trace server_trace.jsonl > server_trace_report.txt
grep -q "exclusive total" server_trace_report.txt \
    || { echo "preinfer-trace could not analyze a served trace"; exit 1; }
rm -f server_trace_report.txt
# SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "preinferd exited non-zero after SIGTERM"; exit 1; }
trap - EXIT
rm -f server_smoke.out server_metrics.txt server_trace.jsonl

echo "== interproc summary smoke (preinferd --interproc summary)"
# A summary-mode daemon over two passes of the multi-function slice: every
# served ψ stays byte-identical to the offline (inline) pipeline, the
# daemon-lifetime `summaries` stats block is populated, and the second
# pass strictly increases the table hit rate (α-equivalent callee closures
# resolve from the shared table instead of being re-inferred).
./target/release/preinferd --addr 127.0.0.1:0 --interproc summary >summary_smoke.out 2>&1 &
SUMMARY_PID=$!
trap 'kill "$SUMMARY_PID" 2>/dev/null || true; rm -f summary_smoke.out summary_stats1.json summary_stats2.json' EXIT
SADDR=""
for _ in $(seq 1 100); do
    SADDR="$(sed -n 's/^listening on //p' summary_smoke.out | head -n1)"
    [ -n "$SADDR" ] && break
    sleep 0.1
done
[ -n "$SADDR" ] || { echo "summary-mode preinferd never announced its address"; exit 1; }
for SUBJECT in lift_guard chain_depth diamond branchy_scale; do
    ./target/release/preinfer-client --addr "$SADDR" corpus "$SUBJECT" --check-offline
done
./target/release/preinfer-client --addr "$SADDR" stats > summary_stats1.json
for SUBJECT in lift_guard chain_depth diamond branchy_scale; do
    ./target/release/preinfer-client --addr "$SADDR" corpus "$SUBJECT" --check-offline
done
./target/release/preinfer-client --addr "$SADDR" stats > summary_stats2.json
python3 - <<'EOF'
import json
s1 = json.load(open("summary_stats1.json"))["summaries"]
s2 = json.load(open("summary_stats2.json"))["summaries"]
assert s1["mode"] == "summary", s1
for field in ("inserts", "entries", "applies", "misses"):
    assert s1[field] > 0, f"cold pass left summaries.{field} at zero: {s1}"
rate1 = s1["hits"] / (s1["hits"] + s1["misses"])
rate2 = s2["hits"] / (s2["hits"] + s2["misses"])
assert s2["hits"] > s1["hits"], f"second pass never hit the table: {s1} -> {s2}"
assert rate2 > rate1, f"hit rate did not increase across passes: {rate1:.3f} -> {rate2:.3f}"
print(f"interproc summary smoke: {s2['entries']} table entries, hit rate "
      f"{rate1:.1%} -> {rate2:.1%}, {s2['applies']} applies, {s2['fallbacks']} fallbacks")
EOF
kill -TERM "$SUMMARY_PID"
wait "$SUMMARY_PID" || { echo "summary-mode preinferd exited non-zero after SIGTERM"; exit 1; }
trap - EXIT
rm -f summary_smoke.out summary_stats1.json summary_stats2.json

echo "== router smoke (2 shards + preinfer-router)"
# Two shard daemons (one per io core) fronted by the key-affinity router;
# a corpus slice served *through* the router must still be byte-identical
# to the offline pipeline, and SIGTERM must drain all three processes.
./target/release/preinferd --addr 127.0.0.1:0 --io epoll >shard0.out 2>&1 &
SHARD0_PID=$!
./target/release/preinferd --addr 127.0.0.1:0 --io threads >shard1.out 2>&1 &
SHARD1_PID=$!
trap 'kill "$SHARD0_PID" "$SHARD1_PID" 2>/dev/null || true; rm -f shard0.out shard1.out router_smoke.out' EXIT
SHARD0=""; SHARD1=""
for _ in $(seq 1 100); do
    SHARD0="$(sed -n 's/^listening on //p' shard0.out | head -n1)"
    SHARD1="$(sed -n 's/^listening on //p' shard1.out | head -n1)"
    [ -n "$SHARD0" ] && [ -n "$SHARD1" ] && break
    sleep 0.1
done
[ -n "$SHARD0" ] && [ -n "$SHARD1" ] || { echo "shard daemons never announced"; exit 1; }
# --trace-sample 1: every routed infer is traced end-to-end — the ψ
# differential below doubles as the routed trace-neutrality check.
./target/release/preinfer-router --addr 127.0.0.1:0 --shard "$SHARD0" --shard "$SHARD1" \
    --trace-sample 1 >router_smoke.out 2>&1 &
ROUTER_PID=$!
trap 'kill "$ROUTER_PID" "$SHARD0_PID" "$SHARD1_PID" 2>/dev/null || true; rm -f shard0.out shard1.out router_smoke.out router_trace_hdr.txt router_trace.jsonl router_trace_report.txt router_metrics.txt' EXIT
RADDR=""
for _ in $(seq 1 100); do
    RADDR="$(sed -n 's/^listening on //p' router_smoke.out | head -n1)"
    [ -n "$RADDR" ] && break
    sleep 0.1
done
[ -n "$RADDR" ] || { echo "preinfer-router never announced its address"; exit 1; }
for SUBJECT in guarded_div reverse_words binary_search; do
    ./target/release/preinfer-client --addr "$RADDR" corpus "$SUBJECT" --check-offline
done
# Merged stats must report both shards live behind the router.
./target/release/preinfer-client --addr "$RADDR" stats | python3 -c '
import json, sys
s = json.load(sys.stdin)
r = s["router"]
assert r["shards"] == 2, r
assert len(s["shards"]) == 2, "merged stats must nest both shard reports"
assert r["unavailable"] == 0, "no request may have failed over"
print(f"router smoke: 2 shards live, {r['\''forwarded'\'']} requests forwarded")'

echo "== distributed trace smoke (stitched multi-process trace)"
# Pull the router's most recent retained trace id, then fetch the
# stitched trace by trace_id and analyze the merged stream: spans from
# both processes must join into one tree whose exclusive total stays
# within the router's wall clock.
./target/release/preinfer-client --addr "$RADDR" trace --last 1 \
    >/dev/null 2>router_trace_hdr.txt
TID="$(sed -n 's/.*trace_id=\([0-9a-f]\{32\}\).*/\1/p' router_trace_hdr.txt | head -n1)"
[ -n "$TID" ] || { echo "router retained no traced request"; cat router_trace_hdr.txt; exit 1; }
./target/release/preinfer-client --addr "$RADDR" trace --trace-id "$TID" \
    >router_trace.jsonl 2>router_trace_hdr.txt
grep -q "preinfer-router" router_trace_hdr.txt \
    || { echo "stitched trace lacks the router part"; cat router_trace_hdr.txt; exit 1; }
grep -q "shard=" router_trace_hdr.txt \
    || { echo "stitched trace lacks a shard part"; cat router_trace_hdr.txt; exit 1; }
./target/release/preinfer-trace - < router_trace.jsonl > router_trace_report.txt
python3 - "$TID" <<'EOF'
import re, sys
tid = sys.argv[1]
report = open("router_trace_report.txt").read()
assert f"trace {tid}: preinfer-router → preinferd" in report, \
    f"merged analysis did not join both processes:\n{report}"
m = re.search(r"exclusive total ([\d.]+) ms over a ([\d.]+) ms wall clock", report)
assert m, f"no exclusive-total line:\n{report}"
excl, wall = float(m.group(1)), float(m.group(2))
assert excl <= wall, f"cross-tier exclusive {excl} ms exceeds router wall clock {wall} ms"
assert "cross-tier exclusive self-time:" in report, f"no cross-tier split:\n{report}"
for stage in ("route", "upstream_rtt", "run"):
    assert re.search(rf"^\s+{stage} \(", report, re.M), \
        f"critical path lacks the {stage} span:\n{report}"
print(f"distributed trace smoke: trace {tid[:8]}… stitched across 2 processes, "
      f"exclusive {excl} ms <= wall {wall} ms")
EOF
# Merged metrics must stay valid exposition and now carry shard-side
# exemplars linking latency buckets to this trace id's family.
./target/release/preinfer-client --addr "$RADDR" metrics > router_metrics.txt
python3 - <<'EOF'
lines = open("router_metrics.txt").read().splitlines()
assert any(" # {trace_id=\"" in l for l in lines), \
    "traced routed requests left no exemplars in the merged exposition"
assert any("preinfer_traces_retained_total{reason=\"head\"}" in l and "shard" not in l
           for l in lines), "router's own trace-retention counters missing"
assert any("preinfer_traces_retained_total{shard=\"0\",reason=\"context\"}" in l
           or "preinfer_traces_retained_total{shard=\"1\",reason=\"context\"}" in l
           for l in lines), "shards did not retain context-sampled traces"
exemplars = sum(" # {trace_id=\"" in l for l in lines)
print(f"router metrics smoke: {len(lines)} lines, {exemplars} exemplars")
EOF
rm -f router_trace_hdr.txt router_trace.jsonl router_trace_report.txt router_metrics.txt
# SIGTERM must drain the router and both shards, all exiting 0.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "preinfer-router exited non-zero after SIGTERM"; exit 1; }
kill -TERM "$SHARD0_PID" "$SHARD1_PID"
wait "$SHARD0_PID" || { echo "shard 0 exited non-zero after SIGTERM"; exit 1; }
wait "$SHARD1_PID" || { echo "shard 1 exited non-zero after SIGTERM"; exit 1; }
trap - EXIT
rm -f shard0.out shard1.out router_smoke.out

echo "== server bench gate (BENCH_server.json, epoll core, pipelined)"
# The event core exists to lift serving throughput: with 64 pipelined
# connections and the response memo on, it must clear 4x the 5.4k rps
# thread-per-connection baseline recorded in ROADMAP.md.
./target/release/preinferd --addr 127.0.0.1:0 --io epoll --memo on >bench_server.out 2>&1 &
BENCH_PID=$!
trap 'kill "$BENCH_PID" 2>/dev/null || true; rm -f bench_server.out' EXIT
BADDR=""
for _ in $(seq 1 100); do
    BADDR="$(sed -n 's/^listening on //p' bench_server.out | head -n1)"
    [ -n "$BADDR" ] && break
    sleep 0.1
done
[ -n "$BADDR" ] || { echo "bench daemon never announced its address"; exit 1; }
./target/release/preinfer-client --addr "$BADDR" load \
    --requests 30000 --concurrency 64 --pipeline 16 \
    --label-io epoll --label-shards 1 --out BENCH_server.json
kill -TERM "$BENCH_PID"
wait "$BENCH_PID" || { echo "bench daemon exited non-zero after SIGTERM"; exit 1; }
trap - EXIT
rm -f bench_server.out
python3 - <<'EOF'
import json
b = json.load(open("BENCH_server.json"))
baseline = 5400.0  # threaded core, 8 unpipelined connections (ROADMAP.md)
floor = 4 * baseline
assert b["io_mode"] == "epoll" and b["concurrency"] >= 64, b
assert b["failed"] == 0, f"bench saw {b['failed']} failed requests"
rps = b["throughput_rps"]
assert rps >= floor, f"epoll core {rps:.0f} rps below the {floor:.0f} rps gate (4x {baseline:.0f})"
# The log-linear histogram must resolve the latency tail: distinct
# quantiles, not a saturated top bucket collapsing p50/p99 together.
p50, p90, p99 = b["p50_ms"], b["p90_ms"], b["p99_ms"]
assert p50 < p90 < p99, f"degenerate latency tail: p50 {p50} / p90 {p90} / p99 {p99} ms"
print(f"server bench gate: {rps:.0f} rps >= {floor:.0f} ({rps / baseline:.1f}x the threaded baseline), "
      f"p50 {p50:.1f} / p90 {p90:.1f} / p99 {p99:.1f} / p99.9 {b['p999_ms']:.1f} ms")
EOF

echo "== routed bench gate (BENCH_server_routed.json, 2 shards, tracing disabled)"
# Pipelined load through the router with tracing off: the hot routed
# path must carry the pipelined load cleanly, and the log-linear
# histograms must report a real (non-clamped, distinct-quantile) tail.
./target/release/preinferd --addr 127.0.0.1:0 --io epoll --memo on >rb_shard0.out 2>&1 &
RB0_PID=$!
./target/release/preinferd --addr 127.0.0.1:0 --io epoll --memo on >rb_shard1.out 2>&1 &
RB1_PID=$!
trap 'kill "$RB0_PID" "$RB1_PID" 2>/dev/null || true; rm -f rb_shard0.out rb_shard1.out rb_router.out' EXIT
RB0=""; RB1=""
for _ in $(seq 1 100); do
    RB0="$(sed -n 's/^listening on //p' rb_shard0.out | head -n1)"
    RB1="$(sed -n 's/^listening on //p' rb_shard1.out | head -n1)"
    [ -n "$RB0" ] && [ -n "$RB1" ] && break
    sleep 0.1
done
[ -n "$RB0" ] && [ -n "$RB1" ] || { echo "routed-bench shards never announced"; exit 1; }
./target/release/preinfer-router --addr 127.0.0.1:0 --shard "$RB0" --shard "$RB1" \
    >rb_router.out 2>&1 &
RBR_PID=$!
trap 'kill "$RBR_PID" "$RB0_PID" "$RB1_PID" 2>/dev/null || true; rm -f rb_shard0.out rb_shard1.out rb_router.out' EXIT
RBADDR=""
for _ in $(seq 1 100); do
    RBADDR="$(sed -n 's/^listening on //p' rb_router.out | head -n1)"
    [ -n "$RBADDR" ] && break
    sleep 0.1
done
[ -n "$RBADDR" ] || { echo "routed-bench router never announced"; exit 1; }
./target/release/preinfer-client --addr "$RBADDR" load \
    --requests 20000 --concurrency 64 --pipeline 16 \
    --label-io epoll --label-shards 2 --out BENCH_server_routed.json
kill -TERM "$RBR_PID"
wait "$RBR_PID" || { echo "routed-bench router exited non-zero after SIGTERM"; exit 1; }
kill -TERM "$RB0_PID" "$RB1_PID"
wait "$RB0_PID" || { echo "routed-bench shard 0 exited non-zero"; exit 1; }
wait "$RB1_PID" || { echo "routed-bench shard 1 exited non-zero"; exit 1; }
trap - EXIT
rm -f rb_shard0.out rb_shard1.out rb_router.out
python3 - <<'EOF'
import json
b = json.load(open("BENCH_server_routed.json"))
assert b["failed"] == 0, f"routed bench saw {b['failed']} failed requests"
p50, p90, p99 = b["p50_ms"], b["p90_ms"], b["p99_ms"]
assert p50 < p90 < p99, f"degenerate routed tail: p50 {p50} / p90 {p90} / p99 {p99} ms"
print(f"routed bench gate: {b['throughput_rps']:.0f} rps over 2 shards, "
      f"p50 {p50:.1f} / p90 {p90:.1f} / p99 {p99:.1f} / p99.9 {b['p999_ms']:.1f} ms")
EOF

echo "== OK"
