#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# solver-cache perf smoke (writes BENCH_solver_cache.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== perf smoke (BENCH_solver_cache.json)"
cargo build --release -p bench --quiet
./target/release/perf_smoke

echo "== server smoke (preinferd + preinfer-client)"
cargo build --release -p server --quiet
./target/release/preinferd --addr 127.0.0.1:0 >server_smoke.out 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f server_smoke.out' EXIT
# Wait for the bound-port announcement (port 0 → OS-assigned).
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' server_smoke.out | head -n1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "preinferd never announced its address"; exit 1; }
# A corpus slice, each served ψ checked byte-for-byte against the offline
# pipeline (the client exits non-zero on any divergence).
for SUBJECT in guarded_div reverse_words binary_search; do
    ./target/release/preinfer-client --addr "$ADDR" corpus "$SUBJECT" --check-offline
done
# SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "preinferd exited non-zero after SIGTERM"; exit 1; }
trap - EXIT
rm -f server_smoke.out

echo "== OK"
