//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_recursive`, `boxed`, tuples, ranges, `Just`,
//! `Union`/`prop_oneof!`, `collection::vec`, `option::of`, `bool::ANY`,
//! `num::u64::ANY`), the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`test_runner::TestRunner`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the generated inputs as-is.
//! * **Fixed deterministic seed** per test function (plus the case index),
//!   so failures reproduce exactly; `PROPTEST_CASES` still scales the case
//!   count.
//! * `prop_recursive(depth, …)` expands the recursion eagerly `depth`
//!   times instead of targeting an expected size.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The random source handed to strategies.
    pub type TestRng = StdRng;

    /// Why a value could not be produced (kept for API compatibility; the
    /// shim never fails to generate).
    #[derive(Debug, Clone)]
    pub struct Reason(pub String);

    impl std::fmt::Display for Reason {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Test-loop configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count, after applying the `PROPTEST_CASES` override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; the shim trims it because the
            // heaviest properties here run an exact-rational solver per
            // case in debug builds. PROPTEST_CASES cranks it back up.
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives value generation for strategies.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed, documented seed.
        pub fn deterministic() -> Self {
            TestRunner { rng: TestRng::seed_from_u64(0x5EED_CAFE) }
        }

        /// A runner seeded explicitly (used by the [`crate::proptest!`]
        /// macro so each test function gets a distinct stream).
        pub fn from_seed(seed: u64) -> Self {
            TestRunner { rng: TestRng::seed_from_u64(seed) }
        }

        /// The underlying random source.
        pub fn rng_mut(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::{Reason, TestRng, TestRunner};
    use rand::Rng;
    use std::rc::Rc;

    /// A generated value. The real crate's value trees support shrinking;
    /// the shim's just hold the value.
    pub struct ValueTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree<T> {
        /// The current (only) value.
        pub fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + std::fmt::Debug + 'static;

        /// Draws one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Produces a (non-shrinking) value tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, Reason>
        where
            Self: Sized,
        {
            Ok(ValueTree { value: self.gen(runner.rng_mut()) })
        }

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: Clone + std::fmt::Debug + 'static,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheap clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Rc::new(self) }
        }

        /// Builds recursive values: `expand` receives a strategy for the
        /// inner (smaller) level and returns one level of structure above
        /// it. The shim expands eagerly `depth` times from the leaf
        /// strategy; `_desired_size` and `_expected_branch` are accepted
        /// for signature compatibility.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut levels = vec![leaf.clone()];
            let mut cur = leaf;
            for _ in 0..depth {
                cur = expand(cur).boxed();
                levels.push(cur.clone());
            }
            // Mix all depths so generated values vary in size.
            Union::new(levels).boxed()
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Rc::clone(&self.inner) }
        }
    }

    impl<T: Clone + std::fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen(&self, rng: &mut TestRng) -> T {
            self.inner.gen(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug + 'static> Strategy for Just<T> {
        type Value = T;

        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: Clone + std::fmt::Debug + 'static,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn gen(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Clone + std::fmt::Debug + 'static> Strategy for Union<T> {
        type Value = T;

        fn gen(&self, rng: &mut TestRng) -> T {
            let ix = rng.gen_range(0..self.arms.len());
            self.arms[ix].gen(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `Vec` of strategies generates element-wise (proptest compat).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.gen(rng)).collect()
        }
    }

    /// String literals act as regex strategies in proptest. The shim
    /// supports the one shape the workspace uses: a single character class
    /// with a `{min,max}` repetition, e.g. `"[ -~]{0,60}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn gen(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (shim)"));
            let n = rng.gen_range(min..=max);
            (0..n).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
        }
    }

    /// Parses `[<class>]{min,max}` into (alphabet, min, max).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = reps.split_once(',')?;
        let (min, max) = (lo.parse().ok()?, hi.parse().ok()?);
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || min > max {
            return None;
        }
        Some((alphabet, min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive element-count window.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `size`-many values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod num {
    pub mod u64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngCore;

        /// The strategy type behind [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `u64`, uniformly.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;

            fn gen(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current property case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Distinct deterministic stream per test function.
                let seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                let mut runner = $crate::test_runner::TestRunner::from_seed(seed);
                for case in 0..config.effective_cases() {
                    $(let $arg = $crate::strategy::Strategy::gen(&($strat), runner.rng_mut());)+
                    let inputs = ($(::core::clone::Clone::clone(&$arg),)+);
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {case} failed: {msg}\n  inputs ({}): {:?}",
                            stringify!($($arg),+),
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// The property-test entry macro (subset of proptest's syntax: an optional
/// `#![proptest_config(..)]` inner attribute followed by `fn` items whose
/// arguments are `name in strategy` bindings).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let s = (0i64..10, 0i64..=3).prop_map(|(a, b)| a * 10 + b);
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let v = s.gen(runner.rng_mut());
            assert!((0..=93).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..5).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 20, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut runner = TestRunner::deterministic();
        let mut saw_node = false;
        for _ in 0..200 {
            let t = tree.gen(runner.rng_mut());
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, T::Node(..));
        }
        assert!(saw_node, "recursion never expanded");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0i32..100, 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(v.len(), v.iter().map(|_| 1usize).sum::<usize>());
        }
    }
}
