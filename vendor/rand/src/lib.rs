//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the callers
//! rely on (every seed in the workspace is fixed).
//!
//! The value *sequences* differ from the real `rand` crate; nothing in the
//! workspace depends on specific sequences, only on determinism per seed.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64() % (hi - lo + 1)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // Compare the top 53 bits against the scaled probability.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-8i64..=8), b.gen_range(-8i64..=8));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&v));
            let u = rng.gen_range(0usize..9);
            assert!(u < 9);
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious balance: {trues}");
    }
}
