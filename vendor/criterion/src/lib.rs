//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`), [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it reports the
//! mean, minimum and maximum wall-clock time over `sample_size` samples,
//! which is enough to track the perf trajectory recorded in
//! `BENCH_solver_cache.json`.
//!
//! A benchmark name filter can be passed on the command line exactly like
//! criterion's substring filter (`cargo bench -- solver`).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One timed sample: runs the routine `iters` times.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back runs of `f`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A single benchmark's aggregated measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name` or bare `name`).
    pub id: String,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip flags cargo/the harness passes (e.g. `--bench`); the first
        // bare argument is a substring filter, like criterion's.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, sample_size: 20, measurements: Vec::new() }
    }
}

impl Criterion {
    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run(name.to_string(), sample_size, f);
        self
    }

    /// Opens a named group whose benches share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { c: self, name: name.to_string(), sample_size }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up sample sizes the iteration count so one sample takes
        // roughly 50ms (and at least one iteration).
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let warm = b.elapsed.max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(50).as_nanos() / warm.as_nanos()).clamp(1, 10_000) as u64;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed / iters as u32);
        }
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let min = *per_iter.iter().min().expect("at least one sample");
        let max = *per_iter.iter().max().expect("at least one sample");
        println!(
            "{id:<48} time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            per_iter.len(),
        );
        self.measurements.push(Measurement { id, mean, min, max });
    }
}

/// A group of related benchmarks (subset of criterion's).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.c.run(id, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion { filter: None, sample_size: 3, measurements: Vec::new() };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].mean >= c.measurements()[0].min);
    }

    #[test]
    fn groups_prefix_ids_and_filter_applies() {
        let mut c =
            Criterion { filter: Some("keep".into()), sample_size: 2, measurements: Vec::new() };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("keep_me", |b| b.iter(|| ()));
        g.bench_function("skip_me", |b| b.iter(|| ()));
        g.finish();
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].id, "g/keep_me");
    }
}
