//! # preinfer
//!
//! A complete Rust reproduction of **PreInfer: Automatic Inference of
//! Preconditions via Symbolic Analysis** (DSN 2018). This facade crate
//! re-exports the whole stack:
//!
//! * [`minilang`] — the program substrate (parser, type checker, runtime
//!   checks defining assertion-containing locations).
//! * [`symbolic`] — terms, predicates, path conditions, first-order
//!   formulas, the complexity metric, and the ground-truth spec DSL.
//! * [`solver`] — the constraint solver (simplex + branch & bound + theory
//!   layer) standing in for the SMT solver behind Pex.
//! * [`obs`] — observability: structured spans, stage counters and latency
//!   histograms threaded through every pipeline stage (zero-cost when off).
//! * [`interp`] / [`concolic`] — concrete and concolic execution.
//! * [`testgen`] — Pex-like generational test generation.
//! * [`preinfer_core`] — the paper's contribution: dynamic predicate
//!   pruning, collection-element generalization, precondition assembly,
//!   quality metrics.
//! * [`baselines`] — DySy and FixIt.
//! * [`subjects`] — the evaluation corpus with ground truths.
//! * [`report`] — drivers regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use preinfer::prelude::*;
//!
//! let tp = minilang::compile(
//!     "fn f(a [int], i int) -> int { return a[i]; }",
//! ).unwrap();
//! let suite = testgen::generate_tests(&tp, "f", &Default::default());
//! let acl = suite.triggered_acls()[0];
//! let inferred = preinfer_core::infer_precondition(
//!     &tp, "f", acl, &suite, &Default::default(),
//! ).expect("failing tests exist");
//! // ψ guards the failure seen at the ACL.
//! assert!(inferred.precondition.psi.complexity() < 10);
//! ```

pub use baselines;
pub use concolic;
pub use interp;
pub use minilang;
pub use obs;
pub use preinfer_core;
pub use report;
pub use solver;
pub use subjects;
pub use symbolic;
pub use testgen;

/// Convenient access to the most-used items.
pub mod prelude {
    pub use baselines::{infer_dysy, infer_fixit};
    pub use concolic::{run_concolic, ConcolicConfig, InterprocMode};
    pub use interp::{run, InterpConfig};
    pub use minilang::{compile, InputValue, MethodEntryState};
    pub use preinfer_core::{
        build_summaries, evaluate_precondition, infer_all_preconditions, infer_precondition,
        PreInferConfig, ProbeConfig, SummaryBuildConfig, SummaryTable,
    };
    pub use solver::{
        solve_preds, solve_preds_cached, BackendKind, CacheStats, Deadline, FuncSig,
        IncrementalCounters, IncrementalSession, IncrementalSnapshot, SolveResult, SolverCache,
        SolverConfig, TierCounters, TierSnapshot,
    };
    pub use symbolic::{parse_spec, Formula, PathCondition, Pred};
    pub use testgen::{generate_tests, TestGenConfig};
}
