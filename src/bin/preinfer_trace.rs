//! `preinfer-trace` — offline analysis of a recorded JSON-lines trace.
//!
//! ```text
//! preinfer-trace FILE|- [--top K] [--folded FILE]
//! ```
//!
//! Reads a trace produced by `preinfer --trace-out` or served by
//! `preinferd`'s `trace` verb (`preinfer-client trace --last 1 |
//! preinfer-trace -`), reconstructs the span tree from the parent links,
//! and reports where the time actually went. Stitched multi-process
//! traces (the router's `trace --trace-id X` verb) merge into one tree —
//! the shard's spans nest under the router's `upstream_rtt` span via the
//! propagated trace context — and additionally report the cross-tier
//! exclusive self-time split. The analysis reports:
//!
//! * per-stage totals with **exclusive self-time** (a span's duration
//!   minus its direct children and its own solver calls) next to the
//!   inclusive time the histograms report,
//! * the **critical path** — heaviest root span, descending into the
//!   heaviest child at each level,
//! * the **top-k slowest solver calls** (tier, cache lookup, predicate
//!   count), `--top K` (default 5),
//! * `--folded FILE` writes folded stacks (`stage;stage exclusive_us`)
//!   for standard flamegraph tooling (`-` for stdout).

use preinfer::obs::TraceAnalysis;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: preinfer-trace FILE|- [--top K] [--folded FILE]\n\
         \n\
         Analyzes a JSON-lines trace (from `preinfer --trace-out` or\n\
         `preinfer-client trace`): per-stage exclusive self-time, the\n\
         critical path, the --top K slowest solver calls (default 5), and\n\
         optionally folded stacks for flamegraphs (--folded FILE, `-` for\n\
         stdout)."
    );
    std::process::exit(2);
}

struct Options {
    input: String,
    top: usize,
    folded: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options { input: String::new(), top: 5, folded: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                opts.top = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--folded" => opts.folded = args.next().or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && (other == "-" || !other.starts_with('-')) => {
                opts.input = other.to_string()
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match read_input(&opts.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("preinfer-trace: cannot read {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let a = match TraceAnalysis::from_lines(text.lines()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("preinfer-trace: {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };

    if let Some(tid) = &a.trace_id {
        if a.processes.is_empty() {
            println!("trace {tid}");
        } else {
            println!("trace {tid}: {}", a.processes.join(" → "));
        }
    }
    if let Some(run) = &a.run {
        println!("run: func={} wall={:.3} ms", run.func, ms(run.dur_us));
    }
    println!(
        "{} event line(s) ({} skipped), {} span(s), {} solver call(s)",
        a.lines,
        a.skipped,
        a.spans.len(),
        a.solver_calls.len()
    );

    let totals = a.stage_totals();
    let excl_total = a.exclusive_total_us();
    println!("\nstage breakdown (exclusive = self-time, nested work subtracted):");
    println!("  {:>14} {:>7} {:>14} {:>14} {:>6}", "stage", "count", "inclusive", "exclusive", "%");
    for t in &totals {
        let pct =
            if excl_total > 0 { 100.0 * t.exclusive_us as f64 / excl_total as f64 } else { 0.0 };
        println!(
            "  {:>14} {:>7} {:>11.3} ms {:>11.3} ms {:>5.1}%",
            t.stage,
            t.count,
            ms(t.inclusive_us),
            ms(t.exclusive_us),
            pct
        );
    }
    println!(
        "  exclusive total {:.3} ms over a {:.3} ms wall clock",
        ms(excl_total),
        ms(a.wall_us())
    );

    // Stitched multi-process trace: split the exclusive total by tier.
    let per_process = a.process_totals();
    if per_process.len() >= 2 {
        println!("\ncross-tier exclusive self-time:");
        for (process, us) in &per_process {
            let pct = if excl_total > 0 { 100.0 * *us as f64 / excl_total as f64 } else { 0.0 };
            println!("  {:>16} {:>11.3} ms {:>5.1}%", process, ms(*us), pct);
        }
    }

    let path = a.critical_path();
    if !path.is_empty() {
        println!("\ncritical path (heaviest child at each level):");
        for (depth, step) in path.iter().enumerate() {
            println!(
                "  {:indent$}{} ({:.3} ms, span {})",
                "",
                step.stage,
                ms(step.dur_us),
                step.id,
                indent = depth * 2
            );
        }
    }

    let top = a.top_solver_calls(opts.top);
    if !top.is_empty() {
        println!("\ntop {} slowest solver call(s):", top.len());
        for c in &top {
            println!(
                "  {:>9.3} ms  tier={:<10} lookup={:<6} preds={:<4} verdict={}",
                ms(c.dur_us),
                c.tier,
                c.lookup,
                c.preds,
                c.verdict
            );
        }
    }

    if let Some(out) = &opts.folded {
        let folded = a.folded_stacks();
        let mut text = String::new();
        for (stack, us) in &folded {
            text.push_str(&format!("{stack} {us}\n"));
        }
        if out == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(out, &text) {
            eprintln!("preinfer-trace: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        } else {
            println!("\nwrote {} folded stack(s) to {out}", folded.len());
        }
    }
    ExitCode::SUCCESS
}
