//! The `preinfer` command-line tool: infer preconditions for a MiniLang
//! program the way the paper's prototype extends Pex.
//!
//! ```text
//! preinfer path/to/program.ml [--fn NAME] [--baselines] [--tests N]
//!          [--jobs N] [--no-solver-cache] [--solver-backend tiered|simplex]
//!          [--incremental on|off] [--interproc inline|summary]
//!          [--timeout-ms N] [--verbose] [--trace-out FILE]
//! ```
//!
//! Generates a test suite for the function (default: the first one), then
//! prints, for every assertion-containing location the suite triggers, the
//! inferred precondition `ψ`, the failure condition `α`, pruning statistics
//! and suite-based quality. Inference for the locations runs on `--jobs`
//! worker threads (default: all cores) sharing a canonicalizing solver
//! cache; both knobs only affect speed, never results. `--baselines`
//! additionally prints FixIt's and DySy's inferences for comparison.

use preinfer::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    path: String,
    func: Option<String>,
    baselines: bool,
    max_runs: Option<usize>,
    jobs: usize,
    solver_cache: bool,
    backend: BackendKind,
    incremental: bool,
    interproc: InterprocMode,
    timeout_ms: Option<u64>,
    verbose: bool,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: preinfer <program.ml> [--fn NAME] [--baselines] [--tests N]\n\
         \x20               [--jobs N] [--no-solver-cache] [--solver-backend B]\n\
         \x20               [--incremental on|off] [--interproc inline|summary]\n\
         \x20               [--timeout-ms N] [--verbose] [--trace-out FILE]\n\
         \n\
         Infers preconditions for every assertion-containing location that\n\
         generated tests can make fail, per the PreInfer (DSN 2018) pipeline.\n\
         \n\
         --jobs N           worker threads for per-ACL inference (default:\n\
         \x20                  all cores; results are identical for any N)\n\
         --no-solver-cache  disable the canonicalizing solver query cache\n\
         --solver-backend B solver backend stack: `tiered` (default — the\n\
         \x20                  interval tier answers cheap queries, escalating\n\
         \x20                  to simplex) or `simplex` (every query goes\n\
         \x20                  straight to simplex); results are identical,\n\
         \x20                  only speed and tier attribution differ\n\
         --incremental B    `on` (default) solves prefix-sharing queries in\n\
         \x20                  pruning and test generation through one warm\n\
         \x20                  push/pop solver session per path; `off` builds\n\
         \x20                  every query from scratch. Results are\n\
         \x20                  byte-identical either way — this is a speed\n\
         \x20                  knob, not a semantic one\n\
         --interproc M      `inline` (default) unrolls callee bodies into the\n\
         \x20                  caller's path condition; `summary` infers each\n\
         \x20                  non-recursive callee's ψ once bottom-up and\n\
         \x20                  applies ψ(actuals) at call sites instead. ψ for\n\
         \x20                  the entry is identical or strictly stronger\n\
         \x20                  (callee-internal atoms drop out of disjuncts)\n\
         --timeout-ms N     wall-clock deadline for the whole run, checked\n\
         \x20                  between solver calls; a partial (still sound)\n\
         \x20                  result is reported as timed out\n\
         --trace-out FILE   record a structured JSON-lines trace of every\n\
         \x20                  pipeline stage (spans, per-decision events,\n\
         \x20                  solver calls) to FILE; results are identical\n\
         \x20                  with or without tracing"
    );
    std::process::exit(2);
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        func: None,
        baselines: false,
        max_runs: None,
        jobs: default_jobs(),
        solver_cache: true,
        backend: BackendKind::default(),
        incremental: true,
        interproc: InterprocMode::default(),
        timeout_ms: None,
        verbose: false,
        trace_out: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fn" => opts.func = args.next().or_else(|| usage()),
            "--baselines" => opts.baselines = true,
            "--verbose" => opts.verbose = true,
            "--no-solver-cache" => opts.solver_cache = false,
            "--solver-backend" => {
                opts.backend =
                    args.next().and_then(|v| BackendKind::parse(&v)).unwrap_or_else(|| usage())
            }
            "--incremental" => {
                opts.incremental = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--interproc" => {
                opts.interproc = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--tests" => {
                opts.max_runs =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--timeout-ms" => {
                opts.timeout_ms =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--trace-out" => opts.trace_out = args.next().or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if opts.path.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("preinfer: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let program = match minilang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("preinfer: {e}");
            return ExitCode::FAILURE;
        }
    };
    let func_name = match &opts.func {
        Some(name) => {
            if program.func(name).is_none() {
                eprintln!("preinfer: no function `{name}` in {}", opts.path);
                return ExitCode::FAILURE;
            }
            name.clone()
        }
        None => program.program().funcs[0].name.clone(),
    };

    let cache = opts.solver_cache.then(|| Arc::new(SolverCache::new()));
    let deadline = opts.timeout_ms.map(Deadline::after_ms).unwrap_or_default();
    // Recording sink when a trace file is requested: buffers every span and
    // event as a JSON line. Observation-only — ψ is identical either way.
    let sink = opts.trace_out.as_ref().map(|_| Arc::new(preinfer::obs::TraceSink::recording()));
    let run_start = std::time::Instant::now();
    let mut tg = TestGenConfig::default();
    if let Some(n) = opts.max_runs {
        tg.max_runs = n;
    }
    // One set of tier counters across test generation and pruning, so the
    // footer reports the whole run's attribution.
    let tiers = Arc::new(TierCounters::default());
    let inc_stats = Arc::new(IncrementalCounters::default());
    tg.solver_cache = cache.clone();
    tg.solver.deadline = deadline.clone();
    tg.solver.trace = sink.clone();
    tg.solver.backend = opts.backend;
    tg.solver.tiers = tiers.clone();
    tg.solver.incremental = opts.incremental;
    tg.solver.incremental_stats = inc_stats.clone();
    tg.trace = sink.clone();
    // Summary mode: infer every non-recursive reachable callee's ψ first
    // (bottom-up), then point the executors at the resolved summaries.
    let mut summary_build = None;
    if opts.interproc == InterprocMode::Summary {
        let table = SummaryTable::new();
        let build_cfg = SummaryBuildConfig {
            testgen: tg.clone(),
            prune: {
                let mut p = PreInferConfig::default().prune;
                p.solver_cache = cache.clone();
                p.solver.deadline = deadline.clone();
                p.solver.backend = opts.backend;
                p.solver.tiers = tiers.clone();
                p.solver.incremental = opts.incremental;
                p
            },
            jobs: opts.jobs,
            stats: Default::default(),
        };
        println!("building callee ψ-summaries for `{func_name}` …");
        let build = build_summaries(&program, &func_name, &table, &build_cfg);
        if !build.resolved.is_empty() {
            tg.concolic.summaries = Some(build.resolved.clone());
        }
        summary_build = Some(build);
    }
    println!("generating tests for `{func_name}` …");
    let suite = generate_tests(&program, &func_name, &tg);
    let func = program.func(&func_name).expect("checked above");
    println!(
        "{} tests, {:.1}% block coverage, {} exception-throwing location(s)\n",
        suite.len(),
        suite.coverage_percent(func),
        suite.triggered_acls().len()
    );
    if suite.triggered_acls().is_empty() {
        println!("no failures found — nothing to infer.");
        finish_trace(&opts, &sink, &func_name, run_start, 0);
        return ExitCode::SUCCESS;
    }

    let mut cfg = PreInferConfig::default();
    cfg.prune.solver_cache = cache.clone();
    cfg.prune.jobs = opts.jobs;
    cfg.prune.solver.deadline = deadline.clone();
    cfg.prune.solver.trace = sink.clone();
    cfg.prune.solver.backend = opts.backend;
    cfg.prune.solver.tiers = tiers.clone();
    cfg.prune.solver.incremental = opts.incremental;
    cfg.prune.solver.incremental_stats = inc_stats.clone();
    cfg.prune.trace = sink.clone();
    if let Some(build) = &summary_build {
        if !build.resolved.is_empty() {
            cfg.prune.concolic.summaries = Some(build.resolved.clone());
        }
    }
    let start = std::time::Instant::now();
    let inferred = infer_all_preconditions(&program, &func_name, &suite, &cfg, opts.jobs);
    let elapsed = start.elapsed();

    for (acl, inf) in &inferred {
        let acl = *acl;
        let (pass, fail) = suite.partition(acl);
        println!("── {acl} ─ {} failing / {} passing tests", fail.len(), pass.len());
        if opts.verbose {
            for f in fail.iter().take(3) {
                println!("   e.g. failing input {}", f.state);
            }
        }
        println!("   PreInfer ψ: {}", inf.precondition.psi);
        if opts.verbose {
            println!("   PreInfer α: {}", inf.precondition.alpha);
            println!(
                "   pruning: {} examined, {} removed, {} kept by c-depend, {} by d-impact, {} by the guard, {} dynamic runs, {} cache hits / {} misses",
                inf.prune_stats.examined,
                inf.prune_stats.removed,
                inf.prune_stats.kept_c_depend,
                inf.prune_stats.kept_d_impact,
                inf.prune_stats.kept_guard,
                inf.prune_stats.dynamic_runs,
                inf.prune_stats.solver_cache_hits,
                inf.prune_stats.solver_cache_misses,
            );
        }
        let blocked = fail
            .iter()
            .filter(|r| !preinfer::preinfer_core::validates(&inf.precondition.psi, &r.state))
            .count();
        let admitted = pass
            .iter()
            .filter(|r| preinfer::preinfer_core::validates(&inf.precondition.psi, &r.state))
            .count();
        println!(
            "   blocks {blocked}/{} failing and admits {admitted}/{} passing tests (|ψ| = {})",
            fail.len(),
            pass.len(),
            inf.precondition.psi.complexity()
        );
        if opts.baselines {
            if let Some(p) = infer_fixit(acl, &suite) {
                println!("   FixIt    ψ: {}", p.psi);
            }
            if let Some(p) = infer_dysy(acl, &suite) {
                let s = p.psi.to_string();
                let shown =
                    if s.len() > 160 { format!("{}… [{} chars]", &s[..160], s.len()) } else { s };
                println!("   DySy     ψ: {shown}");
            }
        }
        println!();
    }

    print!(
        "inferred {} precondition(s) in {:.2}s on {} thread(s)",
        inferred.len(),
        elapsed.as_secs_f64(),
        opts.jobs
    );
    if deadline.expired() {
        print!(
            " [TIMED OUT after {} ms — results are partial but sound]",
            opts.timeout_ms.unwrap()
        );
    }
    match &cache {
        Some(c) => {
            let s = c.stats();
            println!(
                "; solver cache: {} hits / {} misses ({:.0}% hit rate), {} entries, {} evicted in {} sweep(s)",
                s.hits,
                s.misses,
                100.0 * s.hit_rate(),
                s.entries,
                s.evicted_entries,
                s.evictions
            );
        }
        None => println!("; solver cache disabled"),
    }
    let t = tiers.snapshot();
    println!(
        "solver backend `{}`: {} syntactic / {} interval / {} simplex answer(s), \
         {} escalation(s) ({:.0}% answered above simplex)",
        opts.backend.label(),
        t.answered_by_syntactic,
        t.answered_by_interval,
        t.answered_by_simplex,
        t.escalations,
        100.0 * t.tier1_rate(),
    );
    if opts.incremental {
        let i = inc_stats.snapshot();
        println!(
            "incremental solving: {} session(s), {} queries, {} push(es) / {} pop(s), \
             mean reused depth {:.1}",
            i.sessions,
            i.queries,
            i.pushes,
            i.pops,
            i.avg_reused_depth(),
        );
    } else {
        println!("incremental solving disabled (--incremental off)");
    }
    if let Some(build) = &summary_build {
        let stats = &build.resolved.stats;
        print!(
            "interproc summaries: {} callee(s) summarized, {} apply(ies) / {} fallback(s)",
            build.summarized.len(),
            stats.applies(),
            stats.fallbacks(),
        );
        if build.fallbacks.is_empty() {
            println!();
        } else {
            let listed: Vec<String> =
                build.fallbacks.iter().map(|(f, r)| format!("{f} ({r})")).collect();
            println!("; inlined: {}", listed.join(", "));
        }
    }
    finish_trace(&opts, &sink, &func_name, run_start, inferred.len());
    ExitCode::SUCCESS
}

/// Stamps the final `run` event, writes the JSON-lines trace file, and
/// prints the per-stage timing breakdown. No-op without `--trace-out`.
fn finish_trace(
    opts: &Options,
    sink: &Option<Arc<preinfer::obs::TraceSink>>,
    func_name: &str,
    run_start: std::time::Instant,
    acls: usize,
) {
    let (Some(path), Some(sink)) = (&opts.trace_out, sink) else { return };
    sink.event(
        "run",
        &[
            ("func", preinfer::obs::Val::S(func_name)),
            ("dur_us", preinfer::obs::Val::U(run_start.elapsed().as_micros() as u64)),
            ("acls", preinfer::obs::Val::U(acls as u64)),
        ],
    );
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = sink.write_jsonl(&mut f) {
                eprintln!("preinfer: cannot write trace to {path}: {e}");
            } else {
                println!("wrote {} trace event(s) to {path}", sink.lines().len());
            }
        }
        Err(e) => eprintln!("preinfer: cannot create {path}: {e}"),
    }
    // Exclusive self-time per stage via the same span-tree reconstruction
    // `preinfer-trace` uses (inclusive totals alone double-count nested
    // work: a `prune` span contains every solver call fired inside it).
    let lines = sink.lines();
    let analysis = preinfer::obs::TraceAnalysis::from_lines(lines.iter().map(String::as_str)).ok();
    let exclusive = |label: &str| {
        analysis
            .as_ref()
            .and_then(|a| a.stage_totals().into_iter().find(|t| t.stage == label))
            .map(|t| t.exclusive_us)
    };
    println!("stage breakdown (excl = self-time, nested work subtracted):");
    for (stage, snap) in sink.stages() {
        if snap.count == 0 {
            continue;
        }
        println!(
            "  {:>14}: {:>6} × mean {} µs (p50 {} / p90 {} / p99 {}), total {:.3}s, excl {:.3}s",
            stage.label(),
            snap.count,
            snap.mean_us,
            snap.p50_us,
            snap.p90_us,
            snap.p99_us,
            snap.total_us as f64 / 1e6,
            exclusive(stage.label()).unwrap_or(snap.total_us) as f64 / 1e6,
        );
    }
}
