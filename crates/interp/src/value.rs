//! Runtime values for the MiniLang interpreter.
//!
//! Unlike the immutable [`minilang::InputValue`] snapshots used for entry
//! states, runtime arrays are heap references with interior mutability:
//! MiniLang programs may write `a[i] = e`, and aliases (e.g. an array passed
//! to a callee) must observe the write.

use minilang::InputValue;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime string: immutable shared character codes.
pub type StrRef = Rc<Vec<i64>>;
/// A runtime `[int]` array.
pub type ArrIntRef = Rc<RefCell<Vec<i64>>>;
/// A runtime `[str]` array (elements may be null).
pub type ArrStrRef = Rc<RefCell<Vec<Option<StrRef>>>>;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Str(Option<StrRef>),
    ArrayInt(Option<ArrIntRef>),
    ArrayStr(Option<ArrStrRef>),
    /// The result of a `void` call.
    Unit,
}

impl Value {
    /// Deep-copies an input value into the runtime heap.
    pub fn from_input(v: &InputValue) -> Value {
        match v {
            InputValue::Int(x) => Value::Int(*x),
            InputValue::Bool(b) => Value::Bool(*b),
            InputValue::Str(s) => Value::Str(s.as_ref().map(|cs| Rc::new(cs.clone()))),
            InputValue::ArrayInt(a) => {
                Value::ArrayInt(a.as_ref().map(|xs| Rc::new(RefCell::new(xs.clone()))))
            }
            InputValue::ArrayStr(a) => Value::ArrayStr(a.as_ref().map(|xs| {
                Rc::new(RefCell::new(
                    xs.iter().map(|s| s.as_ref().map(|cs| Rc::new(cs.clone()))).collect(),
                ))
            })),
        }
    }

    /// The concrete int, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The concrete bool, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is a null reference.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Str(None) | Value::ArrayInt(None) | Value::ArrayStr(None))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(None) | Value::ArrayInt(None) | Value::ArrayStr(None) => write!(f, "null"),
            Value::Str(Some(cs)) => {
                let text: String = cs
                    .iter()
                    .map(|&c| char::from_u32(c.max(0) as u32).unwrap_or('\u{FFFD}'))
                    .collect();
                write!(f, "{text:?}")
            }
            Value::ArrayInt(Some(a)) => write!(f, "{:?}", a.borrow()),
            Value::ArrayStr(Some(a)) => {
                write!(f, "[")?;
                for (i, s) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match s {
                        None => write!(f, "null")?,
                        Some(cs) => {
                            let text: String = cs
                                .iter()
                                .map(|&c| char::from_u32(c.max(0) as u32).unwrap_or('\u{FFFD}'))
                                .collect();
                            write!(f, "{text:?}")?;
                        }
                    }
                }
                write!(f, "]")
            }
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_input_round_trip_shapes() {
        let v = Value::from_input(&InputValue::ArrayStr(Some(vec![None, Some(vec![97, 98])])));
        let Value::ArrayStr(Some(a)) = &v else { panic!() };
        assert_eq!(a.borrow().len(), 2);
        assert!(a.borrow()[0].is_none());
        assert_eq!(a.borrow()[1].as_ref().unwrap().as_slice(), &[97, 98]);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert!(Value::Str(None).is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn array_mutation_is_shared() {
        let v = Value::from_input(&InputValue::ArrayInt(Some(vec![1, 2])));
        let Value::ArrayInt(Some(a)) = &v else { panic!() };
        let alias = v.clone();
        a.borrow_mut()[0] = 42;
        let Value::ArrayInt(Some(b)) = &alias else { panic!() };
        assert_eq!(b.borrow()[0], 42);
    }
}
