//! # interp
//!
//! The concrete MiniLang interpreter: runtime values, implicit runtime
//! checks (the paper's implicit assertion-containing locations), explicit
//! assertions, fuel-bounded execution, and basic-block coverage collection
//! for Table IV.
//!
//! ```
//! use interp::{run, InterpConfig, ExecResult, Value};
//! use minilang::{compile, InputValue, MethodEntryState};
//!
//! # fn main() {
//! let tp = compile("fn f(x int) -> int { return x + 1; }").unwrap();
//! let state = MethodEntryState::from_pairs([("x", InputValue::Int(41))]);
//! let out = run(&tp, "f", &state, &InterpConfig::default());
//! assert!(matches!(out.result, ExecResult::Completed(Value::Int(42))));
//! # }
//! ```

pub mod machine;
pub mod value;

pub use machine::{run, ExecOutcome, ExecResult, InterpConfig, RuntimeError};
pub use value::{ArrIntRef, ArrStrRef, StrRef, Value};
