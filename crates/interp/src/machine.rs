//! The concrete MiniLang interpreter.
//!
//! Executes a type-checked program on a method-entry state, raising the
//! implicit runtime checks (null dereference, division by zero, bounds,
//! negative allocation) and explicit assertions that define the paper's
//! assertion-containing locations, and recording basic-block coverage for
//! Table IV.

use crate::value::Value;
use minilang::ast::*;
use minilang::{CheckId, CheckKind, MethodEntryState, NodeId, Span, TypedProgram};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// A runtime failure: a violated check at an assertion-containing location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    pub check: CheckId,
    pub span: Span,
    pub message: String,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}: {}", self.check.kind, self.span.line, self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// How an execution ended.
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// Completed, possibly with a return value.
    Completed(Value),
    /// Aborted with a violated check.
    Failed(RuntimeError),
    /// Exceeded the step budget (runaway loop).
    OutOfFuel,
    /// Exceeded the call-depth bound (runaway recursion).
    CallDepthExceeded,
}

impl ExecResult {
    /// The violated check, if the run failed.
    pub fn failed_check(&self) -> Option<CheckId> {
        match self {
            ExecResult::Failed(e) => Some(e.check),
            _ => None,
        }
    }
}

/// Result of a run plus observation data.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    pub result: ExecResult,
    /// Block nodes visited during the run (across all functions executed).
    pub visited_blocks: HashSet<NodeId>,
    /// Steps consumed.
    pub steps: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum number of statements executed before `OutOfFuel`.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { fuel: 100_000, max_call_depth: 64 }
    }
}

/// Runs `func_name` on `state`.
///
/// # Panics
///
/// Panics if the function does not exist or the state does not conform to
/// its signature — callers are expected to validate first (the type checker
/// and [`MethodEntryState::conforms_to`] make this cheap).
pub fn run(
    program: &TypedProgram,
    func_name: &str,
    state: &MethodEntryState,
    config: &InterpConfig,
) -> ExecOutcome {
    let func = program.func(func_name).unwrap_or_else(|| panic!("unknown function {func_name}"));
    assert!(state.conforms_to(func), "state {state} does not conform to {func_name}");
    let mut m = Machine { program, config, fuel: config.fuel, visited: HashSet::new() };
    let mut env: HashMap<String, Value> = HashMap::new();
    for p in &func.params {
        env.insert(
            p.name.clone(),
            Value::from_input(state.get(&p.name).expect("conforming state")),
        );
    }
    let result = match m.exec_block(&func.body, &mut Frame { env, depth: 0 }) {
        Ok(Flow::Return(v)) => ExecResult::Completed(v),
        Ok(_) => ExecResult::Completed(Value::Unit),
        Err(Stop::Check(e)) => ExecResult::Failed(e),
        Err(Stop::Fuel) => ExecResult::OutOfFuel,
        Err(Stop::CallDepth) => ExecResult::CallDepthExceeded,
    };
    ExecOutcome { result, visited_blocks: m.visited, steps: config.fuel - m.fuel }
}

/// Structured control flow inside a function body.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// Abnormal termination of the whole execution.
enum Stop {
    Check(RuntimeError),
    Fuel,
    CallDepth,
}

type Exec<T> = Result<T, Stop>;

struct Frame {
    env: HashMap<String, Value>,
    depth: u32,
}

struct Machine<'a> {
    program: &'a TypedProgram,
    config: &'a InterpConfig,
    fuel: u64,
    visited: HashSet<NodeId>,
}

impl<'a> Machine<'a> {
    fn tick(&mut self) -> Exec<()> {
        if self.fuel == 0 {
            return Err(Stop::Fuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn fail(&self, node: NodeId, kind: CheckKind, span: Span, message: impl Into<String>) -> Stop {
        Stop::Check(RuntimeError { check: CheckId { node, kind }, span, message: message.into() })
    }

    fn exec_block(&mut self, b: &Block, frame: &mut Frame) -> Exec<Flow> {
        self.visited.insert(b.id);
        // Block scoping: `let`s declared here disappear afterwards, and a
        // shadowed outer binding is restored (mutations of outer variables
        // persist).
        let mut declared: Vec<(String, Option<Value>)> = Vec::new();
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s, frame, &mut declared)? {
                Flow::Normal => {}
                other => {
                    flow = other;
                    break;
                }
            }
        }
        for (name, prev) in declared.into_iter().rev() {
            match prev {
                Some(v) => {
                    frame.env.insert(name, v);
                }
                None => {
                    frame.env.remove(&name);
                }
            }
        }
        Ok(flow)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        frame: &mut Frame,
        declared: &mut Vec<(String, Option<Value>)>,
    ) -> Exec<Flow> {
        self.tick()?;
        match &s.kind {
            StmtKind::Let { name, init, .. } => {
                let v = self.eval(init, frame)?;
                let prev = frame.env.insert(name.clone(), v);
                declared.push((name.clone(), prev));
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                match target {
                    AssignTarget::Var(name) => {
                        let v = self.eval(value, frame)?;
                        let slot = frame.env.get_mut(name).expect("typechecked variable");
                        *slot = v;
                    }
                    AssignTarget::Index { array, index } => {
                        let arr = self.eval(array, frame)?;
                        let idx = self.eval(index, frame)?.as_int().expect("typechecked index");
                        let v = self.eval(value, frame)?;
                        self.store_elem(s.id, s.span, &arr, idx, v)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_blk, else_blk } => {
                let c = self.eval(cond, frame)?.as_bool().expect("typechecked cond");
                if c {
                    self.exec_block(then_blk, frame)
                } else if let Some(e) = else_blk {
                    self.exec_block(e, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => loop {
                self.tick()?;
                let c = self.eval(cond, frame)?.as_bool().expect("typechecked cond");
                if !c {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body, frame)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
            },
            StmtKind::Assert { cond } => {
                let c = self.eval(cond, frame)?.as_bool().expect("typechecked cond");
                if c {
                    Ok(Flow::Normal)
                } else {
                    Err(self.fail(s.id, CheckKind::AssertFail, s.span, "assertion violated"))
                }
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr { expr } => {
                self.eval(expr, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::BlockStmt { block } => self.exec_block(block, frame),
        }
    }

    fn store_elem(
        &mut self,
        node: NodeId,
        span: Span,
        arr: &Value,
        idx: i64,
        v: Value,
    ) -> Exec<()> {
        // `null` literals evaluate to a single polymorphic null (is_null),
        // so null checks match any variant before shape dispatch.
        if arr.is_null() {
            return Err(self.fail(node, CheckKind::NullDeref, span, "write through null array"));
        }
        match arr {
            Value::ArrayInt(Some(a)) => {
                let mut xs = a.borrow_mut();
                if idx < 0 || idx as usize >= xs.len() {
                    return Err(self.fail(
                        node,
                        CheckKind::IndexOutOfRange,
                        span,
                        format!("index {idx} out of range (len {})", xs.len()),
                    ));
                }
                xs[idx as usize] = v.as_int().expect("typechecked element");
                Ok(())
            }
            Value::ArrayStr(Some(a)) => {
                let mut xs = a.borrow_mut();
                if idx < 0 || idx as usize >= xs.len() {
                    return Err(self.fail(
                        node,
                        CheckKind::IndexOutOfRange,
                        span,
                        format!("index {idx} out of range (len {})", xs.len()),
                    ));
                }
                xs[idx as usize] = match v {
                    Value::Str(s) => s,
                    _ => unreachable!("typechecked element"),
                };
                Ok(())
            }
            _ => unreachable!("typechecked array"),
        }
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Exec<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::StrLit(s) => {
                Ok(Value::Str(Some(Rc::new(s.chars().map(|c| c as i64).collect()))))
            }
            ExprKind::Null => {
                // The checked placeholder type is Str; any nullable works.
                match self.program.ty_of(e.id) {
                    Ty::ArrayInt => Ok(Value::ArrayInt(None)),
                    Ty::ArrayStr => Ok(Value::ArrayStr(None)),
                    _ => Ok(Value::Str(None)),
                }
            }
            ExprKind::Var(name) => Ok(frame.env.get(name).expect("typechecked variable").clone()),
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, frame)?;
                Ok(match op {
                    UnOp::Neg => Value::Int(v.as_int().expect("typechecked").wrapping_neg()),
                    UnOp::Not => Value::Bool(!v.as_bool().expect("typechecked")),
                })
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(e, *op, l, r, frame),
            ExprKind::Index(arr, idx) => {
                let a = self.eval(arr, frame)?;
                let i = self.eval(idx, frame)?.as_int().expect("typechecked");
                self.load_elem(e.id, e.span, &a, i)
            }
            ExprKind::BuiltinCall { builtin, args } => self.eval_builtin(e, *builtin, args, frame),
            ExprKind::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.call(name, vals, frame.depth)
            }
        }
    }

    fn call(&mut self, name: &str, args: Vec<Value>, depth: u32) -> Exec<Value> {
        if depth + 1 > self.config.max_call_depth {
            return Err(Stop::CallDepth);
        }
        self.tick()?;
        let callee = self.program.func(name).expect("typechecked call");
        let mut env = HashMap::new();
        for (p, v) in callee.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        let mut frame = Frame { env, depth: depth + 1 };
        match self.exec_block(&callee.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    fn eval_binary(
        &mut self,
        e: &Expr,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        frame: &mut Frame,
    ) -> Exec<Value> {
        // Short-circuit boolean operators first.
        match op {
            BinOp::And => {
                let lv = self.eval(l, frame)?.as_bool().expect("typechecked");
                if !lv {
                    return Ok(Value::Bool(false));
                }
                return self.eval(r, frame);
            }
            BinOp::Or => {
                let lv = self.eval(l, frame)?.as_bool().expect("typechecked");
                if lv {
                    return Ok(Value::Bool(true));
                }
                return self.eval(r, frame);
            }
            _ => {}
        }
        let lv = self.eval(l, frame)?;
        let rv = self.eval(r, frame)?;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let a = lv.as_int().expect("typechecked");
                let b = rv.as_int().expect("typechecked");
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div | BinOp::Rem => {
                        if b == 0 {
                            return Err(self.fail(
                                e.id,
                                CheckKind::DivByZero,
                                e.span,
                                "division by zero",
                            ));
                        }
                        if op == BinOp::Div {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let a = lv.as_int().expect("typechecked");
                let b = rv.as_int().expect("typechecked");
                Ok(Value::Bool(match op {
                    BinOp::Lt => a < b,
                    BinOp::Le => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                }))
            }
            BinOp::Eq | BinOp::Ne => {
                let eq = match (&lv, &rv) {
                    (Value::Int(a), Value::Int(b)) => a == b,
                    (Value::Bool(a), Value::Bool(b)) => a == b,
                    // Reference comparisons: only against null (typechecked).
                    _ => lv.is_null() && rv.is_null(),
                };
                Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn load_elem(&mut self, node: NodeId, span: Span, arr: &Value, idx: i64) -> Exec<Value> {
        if arr.is_null() {
            return Err(self.fail(node, CheckKind::NullDeref, span, "read through null array"));
        }
        match arr {
            Value::ArrayInt(Some(a)) => {
                let xs = a.borrow();
                if idx < 0 || idx as usize >= xs.len() {
                    Err(self.fail(
                        node,
                        CheckKind::IndexOutOfRange,
                        span,
                        format!("index {idx} out of range (len {})", xs.len()),
                    ))
                } else {
                    Ok(Value::Int(xs[idx as usize]))
                }
            }
            Value::ArrayStr(Some(a)) => {
                let xs = a.borrow();
                if idx < 0 || idx as usize >= xs.len() {
                    Err(self.fail(
                        node,
                        CheckKind::IndexOutOfRange,
                        span,
                        format!("index {idx} out of range (len {})", xs.len()),
                    ))
                } else {
                    Ok(Value::Str(xs[idx as usize].clone()))
                }
            }
            _ => unreachable!("typechecked array"),
        }
    }

    fn eval_builtin(
        &mut self,
        e: &Expr,
        b: Builtin,
        args: &[Expr],
        frame: &mut Frame,
    ) -> Exec<Value> {
        match b {
            Builtin::Len => {
                let v = self.eval(&args[0], frame)?;
                if v.is_null() {
                    return Err(self.fail(e.id, CheckKind::NullDeref, e.span, "len of null array"));
                }
                match v {
                    Value::ArrayInt(Some(a)) => Ok(Value::Int(a.borrow().len() as i64)),
                    Value::ArrayStr(Some(a)) => Ok(Value::Int(a.borrow().len() as i64)),
                    _ => unreachable!("typechecked"),
                }
            }
            Builtin::StrLen => {
                let v = self.eval(&args[0], frame)?;
                if v.is_null() {
                    return Err(self.fail(e.id, CheckKind::NullDeref, e.span, "strlen of null"));
                }
                match v {
                    Value::Str(Some(s)) => Ok(Value::Int(s.len() as i64)),
                    _ => unreachable!("typechecked"),
                }
            }
            Builtin::CharAt => {
                let s = self.eval(&args[0], frame)?;
                let i = self.eval(&args[1], frame)?.as_int().expect("typechecked");
                if s.is_null() {
                    return Err(self.fail(e.id, CheckKind::NullDeref, e.span, "char_at of null"));
                }
                match s {
                    Value::Str(Some(cs)) => {
                        if i < 0 || i as usize >= cs.len() {
                            Err(self.fail(
                                e.id,
                                CheckKind::IndexOutOfRange,
                                e.span,
                                format!("char index {i} out of range (len {})", cs.len()),
                            ))
                        } else {
                            Ok(Value::Int(cs[i as usize]))
                        }
                    }
                    _ => unreachable!("typechecked"),
                }
            }
            Builtin::IsSpace => {
                let c = self.eval(&args[0], frame)?.as_int().expect("typechecked");
                Ok(Value::Bool(matches!(c, 32 | 9 | 10 | 13)))
            }
            Builtin::NewIntArray => {
                let n = self.eval(&args[0], frame)?.as_int().expect("typechecked");
                if n < 0 {
                    Err(self.fail(
                        e.id,
                        CheckKind::NegativeSize,
                        e.span,
                        format!("negative size {n}"),
                    ))
                } else {
                    Ok(Value::ArrayInt(Some(Rc::new(std::cell::RefCell::new(vec![0; n as usize])))))
                }
            }
            Builtin::NewStrArray => {
                let n = self.eval(&args[0], frame)?.as_int().expect("typechecked");
                if n < 0 {
                    Err(self.fail(
                        e.id,
                        CheckKind::NegativeSize,
                        e.span,
                        format!("negative size {n}"),
                    ))
                } else {
                    Ok(Value::ArrayStr(Some(Rc::new(std::cell::RefCell::new(vec![
                        None;
                        n as usize
                    ])))))
                }
            }
            Builtin::Abs => {
                let v = self.eval(&args[0], frame)?.as_int().expect("typechecked");
                Ok(Value::Int(v.wrapping_abs()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{compile, InputValue};

    fn run_src(src: &str, func: &str, state: MethodEntryState) -> ExecOutcome {
        let tp = compile(src).expect("compile");
        run(&tp, func, &state, &InterpConfig::default())
    }

    #[test]
    fn arithmetic_and_return() {
        let out = run_src(
            "fn f(x int) -> int { return x * 2 + 1; }",
            "f",
            MethodEntryState::from_pairs([("x", InputValue::Int(20))]),
        );
        match out.result {
            ExecResult::Completed(Value::Int(41)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn division_by_zero_fails_with_check() {
        let out = run_src(
            "fn f(x int) -> int { return 10 / x; }",
            "f",
            MethodEntryState::from_pairs([("x", InputValue::Int(0))]),
        );
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::DivByZero),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn null_array_len_fails() {
        let out = run_src(
            "fn f(a [int]) -> int { return len(a); }",
            "f",
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(None))]),
        );
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::NullDeref),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_bounds_read_fails() {
        let out = run_src(
            "fn f(a [int]) -> int { return a[5]; }",
            "f",
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(Some(vec![1, 2])))]),
        );
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::IndexOutOfRange),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn motivating_example_tf1_fails_at_element_null_check() {
        let src = "
            fn example(s [str], a int, b int, c int, d int) -> int {
                let sum = 0;
                if (a > 0) { b = b + 1; }
                if (c > 0) { d = d + 1; }
                if (b > 0) { sum = sum + 1; }
                if (d > 0) {
                    for (let i = 0; i < len(s); i = i + 1) {
                        sum = sum + strlen(s[i]);
                    }
                    return sum;
                }
                return sum;
            }";
        // t_f1: (s: {null}, a: 1, b: 0, c: 1, d: 0)
        let state = MethodEntryState::from_pairs([
            ("s".to_string(), InputValue::ArrayStr(Some(vec![None]))),
            ("a".to_string(), InputValue::Int(1)),
            ("b".to_string(), InputValue::Int(0)),
            ("c".to_string(), InputValue::Int(1)),
            ("d".to_string(), InputValue::Int(0)),
        ]);
        let out = run_src(src, "example", state);
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::NullDeref),
            other => panic!("{other:?}"),
        }
        // And a passing run covers the loop blocks.
        let state = MethodEntryState::from_pairs([
            ("s".to_string(), InputValue::ArrayStr(Some(vec![Some(vec![97])]))),
            ("a".to_string(), InputValue::Int(1)),
            ("b".to_string(), InputValue::Int(0)),
            ("c".to_string(), InputValue::Int(1)),
            ("d".to_string(), InputValue::Int(0)),
        ]);
        let out = run_src(src, "example", state);
        // b becomes 1 (sum+1) and strlen("a") adds 1 → 2.
        match out.result {
            ExecResult::Completed(Value::Int(2)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_assert_fails() {
        let out = run_src(
            "fn f(x int) { assert(x > 0); }",
            "f",
            MethodEntryState::from_pairs([("x", InputValue::Int(0))]),
        );
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::AssertFail),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let out = run_src(
            "fn f(x int) { while (true) { x = x + 1; } }",
            "f",
            MethodEntryState::from_pairs([("x", InputValue::Int(0))]),
        );
        assert!(matches!(out.result, ExecResult::OutOfFuel));
    }

    #[test]
    fn call_and_recursion() {
        let src = "
            fn fact(n int) -> int {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            fn main(n int) -> int { return fact(n); }";
        let out = run_src(src, "main", MethodEntryState::from_pairs([("n", InputValue::Int(5))]));
        match out.result {
            ExecResult::Completed(Value::Int(120)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failure_inside_callee_propagates() {
        let src = "
            fn helper(a [int], i int) -> int { return a[i]; }
            fn main(a [int]) -> int { return helper(a, 3); }";
        let out = run_src(
            src,
            "main",
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(Some(vec![1])))]),
        );
        match out.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::IndexOutOfRange),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_writes_are_observable() {
        let src = "
            fn f(a [int]) -> int {
                a[0] = 7;
                return a[0];
            }";
        let out = run_src(
            src,
            "f",
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(Some(vec![0])))]),
        );
        match out.result {
            ExecResult::Completed(Value::Int(7)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn new_array_and_negative_size() {
        let ok = run_src(
            "fn f(n int) -> int { let a = new_int_array(n); return len(a); }",
            "f",
            MethodEntryState::from_pairs([("n", InputValue::Int(3))]),
        );
        assert!(matches!(ok.result, ExecResult::Completed(Value::Int(3))));
        let bad = run_src(
            "fn f(n int) -> int { let a = new_int_array(n); return len(a); }",
            "f",
            MethodEntryState::from_pairs([("n", InputValue::Int(-1))]),
        );
        match bad.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::NegativeSize),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn short_circuit_protects_null() {
        let src = "fn f(s str) -> bool { return s != null && strlen(s) > 0; }";
        let out = run_src(src, "f", MethodEntryState::from_pairs([("s", InputValue::Str(None))]));
        match out.result {
            ExecResult::Completed(Value::Bool(false)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn block_coverage_partial_then_full() {
        let src = "fn f(x int) -> int { if (x > 0) { return 1; } else { return 2; } }";
        let tp = compile(src).unwrap();
        let blocks = minilang::block_ids(tp.func("f").unwrap());
        assert_eq!(blocks.len(), 3);
        let out = run(
            &tp,
            "f",
            &MethodEntryState::from_pairs([("x", InputValue::Int(1))]),
            &InterpConfig::default(),
        );
        let cov = minilang::coverage_percent(&blocks, &out.visited_blocks);
        assert!((cov - 2.0 / 3.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn is_space_builtin() {
        let src = "fn f(c int) -> bool { return is_space(c); }";
        for (c, want) in [(32i64, true), (9, true), (97, false)] {
            let out = run_src(src, "f", MethodEntryState::from_pairs([("c", InputValue::Int(c))]));
            match out.result {
                ExecResult::Completed(Value::Bool(b)) => assert_eq!(b, want),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn char_at_and_strlen() {
        let src = "fn f(s str) -> int { return char_at(s, strlen(s) - 1); }";
        let out =
            run_src(src, "f", MethodEntryState::from_pairs([("s", InputValue::str_from("xyz"))]));
        match out.result {
            ExecResult::Completed(Value::Int(v)) => assert_eq!(v, 'z' as i64),
            other => panic!("{other:?}"),
        }
        let empty =
            run_src(src, "f", MethodEntryState::from_pairs([("s", InputValue::str_from(""))]));
        match empty.result {
            ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::IndexOutOfRange),
            other => panic!("{other:?}"),
        }
    }
}
