//! Semantics corner cases for the interpreter: control flow, scoping,
//! short-circuit order, aliasing, and arithmetic edges.

use interp::{run, ExecResult, InterpConfig, Value};
use minilang::{compile, CheckKind, InputValue, MethodEntryState};

fn exec(src: &str, pairs: Vec<(&str, InputValue)>) -> ExecResult {
    let tp = compile(src).expect("compiles");
    let state = MethodEntryState::from_pairs(pairs);
    run(&tp, "f", &state, &InterpConfig::default()).result
}

fn expect_int(r: ExecResult) -> i64 {
    match r {
        ExecResult::Completed(Value::Int(v)) => v,
        other => panic!("{other:?}"),
    }
}

#[test]
fn break_exits_innermost_loop_only() {
    let src = "
        fn f(n int) -> int {
            let hits = 0;
            let i = 0;
            while (i < n) {
                let j = 0;
                while (true) {
                    hits = hits + 1;
                    if (j >= 1) { break; }
                    j = j + 1;
                }
                i = i + 1;
            }
            return hits;
        }";
    assert_eq!(expect_int(exec(src, vec![("n", InputValue::Int(3))])), 6);
}

#[test]
fn continue_skips_rest_of_while_body() {
    let src = "
        fn f(n int) -> int {
            let odd_sum = 0;
            let i = 0;
            while (i < n) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                odd_sum = odd_sum + i;
            }
            return odd_sum;
        }";
    assert_eq!(expect_int(exec(src, vec![("n", InputValue::Int(6))])), 1 + 3 + 5);
}

#[test]
fn block_scoping_restores_shadowed_variables() {
    let src = "
        fn f(x int) -> int {
            if (x > 0) {
                let x = 100;
                x = x + 1;
            }
            return x;
        }";
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(7))])), 7);
}

#[test]
fn short_circuit_skips_side_conditions() {
    // The right operand would divide by zero; `false &&` must protect it.
    let src = "fn f(x int) -> bool { return x > 100 && 1 / (x - x) > 0; }";
    match exec(src, vec![("x", InputValue::Int(1))]) {
        ExecResult::Completed(Value::Bool(false)) => {}
        other => panic!("{other:?}"),
    }
    // And evaluate it when the left side passes.
    match exec(src, vec![("x", InputValue::Int(101))]) {
        ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::DivByZero),
        other => panic!("{other:?}"),
    }
}

#[test]
fn arrays_alias_through_call_boundaries() {
    let src = "
        fn poke(a [int]) { a[0] = 99; }
        fn f(a [int]) -> int {
            poke(a);
            return a[0];
        }";
    assert_eq!(expect_int(exec(src, vec![("a", InputValue::ArrayInt(Some(vec![1])))])), 99);
}

#[test]
fn int_arguments_are_by_value() {
    let src = "
        fn bump(x int) -> int { x = x + 1; return x; }
        fn f(x int) -> int {
            let y = bump(x);
            return x * 10 + y;
        }";
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(3))])), 34);
}

#[test]
fn wrapping_arithmetic_matches_rust() {
    let src = "fn f(x int) -> int { return x + 1; }";
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(i64::MAX))])), i64::MIN);
}

#[test]
fn negative_modulo_keeps_dividend_sign() {
    let src = "fn f(x int) -> int { return x % 4; }";
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(-7))])), -3);
}

#[test]
fn deep_recursion_hits_depth_limit_not_stack_overflow() {
    let src = "
        fn down(n int) -> int {
            if (n <= 0) { return 0; }
            return down(n - 1);
        }
        fn f(n int) -> int { return down(n); }";
    match exec(src, vec![("n", InputValue::Int(10_000))]) {
        ExecResult::CallDepthExceeded => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn created_string_array_elements_start_null() {
    let src = "
        fn f(n int) -> int {
            let xs = new_str_array(3);
            return strlen(xs[0]);
        }";
    match exec(src, vec![("n", InputValue::Int(0))]) {
        ExecResult::Failed(e) => assert_eq!(e.check.kind, CheckKind::NullDeref),
        other => panic!("{other:?}"),
    }
}

#[test]
fn string_literals_index_correctly() {
    let src = r#"
        fn f(i int) -> int {
            let s = "abc";
            return char_at(s, i);
        }"#;
    assert_eq!(expect_int(exec(src, vec![("i", InputValue::Int(2))])), 'c' as i64);
}

#[test]
fn else_if_chains_pick_first_match() {
    let src = "
        fn f(x int) -> int {
            if (x > 10) { return 3; }
            else if (x > 5) { return 2; }
            else if (x > 0) { return 1; }
            else { return 0; }
        }";
    for (x, want) in [(20, 3), (7, 2), (3, 1), (-1, 0)] {
        assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(x))])), want);
    }
}

#[test]
fn abs_builtin_both_signs() {
    let src = "fn f(x int) -> int { return abs(x); }";
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(-5))])), 5);
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(5))])), 5);
    assert_eq!(expect_int(exec(src, vec![("x", InputValue::Int(0))])), 0);
}
