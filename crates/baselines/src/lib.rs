//! # baselines
//!
//! The two related state-of-the-art approaches PreInfer is compared against
//! in the paper's evaluation (Section V):
//!
//! * **FixIt** — infers the precondition from the *last-branch predicate*
//!   only: `α = ⋁ φ|ρ|` over the failing paths, `ψ = ¬α`. It uses no other
//!   branch conditions and has no notion of a quantifier, which is why it
//!   handles zero collection-element cases (Table VI) — but it wins on some
//!   complex-loop cases where the correct precondition *is* just the negated
//!   last-branch predicate.
//! * **DySy** — summarizes the *passing* executions: the precondition is the
//!   disjunction of the (input-projected) passing path conditions. Correct
//!   whenever the suite covers the passing space, but verbose: its relative
//!   complexity dwarfs PreInfer's (Figure 3). Unlike PreInfer it needs no
//!   failing-path pruning and still infers something when passing tests are
//!   scarce in structure.

pub mod dysy;
pub mod fixit;

pub use dysy::infer_dysy;
pub use fixit::infer_fixit;
