//! The DySy baseline: preconditions as summaries of passing executions.
//!
//! DySy (Csallner et al.) runs the test suite under dynamic symbolic
//! execution and takes the disjunction of the path conditions of the
//! *passing* runs as the method's precondition. No pruning, no
//! generalization: correct wherever the suite covered the passing space,
//! and verbose in direct proportion to the number of explored paths.

use minilang::CheckId;
use preinfer_core::InferredPrecondition;
use symbolic::Formula;
use testgen::Suite;

/// Infers the DySy precondition for one ACL: `ψ` is the disjunction of the
/// passing path conditions (each one the conjunction of its branch
/// predicates); `α = ¬ψ`. Returns `None` when the suite has no failing test
/// for the ACL (mirroring the evaluation protocol, which only scores
/// exception-throwing locations).
pub fn infer_dysy(acl: CheckId, suite: &Suite) -> Option<InferredPrecondition> {
    let (passing, failing) = suite.partition(acl);
    if failing.is_empty() {
        return None;
    }
    let mut seen: Vec<String> = Vec::new();
    let mut disjuncts: Vec<Formula> = Vec::new();
    for run in passing {
        let parts: Vec<Formula> = run
            .path
            .entries
            .iter()
            .filter(|e| e.kind.is_branch())
            .map(|e| Formula::pred(e.pred.clone()))
            .collect();
        let conj = Formula::and(parts);
        let key = conj.to_string();
        if !seen.contains(&key) {
            seen.push(key);
            disjuncts.push(conj);
        }
    }
    let count = disjuncts.len();
    let psi = Formula::or(disjuncts);
    let alpha = psi.negated();
    Some(InferredPrecondition { alpha, psi, quantified: false, disjuncts: count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use testgen::{generate_tests, TestGenConfig};

    #[test]
    fn dysy_is_sufficient_and_necessary_on_the_generating_suite() {
        let tp = minilang::compile("fn f(x int) { assert(x != 3); }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let pre = infer_dysy(acl, &suite).unwrap();
        let (pass, fail) = suite.partition(acl);
        for r in &pass {
            assert!(preinfer_core::validates(&pre.psi, &r.state), "blocks passing {}", r.state);
        }
        for r in &fail {
            assert!(!preinfer_core::validates(&pre.psi, &r.state), "admits failing {}", r.state);
        }
    }

    #[test]
    fn dysy_complexity_grows_with_paths() {
        let tp = minilang::compile(
            "fn f(a int, b int, c int) -> int {
                let n = 0;
                if (a > 0) { n = n + 1; }
                if (b > 0) { n = n + 1; }
                if (c > 0) { n = n + 1; }
                assert(n != 3);
                return n;
            }",
        )
        .unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let dysy = infer_dysy(acl, &suite).unwrap();
        let fixit = crate::infer_fixit(acl, &suite).unwrap();
        // DySy enumerates the 7 passing combinations; FixIt emits one atom.
        assert!(dysy.psi.complexity() > 5 * fixit.psi.complexity().max(1));
    }

    #[test]
    fn dysy_with_no_passing_tests_blocks_everything() {
        // Every input fails → ψ = false.
        let tp = minilang::compile("fn f(x int) { assert(false); }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let pre = infer_dysy(acl, &suite).unwrap();
        assert_eq!(pre.psi.to_string(), "false");
    }
}
