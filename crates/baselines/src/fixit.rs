//! The FixIt baseline: precondition from the last-branch predicate only.

use minilang::CheckId;
use preinfer_core::InferredPrecondition;
use symbolic::Formula;
use testgen::Suite;

/// Infers the FixIt precondition for one ACL: `α` is the disjunction of the
/// failing paths' last-branch predicates (de-duplicated), `ψ = ¬α`. Returns
/// `None` when no failing test exists.
pub fn infer_fixit(acl: CheckId, suite: &Suite) -> Option<InferredPrecondition> {
    let (_, failing) = suite.partition(acl);
    if failing.is_empty() {
        return None;
    }
    let mut seen: Vec<String> = Vec::new();
    let mut disjuncts: Vec<Formula> = Vec::new();
    for run in failing {
        let last = run.path.last_branch()?;
        let f = Formula::pred(last.pred.clone());
        let key = f.to_string();
        if !seen.contains(&key) {
            seen.push(key);
            disjuncts.push(f);
        }
    }
    let count = disjuncts.len();
    let alpha = Formula::or(disjuncts);
    let psi = alpha.negated();
    Some(InferredPrecondition { alpha, psi, quantified: false, disjuncts: count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use testgen::{generate_tests, TestGenConfig};

    #[test]
    fn fixit_on_simple_assert_is_exact() {
        // The correct precondition IS the negated last-branch predicate.
        let tp = minilang::compile("fn f(x int) { assert(x != 3); }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let pre = infer_fixit(acl, &suite).unwrap();
        assert_eq!(pre.alpha.to_string(), "x == 3");
        assert_eq!(pre.psi.to_string(), "x != 3");
    }

    #[test]
    fn fixit_misses_reachability_guards() {
        // Failure guarded by x > 2: FixIt's ψ = y != 0 blocks passing tests
        // with x <= 2 && y == 0? No — ψ = y != 0 *blocks* them although they
        // pass: not necessary.
        let tp = minilang::compile(
            "fn f(x int, y int) -> int { if (x > 2) { return x / y; } return 0; }",
        )
        .unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite
            .triggered_acls()
            .into_iter()
            .find(|a| a.kind == minilang::CheckKind::DivByZero)
            .unwrap();
        let pre = infer_fixit(acl, &suite).unwrap();
        assert_eq!(pre.psi.to_string(), "y != 0");
        // Necessity check against the suite: a passing run with x<=2, y=0
        // exists (the all-zero seed), and FixIt wrongly blocks it.
        let (pass, _) = suite.partition(acl);
        let violates_necessity = pass.iter().any(|r| !preinfer_core::validates(&pre.psi, &r.state));
        assert!(violates_necessity);
    }

    #[test]
    fn fixit_never_quantifies() {
        let tp = minilang::compile(
            "fn f(s [str]) -> int {
                let n = 0;
                for (let i = 0; i < len(s); i = i + 1) { n = n + strlen(s[i]); }
                return n;
            }",
        )
        .unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        for acl in suite.triggered_acls() {
            let pre = infer_fixit(acl, &suite).unwrap();
            assert!(!pre.quantified);
            assert!(!pre.psi.is_quantified());
        }
    }
}
