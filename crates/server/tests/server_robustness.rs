//! Protocol robustness: hostile byte streams — malformed frames, truncated
//! payloads, oversized length prefixes, mid-stream disconnects — must
//! produce typed error responses or a clean close, never a panic or a
//! wedged daemon. Every property finishes by proving the daemon still
//! answers a fresh `ping`.
//!
//! Every property runs against all three serving topologies: the
//! thread-per-connection core, the epoll event core, and the
//! `preinfer-router` front (two shards) — hostile bytes must bounce off
//! each of them identically.

use proptest::prelude::*;
use server::{Client, IoMode, Router, RouterConfig, Server, ServerConfig, MAX_FRAME_LEN};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// The addresses of one threaded daemon, one epoll daemon, and one
/// two-shard router, shared by every property case in this process. None
/// are ever shut down — the process exit reaps their threads — because
/// what we are testing is precisely that no hostile input can take them
/// down first.
fn topology_addrs() -> &'static [SocketAddr; 3] {
    static ADDRS: OnceLock<[SocketAddr; 3]> = OnceLock::new();
    ADDRS.get_or_init(|| {
        let start = |io: IoMode| {
            let server = Server::start(ServerConfig { workers: 2, io, ..ServerConfig::default() })
                .expect("bind loopback");
            let addr = server.local_addr();
            Box::leak(Box::new(server));
            addr
        };
        let threaded = start(IoMode::Threads);
        let epoll = start(IoMode::Epoll);
        let shard0 = start(IoMode::Epoll);
        let shard1 = start(IoMode::Threads);
        let router = Router::start(RouterConfig {
            shards: vec![shard0.to_string(), shard1.to_string()],
            ..RouterConfig::default()
        })
        .expect("start router");
        let router_addr = router.local_addr();
        Box::leak(Box::new(router));
        [threaded, epoll, router_addr]
    })
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(&addr.to_string()).expect("connect to shared daemon")
}

/// A topology is alive iff a fresh connection's ping round-trips.
fn assert_alive(addr: SocketAddr) {
    let resp = connect(addr).ping().expect("server must still answer ping");
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn garbage_payload_gets_typed_error_and_connection_survives(
        payload in "[ -~]{1,60}",
    ) {
        for &addr in topology_addrs() {
            let mut cl = connect(addr);
            let resp = cl.round_trip(&payload);
            match resp {
                Ok(v) => {
                    // Whatever the junk parsed to, the answer is a typed frame:
                    // either a successful verb (the junk accidentally spelled
                    // one) or a `bad_request` error — never a raw close.
                    let ok = v.get("ok").and_then(|j| j.as_bool());
                    prop_assert!(
                        ok == Some(true) || v.str_field("error") == Some("bad_request"),
                        "unexpected response {v:?}"
                    );
                }
                Err(e) => return Err(format!("server closed on in-sync junk: {e}")),
            }
            // The stream stayed in sync: the same connection still works.
            let ping = cl.ping().map_err(|e| format!("connection wedged: {e}"))?;
            prop_assert_eq!(ping.get("ok").and_then(|v| v.as_bool()), Some(true));
            assert_alive(addr);
        }
    }

    #[test]
    fn mid_stream_disconnects_never_wedge_the_server(
        declared in 1u32..=4096,
        sent in 0usize..64,
        cut_prefix in proptest::bool::ANY,
    ) {
        for &addr in topology_addrs() {
            {
                let mut s = TcpStream::connect(addr).expect("connect");
                if cut_prefix {
                    // Disconnect inside the 4-byte length prefix itself.
                    let _ = s.write_all(&declared.to_be_bytes()[..2]);
                } else {
                    // Valid prefix, then strictly fewer payload bytes than
                    // declared, then hang up.
                    let body = vec![b'x'; sent.min(declared as usize - 1)];
                    let _ = s.write_all(&declared.to_be_bytes());
                    let _ = s.write_all(&body);
                }
                // Dropping the stream closes it: the server sees EOF mid-frame.
            }
            assert_alive(addr);
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_with_a_typed_error(
        excess in 1u64..=(u32::MAX as u64 - MAX_FRAME_LEN as u64),
    ) {
        let declared = (MAX_FRAME_LEN as u64 + excess) as u32;
        for &addr in topology_addrs() {
            let mut cl = connect(addr);
            cl.stream_mut().write_all(&declared.to_be_bytes()).expect("send prefix");
            // The server must answer without waiting for the (absurd) payload.
            let resp = cl.read_response().map_err(|e| format!("no typed error: {e}"))?;
            prop_assert_eq!(resp.str_field("error"), Some("frame_too_large"));
            assert_alive(addr);
        }
    }

    #[test]
    fn arbitrary_byte_blobs_never_take_the_server_down(
        blob in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        for &addr in topology_addrs() {
            {
                let mut s = TcpStream::connect(addr).expect("connect");
                let _ = s.write_all(&blob);
                // Close without reading: whatever the server made of the bytes
                // (typed error, truncation, or a valid frame), it must shrug
                // off the disconnect.
            }
            assert_alive(addr);
        }
    }
}

/// Non-property companion: a non-UTF-8 payload inside a well-formed frame
/// is a typed error, and the server survives. (The threaded core answers
/// `bad_request` with the connection already doomed; the event cores do
/// the same.)
#[test]
fn non_utf8_payload_is_a_typed_error() {
    for &addr in topology_addrs() {
        let mut cl = connect(addr);
        let bad = [0xFFu8, 0xFE, 0x01];
        cl.stream_mut().write_all(&(bad.len() as u32).to_be_bytes()).unwrap();
        cl.stream_mut().write_all(&bad).unwrap();
        let resp = cl.read_response().expect("typed error frame");
        assert_eq!(resp.str_field("error"), Some("bad_request"));
        assert_alive(addr);
    }
}

/// Regression (the legacy threaded core used to hold silent connections
/// open forever): a connection that goes quiet past the idle deadline is
/// closed with a typed `idle_timeout` error, on every topology.
#[test]
fn idle_connections_are_closed_with_a_typed_error() {
    let start = |io: IoMode| {
        let server = Server::start(ServerConfig {
            workers: 1,
            io,
            idle_timeout_ms: 300,
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let addr = server.local_addr();
        Box::leak(Box::new(server));
        addr
    };
    let router_over = |shard: SocketAddr| {
        let router = Router::start(RouterConfig {
            shards: vec![shard.to_string()],
            idle_timeout_ms: 300,
            ..RouterConfig::default()
        })
        .expect("start router");
        let addr = router.local_addr();
        Box::leak(Box::new(router));
        addr
    };
    let threaded = start(IoMode::Threads);
    let epoll = start(IoMode::Epoll);
    let fronted = router_over(threaded);
    for addr in [threaded, epoll, fronted] {
        let mut cl = connect(addr);
        // Prove the connection works, then go silent.
        assert_eq!(cl.ping().unwrap().get("ok").and_then(|v| v.as_bool()), Some(true));
        let resp = cl.read_response().expect("typed idle_timeout before close");
        assert_eq!(resp.str_field("error"), Some("idle_timeout"), "addr {addr}");
        assert_alive(addr);
    }
}

/// A well-formed frame trickled in byte-by-byte is still decoded and
/// answered: slow writers are *active*, not idle, so the incremental
/// decoder must buffer the partial frame and the idle deadline must not
/// fire while bytes keep arriving.
#[test]
fn slow_partial_writes_are_decoded_not_idle_closed() {
    let server = Server::start(ServerConfig {
        workers: 1,
        io: IoMode::Epoll,
        idle_timeout_ms: 200,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    Box::leak(Box::new(server));

    let mut cl = connect(addr);
    let payload = br#"{"verb":"ping","id":"slow"}"#;
    let mut wire = Vec::new();
    wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    wire.extend_from_slice(payload);
    // Total transfer time (~31 bytes * 60ms) far exceeds the 200ms idle
    // deadline; only inter-byte gaps stay under it.
    for b in wire {
        cl.stream_mut().write_all(&[b]).expect("slow write");
        cl.stream_mut().flush().expect("flush");
        std::thread::sleep(Duration::from_millis(60));
    }
    let resp = cl.read_response().expect("slow frame answered");
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(resp.str_field("id"), Some("slow"));
}
