//! Protocol robustness: hostile byte streams — malformed frames, truncated
//! payloads, oversized length prefixes, mid-stream disconnects — must
//! produce typed error responses or a clean close, never a panic or a
//! wedged daemon. Every property finishes by proving the daemon still
//! answers a fresh `ping`.

use proptest::prelude::*;
use server::{Client, Server, ServerConfig, MAX_FRAME_LEN};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

/// One daemon shared by every property case in this process. It is never
/// shut down — the process exit reaps its threads — because what we are
/// testing is precisely that no hostile input can take it down first.
fn daemon_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::start(ServerConfig { workers: 2, ..ServerConfig::default() })
            .expect("bind loopback");
        let addr = server.local_addr();
        Box::leak(Box::new(server));
        addr
    })
}

fn connect() -> Client {
    Client::connect(&daemon_addr().to_string()).expect("connect to shared daemon")
}

/// The daemon is alive iff a fresh connection's ping round-trips.
fn assert_daemon_alive() {
    let resp = connect().ping().expect("daemon must still answer ping");
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn garbage_payload_gets_typed_error_and_connection_survives(
        payload in "[ -~]{1,60}",
    ) {
        let mut cl = connect();
        let resp = cl.round_trip(&payload);
        match resp {
            Ok(v) => {
                // Whatever the junk parsed to, the answer is a typed frame:
                // either a successful verb (the junk accidentally spelled
                // one) or a `bad_request` error — never a raw close.
                let ok = v.get("ok").and_then(|j| j.as_bool());
                prop_assert!(
                    ok == Some(true) || v.str_field("error") == Some("bad_request"),
                    "unexpected response {v:?}"
                );
            }
            Err(e) => return Err(format!("daemon closed on in-sync junk: {e}")),
        }
        // The stream stayed in sync: the same connection still works.
        let ping = cl.ping().map_err(|e| format!("connection wedged: {e}"))?;
        prop_assert_eq!(ping.get("ok").and_then(|v| v.as_bool()), Some(true));
        assert_daemon_alive();
    }

    #[test]
    fn mid_stream_disconnects_never_wedge_the_daemon(
        declared in 1u32..=4096,
        sent in 0usize..64,
        cut_prefix in proptest::bool::ANY,
    ) {
        let addr = daemon_addr();
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            if cut_prefix {
                // Disconnect inside the 4-byte length prefix itself.
                let _ = s.write_all(&declared.to_be_bytes()[..2]);
            } else {
                // Valid prefix, then strictly fewer payload bytes than
                // declared, then hang up.
                let body = vec![b'x'; sent.min(declared as usize - 1)];
                let _ = s.write_all(&declared.to_be_bytes());
                let _ = s.write_all(&body);
            }
            // Dropping the stream closes it: the daemon sees EOF mid-frame.
        }
        assert_daemon_alive();
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_with_a_typed_error(
        excess in 1u64..=(u32::MAX as u64 - MAX_FRAME_LEN as u64),
    ) {
        let declared = (MAX_FRAME_LEN as u64 + excess) as u32;
        let mut cl = connect();
        cl.stream_mut().write_all(&declared.to_be_bytes()).expect("send prefix");
        // The daemon must answer without waiting for the (absurd) payload.
        let resp = cl.read_response().map_err(|e| format!("no typed error: {e}"))?;
        prop_assert_eq!(resp.str_field("error"), Some("frame_too_large"));
        assert_daemon_alive();
    }

    #[test]
    fn arbitrary_byte_blobs_never_take_the_daemon_down(
        blob in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let addr = daemon_addr();
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(&blob);
            // Close without reading: whatever the daemon made of the bytes
            // (typed error, truncation, or a valid frame), it must shrug
            // off the disconnect.
        }
        assert_daemon_alive();
    }
}

/// Non-property companion: a non-UTF-8 payload inside a well-formed frame
/// is a `bad_request`, and the daemon survives.
#[test]
fn non_utf8_payload_is_a_typed_error() {
    let mut cl = connect();
    let bad = [0xFFu8, 0xFE, 0x01];
    cl.stream_mut().write_all(&(bad.len() as u32).to_be_bytes()).unwrap();
    cl.stream_mut().write_all(&bad).unwrap();
    let resp = cl.read_response().expect("typed error frame");
    assert_eq!(resp.str_field("error"), Some("bad_request"));
    assert_daemon_alive();
}
