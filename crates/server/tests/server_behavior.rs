//! Daemon behavior under pressure: bounded admission (queue saturation →
//! typed `overloaded`), per-request deadlines (`timed_out` partial results
//! that never kill a worker), and graceful shutdown (in-flight requests
//! drain, late arrivals get `shutting_down`).

use server::{served_psis, Client, InferRequest, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration;

const DIV_PROGRAM: &str = "fn f(x int) -> int { return 10 / x; }";

fn infer_req(deadline_ms: Option<u64>) -> InferRequest {
    InferRequest {
        program: DIV_PROGRAM.to_string(),
        func: Some("f".to_string()),
        deadline_ms,
        tests: None,
        jobs: 1,
        trace: None,
    }
}

#[test]
fn queue_saturation_yields_typed_overloaded_not_unbounded_buffering() {
    // One worker and a one-slot queue: of N simultaneous submissions, at
    // most one can run and one can wait; the rest must be rejected with
    // the typed `overloaded` error, immediately.
    let server =
        Server::start(ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() })
            .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let ok = Arc::new(AtomicUsize::new(0));
    let overloaded = Arc::new(AtomicUsize::new(0));
    let mut saw_overload = false;
    // Timing-dependent (the worker could theoretically drain between two
    // pushes), so allow a few rounds; in practice round one saturates.
    for _round in 0..5 {
        const CLIENTS: usize = 12;
        let barrier = Arc::new(Barrier::new(CLIENTS));
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let (addr, barrier) = (addr.clone(), Arc::clone(&barrier));
                let (ok, overloaded) = (Arc::clone(&ok), Arc::clone(&overloaded));
                scope.spawn(move || {
                    let mut cl = Client::connect(&addr).expect("connect");
                    barrier.wait();
                    let resp = cl.infer(&infer_req(None)).expect("round-trip");
                    match resp.str_field("error") {
                        None => {
                            assert_eq!(
                                resp.get("ok").and_then(|v| v.as_bool()),
                                Some(true),
                                "non-error response must be a success: {resp:?}"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Some("overloaded") => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(other) => panic!("unexpected error code {other}"),
                    }
                });
            }
        });
        if overloaded.load(Ordering::Relaxed) > 0 {
            saw_overload = true;
            break;
        }
    }
    assert!(saw_overload, "12 simultaneous requests never saturated a 1-slot queue");
    assert!(ok.load(Ordering::Relaxed) > 0, "saturation must not starve every request");

    // Rejection is not a wound: the daemon still serves.
    let mut cl = Client::connect(&addr).expect("connect");
    let resp = cl.infer(&infer_req(None)).expect("post-saturation request");
    assert!(served_psis(&resp).is_some(), "daemon must recover after shedding load");

    server.handle().shutdown();
    server.join();
}

#[test]
fn expired_deadline_returns_timed_out_partial_result_and_worker_survives() {
    // A single worker so the follow-up request provably reuses the worker
    // that served the timed-out one.
    let server = Server::start(ServerConfig { workers: 1, ..ServerConfig::default() })
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");

    // deadline_ms = 0 expires at admission: the worker must still produce
    // a (partial, sound) response marked timed_out, not hang or die.
    let resp = cl.infer(&infer_req(Some(0))).expect("timed-out round-trip");
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        resp.get("timed_out").and_then(|v| v.as_bool()),
        Some(true),
        "zero deadline must be reported: {resp:?}"
    );

    // Same lone worker, fresh deadline-free request: full result.
    let resp = cl.infer(&infer_req(None)).expect("follow-up round-trip");
    assert_eq!(resp.get("timed_out").and_then(|v| v.as_bool()), Some(false));
    let psis = served_psis(&resp).expect("follow-up succeeds");
    assert_eq!(psis, vec!["x != 0".to_string()]);

    // The daemon-wide timed_out counter observed the event.
    let stats = cl.stats().expect("stats");
    let timed_out = stats
        .get("counters")
        .and_then(|c| c.get("timed_out"))
        .and_then(|v| v.as_u64())
        .expect("counters.timed_out");
    assert!(timed_out >= 1);

    server.handle().shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = Server::start(ServerConfig { workers: 2, ..ServerConfig::default() })
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.handle();

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let results: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let (addr, barrier) = (addr.clone(), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let mut cl = Client::connect(&addr).expect("connect");
                // A ping round-trip proves the daemon accepted this
                // connection (not merely the kernel's accept backlog), so
                // the infer below is genuinely in-flight at shutdown.
                cl.ping().expect("pre-shutdown ping");
                barrier.wait();
                cl.infer(&infer_req(None)).expect("in-flight request must get a reply")
            })
        })
        .collect();

    // Let the requests reach the daemon, then pull the plug while they are
    // (likely) queued or running.
    barrier.wait();
    std::thread::sleep(Duration::from_millis(5));
    handle.shutdown();

    // join() must return once drained — watchdog it so a drain bug fails
    // the test instead of hanging the suite.
    let (tx, rx) = mpsc::channel();
    let joiner = std::thread::spawn(move || {
        server.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("graceful shutdown wedged: join() did not return");
    joiner.join().unwrap();

    // Every in-flight request was answered: either completed (drained) or
    // rejected with the typed shutting_down error — never dropped.
    let mut drained = 0;
    for r in results {
        let resp = r.join().expect("client thread");
        match resp.str_field("error") {
            None => {
                assert!(served_psis(&resp).is_some(), "drained reply must be complete");
                drained += 1;
            }
            Some("shutting_down") => {}
            Some(other) => panic!("unexpected error during drain: {other}"),
        }
    }
    assert!(drained > 0, "shutdown raced ahead of every request; none drained");

    // The listener is gone: new connections are refused.
    assert!(Client::connect(&addr).is_err(), "daemon must stop accepting after shutdown");
}
