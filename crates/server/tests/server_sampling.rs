//! Per-request tracing contract: head sampling is a deterministic
//! function of the admission order (same ids sampled on every run, under
//! any worker count), tail capture retains slow requests even with head
//! sampling off, the retained-trace ring evicts oldest-first, and — the
//! invariant everything else rides on — sampling never changes a served ψ.

use server::{served_psis, Client, InferRequest, Server, ServerConfig, TraceSelect};

fn infer_req(program: &str, func: &str) -> InferRequest {
    InferRequest {
        program: program.to_string(),
        func: Some(func.to_string()),
        deadline_ms: None,
        tests: None,
        jobs: 1,
        trace: None,
    }
}

fn motivating_req() -> InferRequest {
    let m = subjects::motivating::motivating();
    infer_req(m.source, m.name)
}

/// Submits `n` sequential requests and returns the head-sampled request
/// ids the `trace` verb reports, oldest first.
fn sampled_ids(cfg: ServerConfig, n: usize) -> Vec<u64> {
    let server = Server::start(cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    for _ in 0..n {
        let resp = cl.infer(&motivating_req()).expect("infer round-trip");
        assert!(served_psis(&resp).is_some(), "inference failed");
    }
    let resp = cl.trace(TraceSelect::Last(100)).expect("trace round-trip");
    let mut ids: Vec<u64> = resp
        .get("traces")
        .and_then(|t| t.as_array())
        .expect("trace verb returns a traces array")
        .iter()
        .filter(|t| t.str_field("reason") == Some("head"))
        .map(|t| t.u64_field("request_id").expect("trace carries request_id"))
        .collect();
    ids.reverse(); // the verb serves newest first
    server.handle().shutdown();
    server.join();
    ids
}

#[test]
fn head_sampling_is_deterministic_across_runs_and_worker_counts() {
    let cfg = |workers: usize| ServerConfig { workers, trace_sample: 3, ..ServerConfig::default() };
    // 1-based admission ids, 1-in-3: requests 1, 4, 7, 10.
    let expect = vec![1, 4, 7, 10];
    assert_eq!(sampled_ids(cfg(1), 10), expect);
    // Same sequence on a fresh daemon: the sampled set is a pure function
    // of arrival order, not of wall clock, RNG, or scheduling.
    assert_eq!(sampled_ids(cfg(1), 10), expect);
    // And independent of parallelism (one connection → sequential
    // admission regardless of the worker count).
    assert_eq!(sampled_ids(cfg(4), 10), expect);
}

#[test]
fn tail_capture_retains_slow_requests_with_head_sampling_off() {
    let server = Server::start(ServerConfig {
        trace_sample: 0,
        slow_trace_ms: Some(0), // every request is "slow": service > 0 ms
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    cl.infer(&motivating_req()).expect("infer round-trip");
    let resp = cl.trace(TraceSelect::Last(1)).expect("trace round-trip");
    let traces = resp.get("traces").and_then(|t| t.as_array()).expect("traces array");
    assert_eq!(traces.len(), 1, "slow request was not retained");
    let t = &traces[0];
    assert_eq!(t.str_field("reason"), Some("slow"));
    assert_eq!(t.u64_field("request_id"), Some(1));
    assert!(t.u64_field("service_us").unwrap() > 0);
    let events = t.get("events").and_then(|e| e.as_array()).expect("events array");
    assert!(!events.is_empty(), "retained trace carries no events");
    // The trailing `run` summary makes the export self-describing.
    let run = events
        .iter()
        .find(|e| e.str_field("ev") == Some("run"))
        .expect("retained trace ends with a run event");
    assert_eq!(run.u64_field("request_id"), Some(1));
    assert!(run.u64_field("dur_us").is_some() && run.u64_field("queue_us").is_some());
    server.handle().shutdown();
    server.join();
}

#[test]
fn trace_ring_evicts_oldest_and_serves_by_request_id() {
    let server = Server::start(ServerConfig {
        trace_sample: 1, // retain every request
        trace_buffer: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    for _ in 0..3 {
        cl.infer(&motivating_req()).expect("infer round-trip");
    }
    let resp = cl.trace(TraceSelect::Last(10)).expect("trace round-trip");
    let ids: Vec<u64> = resp
        .get("traces")
        .and_then(|t| t.as_array())
        .expect("traces array")
        .iter()
        .map(|t| t.u64_field("request_id").unwrap())
        .collect();
    assert_eq!(ids, vec![3, 2], "ring must hold the newest two, newest first");
    // The evicted request is gone; a retained one is fetchable by id.
    let gone = cl.trace(TraceSelect::ById(1)).expect("trace round-trip");
    assert_eq!(gone.get("traces").and_then(|t| t.as_array()).unwrap().len(), 0);
    let kept = cl.trace(TraceSelect::ById(3)).expect("trace round-trip");
    assert_eq!(kept.get("traces").and_then(|t| t.as_array()).unwrap().len(), 1);
    // `stats` accounts for the retention and the eviction.
    let stats = cl.stats().expect("stats round-trip");
    let traces = stats.get("traces").expect("stats carries a traces object");
    assert_eq!(traces.u64_field("retained_head"), Some(3));
    assert_eq!(traces.u64_field("evicted"), Some(1));
    assert_eq!(traces.u64_field("buffered"), Some(2));
    server.handle().shutdown();
    server.join();
}

#[test]
fn stats_exposes_uptime_queue_capacity_and_queue_wait() {
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    let resp = cl.infer(&motivating_req()).expect("infer round-trip");
    assert_eq!(resp.u64_field("request_id"), Some(1), "infer response echoes the admission id");
    let stats = cl.stats().expect("stats round-trip");
    let counters = stats.get("counters").expect("counters object");
    assert_eq!(counters.u64_field("queue_capacity"), Some(64));
    assert!(counters.u64_field("uptime_s").is_some(), "counters lacks uptime_s");
    let wait =
        stats.get("latency").and_then(|l| l.get("queue_wait")).expect("latency carries queue_wait");
    assert!(
        wait.u64_field("count").unwrap() >= 1,
        "queue_wait histogram recorded nothing after an inference"
    );
    server.handle().shutdown();
    server.join();
}

#[test]
fn metrics_verb_serves_prometheus_exposition() {
    let server = Server::start(ServerConfig { trace_sample: 1, ..ServerConfig::default() })
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    cl.infer(&motivating_req()).expect("infer round-trip");
    // A request inside a sampled cross-process trace context leaves its
    // trace_id as an exemplar on the latency histograms.
    let mut in_trace = motivating_req();
    in_trace.trace = Some(server::TraceContext {
        trace_id: "00112233445566778899aabbccddeeff".to_string(),
        parent_span_id: Some(3),
        sampled: true,
    });
    cl.infer(&in_trace).expect("infer round-trip (in trace)");
    let resp = cl.metrics().expect("metrics round-trip");
    assert_eq!(resp.str_field("verb"), Some("metrics"));
    let text = resp.str_field("text").expect("metrics response carries the exposition text");

    // Cache, tier, stage, verb, queue, and trace series are all present.
    for needle in [
        "# TYPE preinfer_cache_lookups_total counter",
        "preinfer_cache_lookups_total{result=\"hit\"}",
        "preinfer_cache_lookups_total{result=\"miss\"}",
        "preinfer_solver_tier_answers_total{tier=\"interval\"}",
        "preinfer_stage_duration_us_bucket{stage=\"prune\",le=\"+Inf\"}",
        "preinfer_stage_duration_us_count{stage=\"prune\"}",
        "preinfer_request_duration_us_bucket{verb=\"infer\",le=\"+Inf\"}",
        "preinfer_queue_wait_us_count",
        "preinfer_queue_depth",
        "preinfer_queue_capacity 64",
        "preinfer_uptime_seconds",
        "preinfer_infer_results_total{result=\"ok\"} 2",
        "preinfer_traces_retained_total{reason=\"head\"} 1",
        "preinfer_traces_retained_total{reason=\"context\"} 1",
        "preinfer_trace_buffer_entries 2",
        // The context-carrying request's exemplar, on whatever latency
        // bucket its duration landed in.
        " # {trace_id=\"00112233445566778899aabbccddeeff\"} ",
    ] {
        assert!(text.contains(needle), "exposition lacks `{needle}`:\n{text}");
    }

    // Every line matches the text format: comments are HELP/TYPE, samples
    // end in a parseable value (with an optional OpenMetrics exemplar
    // suffix on bucket lines), histogram bucket counts are cumulative.
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (sample, exemplar) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        if let Some(ex) = exemplar {
            // `# {label="..."} value`, and only on bucket lines.
            assert!(sample.contains("_bucket{"), "exemplar on a non-bucket line: {line}");
            let (labels, ex_value) =
                ex.rsplit_once(' ').unwrap_or_else(|| panic!("no exemplar value: {line}"));
            assert!(
                labels.starts_with("{trace_id=\"") && labels.ends_with("\"}"),
                "bad exemplar labels: {line}"
            );
            assert!(ex_value.parse::<f64>().is_ok(), "unparseable exemplar value: {line}");
        }
        let (series, value) = sample.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample value: {line}"
        );
        if let Some((name, _)) = series.split_once('{') {
            if name.ends_with("_bucket") {
                let v: u64 = value.parse().expect("bucket counts are integers");
                let key = series.split("le=").next().unwrap_or(series).to_string();
                if let Some((prev_key, prev)) = &last_bucket {
                    if *prev_key == key {
                        assert!(v >= *prev, "bucket counts must be cumulative: {line}");
                    }
                }
                last_bucket = Some((key, v));
                continue;
            }
        }
        last_bucket = None;
    }
    server.handle().shutdown();
    server.join();
}

/// The tentpole invariant: per-request recording sinks never change a
/// served answer. Every corpus subject's ψ is byte-identical between a
/// daemon that samples every request and one that never samples.
#[test]
fn sampling_never_changes_a_served_psi_across_the_corpus() {
    let sampled = Server::start(ServerConfig {
        trace_sample: 1,
        slow_trace_ms: Some(0),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let plain = Server::start(ServerConfig::default()).expect("bind loopback");
    let mut cl_sampled = Client::connect(&sampled.local_addr().to_string()).expect("connect");
    let mut cl_plain = Client::connect(&plain.local_addr().to_string()).expect("connect");

    let corpus = subjects::all_subjects();
    assert!(corpus.len() >= 50, "corpus unexpectedly small: {}", corpus.len());
    for m in &corpus {
        let req = infer_req(m.source, m.name);
        let with = served_psis(&cl_sampled.infer(&req).expect("infer (sampled)"))
            .unwrap_or_else(|| panic!("{}: sampled daemon errored", m.name));
        let without = served_psis(&cl_plain.infer(&req).expect("infer (plain)"))
            .unwrap_or_else(|| panic!("{}: plain daemon errored", m.name));
        assert_eq!(with, without, "{}: sampling changed a served ψ", m.name);
    }
    // Sanity: the sampled daemon actually recorded per-request traces.
    let stats = cl_sampled.stats().expect("stats round-trip");
    let retained = stats
        .get("traces")
        .and_then(|t| t.get("retained_head"))
        .and_then(|v| v.as_u64())
        .expect("stats carries traces.retained_head");
    assert_eq!(retained, corpus.len() as u64, "every request should have been head-sampled");

    sampled.handle().shutdown();
    sampled.join();
    plain.handle().shutdown();
    plain.join();
}
