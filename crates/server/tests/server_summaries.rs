//! Daemon-lifetime summary-table behavior under `--interproc summary`:
//! the `summaries` stats block is served and populated, a repeat pass over
//! the same corpus strictly increases the table hit rate (α-equivalent
//! callee closures are re-resolved from the shared table instead of
//! re-inferred), served ψ stays identical across passes, and the
//! `preinfer_summary_*` metrics family appears in the exposition.

use concolic::InterprocMode;
use server::{served_psis, Client, InferRequest, Server, ServerConfig};

const CHAIN: &str = "
fn leaf(d int) -> int { return 10 / d; }
fn mid(a int) -> int { return leaf(a - 1); }
fn entry(x int) -> int { return mid(x - 2); }";

/// The same callee closure modulo identifier naming: hits the table
/// without its own inference.
const CHAIN_RENAMED: &str = "
fn divisor(den int) -> int { return 10 / den; }
fn shifted(v int) -> int { return divisor(v - 1); }
fn entry(y int) -> int { return shifted(y - 2); }";

fn req(program: &str) -> InferRequest {
    InferRequest {
        program: program.to_string(),
        func: Some("entry".to_string()),
        deadline_ms: None,
        tests: None,
        jobs: 1,
        trace: None,
    }
}

fn summary_field(cl: &mut Client, field: &str) -> u64 {
    let stats = cl.stats().expect("stats round-trip");
    stats
        .get("summaries")
        .and_then(|s| s.u64_field(field))
        .unwrap_or_else(|| panic!("stats response lacks summaries.{field}: {stats:?}"))
}

#[test]
fn summary_table_is_daemon_lifetime_and_second_pass_increases_hit_rate() {
    let server = Server::start(ServerConfig {
        workers: 1,
        interproc: InterprocMode::Summary,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut cl = Client::connect(&server.local_addr().to_string()).expect("connect");

    // Pass 1: cold table — every callee closure misses and is inserted.
    let first = cl.infer(&req(CHAIN)).expect("first pass");
    let first_psis = served_psis(&first).expect("first pass served psi");
    assert!(!first_psis.is_empty(), "multi-function subject must infer");
    let stats1 = cl.stats().expect("stats");
    let block = stats1.get("summaries").expect("summaries stats block");
    assert_eq!(block.str_field("mode"), Some("summary"));
    let (h1, m1) = (summary_field(&mut cl, "hits"), summary_field(&mut cl, "misses"));
    assert!(summary_field(&mut cl, "inserts") > 0, "cold pass must populate the table");
    assert!(summary_field(&mut cl, "entries") > 0);
    assert!(summary_field(&mut cl, "applies") > 0, "call sites must apply summaries");
    assert!(m1 > 0, "cold pass must miss");
    let rate1 = h1 as f64 / (h1 + m1) as f64;

    // Pass 2: the same program plus an α-renamed closure — both resolve
    // from the shared table, so hits strictly increase and so does the
    // lifetime hit rate; served ψ is unchanged.
    let second = cl.infer(&req(CHAIN)).expect("second pass");
    assert_eq!(served_psis(&second).expect("second pass served psi"), first_psis);
    let renamed = cl.infer(&req(CHAIN_RENAMED)).expect("renamed pass");
    assert!(served_psis(&renamed).is_some());
    let (h2, m2) = (summary_field(&mut cl, "hits"), summary_field(&mut cl, "misses"));
    assert!(h2 > h1, "repeat pass must hit the daemon-lifetime table");
    let rate2 = h2 as f64 / (h2 + m2) as f64;
    assert!(rate2 > rate1, "hit rate must strictly increase across passes ({rate1} -> {rate2})");

    let metrics = cl.metrics().expect("metrics");
    let text = metrics.str_field("text").expect("exposition text").to_string();
    for family in [
        "preinfer_summary_table_lookups_total",
        "preinfer_summary_table_entries",
        "preinfer_summary_applies_total",
        "preinfer_summary_fallbacks_total",
    ] {
        assert!(text.contains(family), "metrics exposition lacks {family}");
    }

    server.handle().shutdown();
    server.join();
}

#[test]
fn inline_mode_serves_an_idle_summaries_block() {
    // The default daemon reports the block (mode inline, all-zero) so
    // dashboards can scrape one shape regardless of configuration.
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let mut cl = Client::connect(&server.local_addr().to_string()).expect("connect");
    let resp = cl.infer(&req(CHAIN)).expect("infer");
    assert!(served_psis(&resp).is_some());
    let stats = cl.stats().expect("stats");
    let block = stats.get("summaries").expect("summaries stats block");
    assert_eq!(block.str_field("mode"), Some("inline"));
    assert_eq!(block.u64_field("applies"), Some(0));
    assert_eq!(block.u64_field("entries"), Some(0));
    server.handle().shutdown();
    server.join();
}
