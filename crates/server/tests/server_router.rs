//! The sharding front's core contract: a ψ served *through*
//! `preinfer-router` is byte-identical to what a direct daemon serves and
//! to what the offline pipeline computes — for every subject in the
//! evaluation corpus, across two shards — and key-affinity routing sends
//! repeat submissions of the same method back to the same shard, which is
//! observable as each shard's cumulative solver-cache hit rate rising on
//! a second corpus pass.

use server::protocol;
use server::{
    served_psis, Client, InferRequest, IoMode, Router, RouterConfig, Server, ServerConfig,
};

fn start_shard(io: IoMode) -> Server {
    Server::start(ServerConfig { workers: 1, io, ..ServerConfig::default() })
        .expect("bind shard daemon")
}

fn start_router(shards: &[&Server]) -> Router {
    Router::start(RouterConfig {
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        ..RouterConfig::default()
    })
    .expect("start router")
}

/// The router part's `request_id` from a stitched trace response (the
/// router's own admission counter, not any shard's).
fn a_router_request_id(resp: &server::json::Json) -> u64 {
    resp.get("traces")
        .and_then(|t| t.as_array())
        .and_then(|ts| ts.iter().find(|t| t.str_field("process") == Some("preinfer-router")))
        .and_then(|t| t.u64_field("request_id"))
        .expect("stitched response carries the router part's request id")
}

fn infer_req(m: &subjects::SubjectMethod) -> InferRequest {
    InferRequest {
        program: m.source.to_string(),
        func: Some(m.name.to_string()),
        deadline_ms: None,
        tests: None,
        jobs: 1,
        trace: None,
    }
}

/// The offline pipeline's rendered ψ strings for one subject, in ACL
/// order — the ground truth every serving topology must match.
fn offline_psis(m: &subjects::SubjectMethod) -> Vec<String> {
    let tp = m.compile();
    let suite = testgen::generate_tests(&tp, m.name, &testgen::TestGenConfig::default());
    let cfg = preinfer_core::PreInferConfig::default();
    preinfer_core::infer_all_preconditions(&tp, m.name, &suite, &cfg, 1)
        .iter()
        .map(|(_, inf)| inf.precondition.psi.to_string())
        .collect()
}

fn solver_hit_rate(cl: &mut Client) -> f64 {
    let stats = cl.stats().expect("stats round-trip");
    stats
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(|v| v.as_f64())
        .expect("stats carries cache.hit_rate")
}

fn solver_misses(cl: &mut Client) -> u64 {
    let stats = cl.stats().expect("stats round-trip");
    stats.get("cache").and_then(|c| c.u64_field("misses")).expect("stats carries cache.misses")
}

/// Corpus differential across the router, plus the key-affinity claim.
#[test]
fn routed_psis_match_direct_and_offline_for_the_whole_corpus() {
    // One shard on each io core: the router must be oblivious.
    let shard0 = start_shard(IoMode::Epoll);
    let shard1 = start_shard(IoMode::Threads);
    let direct = start_shard(IoMode::Threads);
    let router = start_router(&[&shard0, &shard1]);

    let mut via_router = Client::connect(&router.local_addr().to_string()).expect("connect");
    let mut via_direct = Client::connect(&direct.local_addr().to_string()).expect("connect");
    let mut s0 = Client::connect(&shard0.local_addr().to_string()).expect("connect shard0");
    let mut s1 = Client::connect(&shard1.local_addr().to_string()).expect("connect shard1");

    let corpus = subjects::all_subjects();
    assert!(!corpus.is_empty());

    // Pass 1: routed ψ == direct ψ == offline ψ, byte for byte.
    for m in &corpus {
        let truth = offline_psis(m);
        let routed = via_router.infer(&infer_req(m)).expect("infer via router");
        let directly = via_direct.infer(&infer_req(m)).expect("infer via direct daemon");
        let routed_psis = served_psis(&routed)
            .unwrap_or_else(|| panic!("{}: router returned an error response", m.name));
        let direct_psis = served_psis(&directly)
            .unwrap_or_else(|| panic!("{}: direct daemon returned an error response", m.name));
        assert_eq!(routed_psis, truth, "{}: routed ψ diverged from offline", m.name);
        assert_eq!(routed_psis, direct_psis, "{}: routed ψ diverged from direct", m.name);
    }

    // Both shards took real traffic (71 subjects hash-split two ways),
    // and the split is exactly what `shard_of` predicts.
    let miss0 = solver_misses(&mut s0);
    let miss1 = solver_misses(&mut s1);
    assert!(miss0 > 0 && miss1 > 0, "hash split degenerate: {miss0}/{miss1} solver misses");
    let rate0 = solver_hit_rate(&mut s0);
    let rate1 = solver_hit_rate(&mut s1);

    // Pass 2, again through the router: affinity must land every subject
    // on the shard whose solver cache it already warmed, so each shard's
    // *cumulative* hit rate strictly rises; a misroute would add cold
    // misses instead.
    for m in &corpus {
        let resp = via_router.infer(&infer_req(m)).expect("infer via router (warm)");
        assert!(served_psis(&resp).is_some(), "{}: warm routed pass failed", m.name);
    }
    let rate0b = solver_hit_rate(&mut s0);
    let rate1b = solver_hit_rate(&mut s1);
    assert!(rate0b > rate0, "shard0 hit rate must rise ({rate0} -> {rate0b})");
    assert!(rate1b > rate1, "shard1 hit rate must rise ({rate1} -> {rate1b})");

    router.handle().shutdown();
    router.join();
    for s in [shard0, shard1, direct] {
        s.handle().shutdown();
        s.join();
    }
}

/// A shard with no live connection yields an immediate typed
/// `upstream_unavailable`; the surviving shard keeps serving.
#[test]
fn dead_shard_yields_typed_upstream_unavailable() {
    let shard0 = start_shard(IoMode::Epoll);
    let shard1 = start_shard(IoMode::Epoll);
    let router = start_router(&[&shard0, &shard1]);
    let mut cl = Client::connect(&router.local_addr().to_string()).expect("connect");

    // Find corpus subjects on each side of the hash split.
    let corpus = subjects::all_subjects();
    let on_shard = |want: usize| {
        corpus
            .iter()
            .find(|m| server::shard_of(m.source, Some(m.name), 2) == want)
            .expect("corpus covers both shards")
    };
    let dead_subject = on_shard(0);
    let live_subject = on_shard(1);

    shard0.handle().shutdown();
    shard0.join();
    // Give the router a beat to observe the EOFs on its pooled conns.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let resp = cl.infer(&infer_req(dead_subject)).expect("typed error round-trip");
    assert_eq!(resp.str_field("error"), Some("upstream_unavailable"));
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(false));

    let resp = cl.infer(&infer_req(live_subject)).expect("live shard round-trip");
    assert!(served_psis(&resp).is_some(), "surviving shard must keep serving: {resp:?}");

    router.handle().shutdown();
    router.join();
    shard1.handle().shutdown();
    shard1.join();
}

/// `stats` and `metrics` fan out to every shard and come back merged:
/// stats nests each shard's full report under its index, metrics
/// re-labels each shard's exposition with `shard="i"`.
#[test]
fn fanout_verbs_merge_across_shards() {
    let shard0 = start_shard(IoMode::Threads);
    let shard1 = start_shard(IoMode::Epoll);
    let router = start_router(&[&shard0, &shard1]);
    let mut cl = Client::connect(&router.local_addr().to_string()).expect("connect");

    // Some traffic so the counters are non-trivial.
    let m = &subjects::all_subjects()[0];
    cl.infer(&infer_req(m)).expect("infer");

    let stats = cl.stats().expect("merged stats");
    assert_eq!(stats.get("ok").and_then(|v| v.as_bool()), Some(true));
    let router_block = stats.get("router").expect("router block");
    assert_eq!(router_block.u64_field("shards"), Some(2));
    assert_eq!(router_block.u64_field("forwarded"), Some(1));
    let shards = stats.get("shards").and_then(|s| s.as_array()).expect("shards array");
    assert_eq!(shards.len(), 2, "one entry per shard");
    for (i, entry) in shards.iter().enumerate() {
        assert_eq!(entry.u64_field("shard"), Some(i as u64));
        let nested = entry.get("stats").expect("nested shard stats");
        assert!(nested.get("counters").is_some(), "full shard report nested verbatim");
    }

    let metrics = cl.metrics().expect("merged metrics");
    let text = metrics.str_field("text").expect("exposition text");
    assert!(text.contains("shard=\"0\""), "shard 0 exposition present");
    assert!(text.contains("shard=\"1\""), "shard 1 exposition present");
    assert!(text.contains("preinfer_router_requests_total"), "router's own metrics lead the merge");
    // HELP/TYPE headers are deduplicated across shards.
    let help_lines = text.lines().filter(|l| l.starts_with("# HELP preinfer_queue_depth")).count();
    assert_eq!(help_lines, 1, "headers deduped across shards");

    router.handle().shutdown();
    router.join();
    for s in [shard0, shard1] {
        s.handle().shutdown();
        s.join();
    }
}

/// Distributed tracing is behaviorally neutral and joinable. ψ served
/// with tracing off, with the router head-sampling every request
/// (router-minted contexts), and with a client-supplied trace context is
/// byte-identical to the offline pipeline in all three modes; and a
/// traced routed request leaves one *stitched* multi-process trace —
/// the router's `trace --trace-id X` verb returns the router part and
/// the owning shard's part under the same trace_id, and `obs::analyze`
/// merges their event streams into a single tree with the shard's `run`
/// nested under the router's `upstream_rtt` span.
#[test]
fn tracing_is_psi_neutral_and_stitches_across_processes() {
    let shard0 = start_shard(IoMode::Epoll);
    let shard1 = start_shard(IoMode::Threads);
    let plain = start_router(&[&shard0, &shard1]);
    let traced = Router::start(RouterConfig {
        shards: vec![shard0.local_addr().to_string(), shard1.local_addr().to_string()],
        trace_sample: 1,
        ..RouterConfig::default()
    })
    .expect("start traced router");

    let mut via_plain = Client::connect(&plain.local_addr().to_string()).expect("connect");
    let mut via_traced = Client::connect(&traced.local_addr().to_string()).expect("connect");

    let corpus = subjects::all_subjects();
    let mut last_tid = String::new();
    for (i, m) in corpus.iter().step_by(5).enumerate() {
        let truth = offline_psis(m);
        let off = served_psis(&via_plain.infer(&infer_req(m)).expect("infer untraced"))
            .unwrap_or_else(|| panic!("{}: untraced router returned an error", m.name));
        let minted = served_psis(&via_traced.infer(&infer_req(m)).expect("infer router-minted"))
            .unwrap_or_else(|| panic!("{}: traced router returned an error", m.name));
        let mut req = infer_req(m);
        let tid = format!("{:032x}", 0xfeed_face_0000_0000_u128 + i as u128);
        req.trace = Some(server::TraceContext {
            trace_id: tid.clone(),
            parent_span_id: None,
            sampled: true,
        });
        let supplied = served_psis(&via_traced.infer(&req).expect("infer client-context"))
            .unwrap_or_else(|| panic!("{}: client-context request returned an error", m.name));
        assert_eq!(off, truth, "{}: untraced ψ diverged from offline", m.name);
        assert_eq!(minted, truth, "{}: router-minted tracing changed ψ", m.name);
        assert_eq!(supplied, truth, "{}: client trace context changed ψ", m.name);
        last_tid = tid;
    }

    // Fetch the stitched trace for the last client-supplied id: the
    // router part leads, the owning shard's part follows, same trace_id.
    let resp = via_traced
        .trace(server::TraceSelect::ByTraceId(last_tid.clone()))
        .expect("stitched trace verb");
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let traces = resp.get("traces").and_then(|t| t.as_array()).expect("traces array");
    assert_eq!(traces.len(), 2, "router part + owning shard part: {resp:?}");
    assert_eq!(traces[0].str_field("process"), Some("preinfer-router"));
    assert_eq!(traces[0].str_field("reason"), Some("context"));
    assert!(traces[1].get("shard").and_then(|v| v.as_u64()).is_some(), "shard part tagged");
    for t in traces {
        assert_eq!(t.str_field("trace_id"), Some(last_tid.as_str()));
    }

    // Merge both event streams (re-rendered to JSON lines, as a client
    // piping to `preinfer-trace -` would) and check the tree shape.
    let mut lines: Vec<String> = Vec::new();
    for t in traces {
        let events = t.get("events").and_then(|e| e.as_array()).expect("events array");
        for ev in events {
            lines.push(server::json::render(ev));
        }
    }
    let a =
        obs::TraceAnalysis::from_lines(lines.iter().map(String::as_str)).expect("merged analysis");
    assert_eq!(a.trace_id.as_deref(), Some(last_tid.as_str()));
    assert_eq!(a.processes, vec!["preinfer-router", "preinferd"]);
    assert_eq!(a.roots.len(), 1, "one merged tree rooted at the router's route span");
    let root = &a.spans[&a.roots[0]];
    assert_eq!(root.stage, "route");
    let rtt = root
        .children
        .iter()
        .map(|c| &a.spans[c])
        .find(|s| s.stage == "upstream_rtt")
        .expect("route has an upstream_rtt child");
    let run = rtt
        .children
        .iter()
        .map(|c| &a.spans[c])
        .find(|s| s.stage == "run")
        .expect("shard run nests under upstream_rtt");
    assert_eq!(run.process, "preinferd");
    assert!(run.dur_us <= rtt.dur_us, "shard service time fits inside the rtt span");
    assert!(!run.children.is_empty(), "shard pipeline spans hang under its run node");
    // Cross-tier accounting stays within the router's wall clock.
    assert!(
        a.exclusive_total_us() <= a.wall_us(),
        "exclusive {} µs exceeds wall {} µs",
        a.exclusive_total_us(),
        a.wall_us()
    );
    let per = a.process_totals();
    assert_eq!(per.len(), 2, "both tiers in the exclusive split");
    assert!(per.iter().all(|(_, us)| *us > 0), "both tiers did attributable work: {per:?}");

    // `trace --request-id` against the router resolves ownership via the
    // router's own ring: the shard leg is fetched by the distributed
    // trace_id, not by the shard's coincidental request numbering, so
    // the same stitched pair comes back.
    let router_rid = a_router_request_id(&resp);
    let by_rid =
        via_traced.trace(server::TraceSelect::ById(router_rid)).expect("trace by request id");
    let rid_traces = by_rid.get("traces").and_then(|t| t.as_array()).expect("traces array");
    assert_eq!(rid_traces.len(), 2, "request-id lookup resolves the owning shard: {by_rid:?}");
    for t in rid_traces {
        assert_eq!(t.str_field("trace_id"), Some(last_tid.as_str()));
    }

    // Router-minted traces were retained too (reason `head`, a real
    // 32-hex id) even though the client never saw their ids.
    let minted = via_traced.trace(server::TraceSelect::Last(64)).expect("trace verb");
    let minted_traces = minted.get("traces").and_then(|t| t.as_array()).expect("traces");
    let head_minted = minted_traces.iter().any(|t| {
        t.str_field("process") == Some("preinfer-router")
            && t.str_field("reason") == Some("head")
            && t.str_field("trace_id")
                .is_some_and(|tid| tid.len() == 32 && tid.chars().all(|c| c.is_ascii_hexdigit()))
    });
    assert!(head_minted, "router-minted head samples retained in the router ring");

    for r in [plain, traced] {
        r.handle().shutdown();
        r.join();
    }
    for s in [shard0, shard1] {
        s.handle().shutdown();
        s.join();
    }
}

/// Requests pipelined onto one router connection complete and are
/// correlated by id even when shards answer out of order.
#[test]
fn pipelined_requests_are_answered_by_id() {
    let shard0 = start_shard(IoMode::Epoll);
    let shard1 = start_shard(IoMode::Epoll);
    let router = start_router(&[&shard0, &shard1]);
    let mut cl = Client::connect(&router.local_addr().to_string()).expect("connect");

    let corpus = subjects::all_subjects();
    let depth = 8.min(corpus.len());
    for (i, m) in corpus.iter().take(depth).enumerate() {
        let frame = protocol::render_infer(Some(&format!("pipe-{i}")), &infer_req(m));
        protocol::write_frame(cl.stream_mut(), &frame).expect("pipelined write");
    }
    let mut seen = std::collections::HashSet::new();
    for _ in 0..depth {
        let resp = cl.read_response().expect("pipelined response");
        assert!(served_psis(&resp).is_some(), "pipelined request failed: {resp:?}");
        let id = resp.str_field("id").expect("id echoed").to_string();
        assert!(id.starts_with("pipe-"), "original id spliced back, got {id}");
        assert!(seen.insert(id), "each id answered exactly once");
    }
    assert_eq!(seen.len(), depth);

    router.handle().shutdown();
    router.join();
    for s in [shard0, shard1] {
        s.handle().shutdown();
        s.join();
    }
}
