//! The serving layer's observability contract: the trace stream a
//! recording sink captures during `run_infer` is consumable by the
//! server's own strict JSON parser, and the `stats` verb exposes the
//! per-stage latency histograms fed by the daemon's aggregate sink.

use server::{
    json, run_infer, Client, IncrementalPolicy, InferRequest, Server, ServerConfig, SummaryPolicy,
};
use solver::{Deadline, SolverCache, TierCounters};
use std::sync::Arc;

fn motivating_request() -> InferRequest {
    let m = subjects::motivating::motivating();
    InferRequest {
        program: m.source.to_string(),
        func: Some(m.name.to_string()),
        deadline_ms: None,
        tests: None,
        jobs: 1,
        trace: None,
    }
}

#[test]
fn run_infer_trace_lines_parse_with_the_servers_own_parser() {
    let cache = Arc::new(SolverCache::new());
    let sink = Arc::new(obs::TraceSink::recording());
    let trace = Some(sink.clone());
    run_infer(
        &motivating_request(),
        &cache,
        &Deadline::default(),
        &trace,
        &Arc::new(TierCounters::default()),
        &IncrementalPolicy::default(),
        &SummaryPolicy::default(),
    )
    .expect("inference succeeds");
    let lines = sink.lines();
    assert!(!lines.is_empty(), "recording sink captured nothing");
    for line in lines.iter() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("unparsable trace line {line}: {e}"));
        let ev = v.str_field("ev").expect("every event names its kind");
        assert!(v.u64_field("seq").is_some(), "event {ev} lacks a seq");
        match ev {
            "span_start" | "span_end" => {
                assert!(v.str_field("stage").is_some(), "{ev} lacks a stage");
            }
            "solver_call" => {
                assert!(
                    v.str_field("verdict").is_some() && v.str_field("lookup").is_some(),
                    "solver_call lacks verdict/lookup labels"
                );
                assert!(
                    matches!(
                        v.str_field("tier"),
                        Some("syntactic" | "interval" | "simplex" | "none")
                    ),
                    "solver_call lacks a tier label"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn stats_verb_serves_stage_histograms() {
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");
    cl.infer(&motivating_request()).expect("infer round-trip");
    let stats = cl.stats().expect("stats round-trip");
    let cache = stats.get("cache").expect("stats carries a cache object");
    assert!(
        cache.get("evicted_entries").and_then(|v| v.as_u64()).is_some(),
        "stats.cache lacks evicted_entries"
    );
    let tiers = stats.get("solver_tiers").expect("stats carries solver tier attribution");
    let mut answered = 0;
    for field in ["answered_by_syntactic", "answered_by_interval", "answered_by_simplex"] {
        answered += tiers
            .get(field)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("stats.solver_tiers lacks {field}"));
    }
    assert!(answered > 0, "no solver query was attributed to any tier after an inference");
    assert!(tiers.get("escalations").and_then(|v| v.as_u64()).is_some());
    let stages = stats.get("stages").expect("stats carries per-stage histograms");
    for stage in ["testgen", "partition", "prune", "generalize", "assemble", "solver"] {
        let s = stages.get(stage).unwrap_or_else(|| panic!("stats.stages lacks {stage}"));
        assert!(
            s.get("count").and_then(|v| v.as_u64()).expect("stage count") > 0,
            "stage {stage} recorded no activity after an inference"
        );
        for field in ["total_us", "mean_us", "p50_us", "p90_us", "p99_us"] {
            assert!(s.get(field).and_then(|v| v.as_u64()).is_some(), "stage {stage} lacks {field}");
        }
    }
    server.handle().shutdown();
    server.join();
}
