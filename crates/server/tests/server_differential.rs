//! The serving layer's core contract: a ψ served by `preinferd` is
//! byte-identical to the ψ the offline pipeline computes for the same
//! subject, for every subject in the evaluation corpus — and the shared
//! warm cache makes a second submission strictly cheaper, observable
//! through the `stats` verb.

use server::{served_psis, Client, Server, ServerConfig};

/// The offline pipeline's rendered ψ strings for one subject, in ACL
/// order. This mirrors what `service::run_infer` does on the daemon side,
/// but with a cold private cache — the ground truth the server must match.
fn offline_psis(m: &subjects::SubjectMethod) -> Vec<String> {
    let tp = m.compile();
    let suite = testgen::generate_tests(&tp, m.name, &testgen::TestGenConfig::default());
    let cfg = preinfer_core::PreInferConfig::default();
    preinfer_core::infer_all_preconditions(&tp, m.name, &suite, &cfg, 1)
        .iter()
        .map(|(_, inf)| inf.precondition.psi.to_string())
        .collect()
}

fn cumulative_hit_rate(cl: &mut Client) -> f64 {
    let stats = cl.stats().expect("stats round-trip");
    stats
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(|v| v.as_f64())
        .expect("stats carries cache.hit_rate")
}

#[test]
fn served_psis_match_offline_for_the_whole_corpus() {
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut cl = Client::connect(&addr).expect("connect");

    let corpus = subjects::all_subjects();
    assert!(!corpus.is_empty());
    let ground_truth: Vec<Vec<String>> = corpus.iter().map(offline_psis).collect();

    // Pass 1: cold daemon cache. Every served ψ must equal the offline one.
    for (m, truth) in corpus.iter().zip(&ground_truth) {
        let req = server::InferRequest {
            program: m.source.to_string(),
            func: Some(m.name.to_string()),
            deadline_ms: None,
            tests: None,
            jobs: 1,
            trace: None,
        };
        let resp = cl.infer(&req).expect("infer round-trip");
        let served = served_psis(&resp)
            .unwrap_or_else(|| panic!("{}: server returned an error response", m.name));
        assert_eq!(&served, truth, "{}: served ψ diverged from the offline pipeline", m.name);
    }
    let rate_after_first = cumulative_hit_rate(&mut cl);

    // Pass 2: warm cache. Same answers, strictly higher cumulative hit
    // rate — the canonical-key invariant means reuse never changes ψ.
    for (m, truth) in corpus.iter().zip(&ground_truth) {
        let req = server::InferRequest {
            program: m.source.to_string(),
            func: Some(m.name.to_string()),
            deadline_ms: None,
            tests: None,
            jobs: 1,
            trace: None,
        };
        let resp = cl.infer(&req).expect("infer round-trip (warm)");
        let served =
            served_psis(&resp).unwrap_or_else(|| panic!("{}: warm-cache error response", m.name));
        assert_eq!(&served, truth, "{}: warm-cache ψ diverged", m.name);
    }
    let rate_after_second = cumulative_hit_rate(&mut cl);
    assert!(
        rate_after_second > rate_after_first,
        "second corpus pass should raise the cumulative hit rate \
         ({rate_after_first} -> {rate_after_second})"
    );

    server.handle().shutdown();
    server.join();
}
