//! A minimal blocking client for the `preinferd` protocol, shared by the
//! `preinfer-client` binary, the integration tests, and the load
//! generator.

use crate::json::{self, Json};
use crate::protocol::{self, FrameError, InferRequest};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a `preinferd` instance.
pub struct Client {
    stream: TcpStream,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Frame(FrameError),
    /// The response was not parseable JSON.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::BadResponse(s) => write!(f, "unparseable response: {s}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7071`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous response timeout so a wedged daemon cannot hang the
        // client forever; inference deadlines are the daemon's job.
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(Client { stream })
    }

    /// Sends one rendered request payload and reads one response.
    pub fn round_trip(&mut self, payload: &str) -> Result<Json, ClientError> {
        protocol::write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    /// Reads one response frame without sending anything first (tests use
    /// this after pushing raw bytes through [`Client::stream_mut`]).
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let resp = protocol::read_frame(&mut self.stream).map_err(ClientError::Frame)?;
        json::parse(&resp).map_err(|e| ClientError::BadResponse(e.to_string()))
    }

    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.round_trip(&protocol::render_ping(None))
    }

    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.round_trip(&protocol::render_stats(None))
    }

    /// Scrapes the daemon's Prometheus exposition (the `metrics` verb).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.round_trip(&protocol::render_metrics(None))
    }

    /// Fetches retained request traces (the `trace` verb).
    pub fn trace(&mut self, select: crate::protocol::TraceSelect) -> Result<Json, ClientError> {
        self.round_trip(&protocol::render_trace(None, &select))
    }

    pub fn infer(&mut self, req: &InferRequest) -> Result<Json, ClientError> {
        self.round_trip(&protocol::render_infer(None, req))
    }

    /// The raw stream (tests use it to send hostile bytes).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Extracts the served ψ strings of an `infer` response, in ACL order.
/// `None` when the response is not a successful inference.
pub fn served_psis(resp: &Json) -> Option<Vec<String>> {
    if resp.get("ok")?.as_bool()? {
        Some(
            resp.get("acls")?
                .as_array()?
                .iter()
                .filter_map(|a| a.str_field("psi").map(str::to_string))
                .collect(),
        )
    } else {
        None
    }
}
