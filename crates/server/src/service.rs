//! Request execution: one `infer` request against the shared warm cache.
//!
//! This is the bridge between the wire protocol and the offline pipeline.
//! The invariant the differential tests lock in: an `infer` response's ψ
//! strings are byte-identical to what the offline
//! [`preinfer_core::infer_all_preconditions`] run produces for the same
//! program, because the shared [`SolverCache`] only memoizes values that
//! are pure functions of their canonical keys (PR 1's contract) — serving
//! from a warm cache amortizes cost without ever changing an answer.

use crate::json::ObjBuilder;
use crate::protocol::{ErrorCode, InferRequest};
use concolic::{InterprocMode, SummaryApplyStats};
use preinfer_core::{build_summaries, PreInferConfig, SummaryBuildConfig, SummaryTable};
use solver::{Deadline, IncrementalCounters, SolverCache, TierCounters};
use std::sync::Arc;
use std::time::Instant;
use testgen::{generate_tests, TestGenConfig};

/// Daemon-wide incremental-solving policy, threaded into every request's
/// solver configs: whether prefix-sharing call sites open warm sessions
/// (`--incremental`), and the shared counters they report into (served by
/// `stats` and the `preinfer_solver_incremental_*` metrics family).
/// Observation + speed only — served ψ is byte-identical either way.
#[derive(Debug, Clone)]
pub struct IncrementalPolicy {
    pub enabled: bool,
    pub stats: Arc<IncrementalCounters>,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        IncrementalPolicy { enabled: true, stats: Arc::new(IncrementalCounters::default()) }
    }
}

/// Daemon-wide interprocedural policy: whether `infer` requests apply
/// callee ψ-summaries at call sites (`--interproc summary`) or inline
/// callee bodies (the default), the daemon-lifetime [`SummaryTable`]
/// shared by every worker (α-equivalent callee closures across requests
/// hit instead of re-inferring), and the lifetime apply/fallback counters.
/// Served under `stats.summaries` and the `preinfer_summary_*` metrics.
#[derive(Debug, Clone)]
pub struct SummaryPolicy {
    pub mode: InterprocMode,
    pub table: Arc<SummaryTable>,
    pub stats: Arc<SummaryApplyStats>,
}

impl Default for SummaryPolicy {
    fn default() -> Self {
        SummaryPolicy {
            mode: InterprocMode::Inline,
            table: Arc::new(SummaryTable::new()),
            stats: Arc::new(SummaryApplyStats::default()),
        }
    }
}

/// One inferred ACL in an `infer` response.
#[derive(Debug, Clone)]
pub struct AclOutcome {
    /// Debug-rendered check id (stable across offline/served runs).
    pub acl: String,
    /// The check kind label (e.g. `DivideByZero`).
    pub kind: String,
    /// Rendered inferred precondition.
    pub psi: String,
    /// Rendered failure condition.
    pub alpha: String,
    pub quantified: bool,
    /// Pruning counters: examined / removed / dynamic runs.
    pub examined: usize,
    pub removed: usize,
    pub dynamic_runs: usize,
}

/// A completed `infer` request.
#[derive(Debug, Clone)]
pub struct InferOutcome {
    pub func: String,
    pub tests: usize,
    pub coverage_percent: f64,
    pub acls: Vec<AclOutcome>,
    /// Whether the per-request deadline expired mid-run (partial result).
    pub timed_out: bool,
    /// Inference wall-clock, milliseconds.
    pub elapsed_ms: f64,
}

/// A failed `infer` request (typed; never a panic).
#[derive(Debug, Clone)]
pub struct ServiceError {
    pub code: ErrorCode,
    pub message: String,
}

/// Runs one `infer` request to completion. `deadline` must already be
/// running (the clock starts at admission, so queue wait counts against
/// the request's budget). `trace` is an observation-only sink (the daemon
/// passes its shared aggregate sink; it never changes any answer), and
/// `tiers` accumulates which solver tier answered each executed query —
/// the daemon shares one set across workers and serves it under `stats`.
pub fn run_infer(
    req: &InferRequest,
    cache: &Arc<SolverCache>,
    deadline: &Deadline,
    trace: &Option<Arc<obs::TraceSink>>,
    tiers: &Arc<TierCounters>,
    incremental: &IncrementalPolicy,
    summaries: &SummaryPolicy,
) -> Result<InferOutcome, ServiceError> {
    let start = Instant::now();
    let program = minilang::compile(&req.program)
        .map_err(|e| ServiceError { code: ErrorCode::CompileError, message: e.to_string() })?;
    let func_name = match &req.func {
        Some(name) => {
            if program.func(name).is_none() {
                return Err(ServiceError {
                    code: ErrorCode::BadRequest,
                    message: format!("no function `{name}` in program"),
                });
            }
            name.clone()
        }
        None => match program.program().funcs.first() {
            Some(f) => f.name.clone(),
            None => {
                return Err(ServiceError {
                    code: ErrorCode::BadRequest,
                    message: "program has no functions".to_string(),
                })
            }
        },
    };

    let mut tg = TestGenConfig::default();
    if let Some(n) = req.tests {
        tg.max_runs = n;
    }
    tg.solver_cache = Some(cache.clone());
    tg.solver.deadline = deadline.clone();
    tg.solver.trace = trace.clone();
    tg.solver.tiers = tiers.clone();
    tg.solver.incremental = incremental.enabled;
    tg.solver.incremental_stats = incremental.stats.clone();
    tg.trace = trace.clone();

    let mut cfg = PreInferConfig::default();
    cfg.prune.solver_cache = Some(cache.clone());
    cfg.prune.solver.deadline = deadline.clone();
    cfg.prune.solver.trace = trace.clone();
    cfg.prune.solver.tiers = tiers.clone();
    cfg.prune.solver.incremental = incremental.enabled;
    cfg.prune.solver.incremental_stats = incremental.stats.clone();
    cfg.prune.trace = trace.clone();
    cfg.prune.jobs = req.jobs;

    if summaries.mode == InterprocMode::Summary {
        // Build (or re-resolve from the shared table) the callee summaries
        // for this program, then run the entry inference in summary mode.
        let build = build_summaries(
            &program,
            &func_name,
            &summaries.table,
            &SummaryBuildConfig {
                testgen: tg.clone(),
                prune: cfg.prune.clone(),
                jobs: req.jobs,
                stats: summaries.stats.clone(),
            },
        );
        if !build.resolved.is_empty() {
            tg.concolic.summaries = Some(build.resolved.clone());
            cfg.prune.concolic.summaries = Some(build.resolved);
        }
    }

    let suite = generate_tests(&program, &func_name, &tg);
    let func = program.func(&func_name).expect("checked above");
    let coverage = suite.coverage_percent(func);

    let inferred =
        preinfer_core::infer_all_preconditions(&program, &func_name, &suite, &cfg, req.jobs);

    let acls = inferred
        .iter()
        .map(|(acl, inf)| AclOutcome {
            acl: format!("{acl:?}"),
            kind: acl.kind.to_string(),
            psi: inf.precondition.psi.to_string(),
            alpha: inf.precondition.alpha.to_string(),
            quantified: inf.precondition.quantified,
            examined: inf.prune_stats.examined,
            removed: inf.prune_stats.removed,
            dynamic_runs: inf.prune_stats.dynamic_runs,
        })
        .collect();

    Ok(InferOutcome {
        func: func_name,
        tests: suite.len(),
        coverage_percent: coverage,
        acls,
        timed_out: deadline.expired(),
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Renders a successful `infer` response frame. `request_id` is the
/// daemon's monotonic admission id (echoed so clients can later fetch the
/// request's retained trace with the `trace` verb).
pub fn render_infer_response(
    id: Option<&str>,
    request_id: u64,
    out: &InferOutcome,
    queue_ms: f64,
    cache: &SolverCache,
) -> String {
    let acls: Vec<String> = out
        .acls
        .iter()
        .map(|a| {
            ObjBuilder::new()
                .str("acl", &a.acl)
                .str("kind", &a.kind)
                .str("psi", &a.psi)
                .str("alpha", &a.alpha)
                .bool("quantified", a.quantified)
                .raw(
                    "prune",
                    ObjBuilder::new()
                        .u64("examined", a.examined as u64)
                        .u64("removed", a.removed as u64)
                        .u64("dynamic_runs", a.dynamic_runs as u64)
                        .build(),
                )
                .build()
        })
        .collect();
    let stats = cache.stats();
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "infer")
        .u64("request_id", request_id)
        .str("func", &out.func)
        .u64("tests", out.tests as u64)
        .f64("coverage_percent", out.coverage_percent)
        .bool("timed_out", out.timed_out)
        .f64("elapsed_ms", out.elapsed_ms)
        .f64("queue_ms", queue_ms)
        .arr("acls", acls)
        .raw(
            "cache",
            ObjBuilder::new()
                .u64("hits", stats.hits)
                .u64("misses", stats.misses)
                .u64("entries", stats.entries)
                .f64("hit_rate", stats.hit_rate())
                .build(),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(program: &str) -> InferRequest {
        InferRequest {
            program: program.to_string(),
            func: None,
            deadline_ms: None,
            tests: None,
            jobs: 1,
            trace: None,
        }
    }

    #[test]
    fn infers_the_guarded_div_shape() {
        let cache = Arc::new(SolverCache::new());
        let tiers = Arc::new(TierCounters::default());
        let inc = IncrementalPolicy::default();
        let out = run_infer(
            &req("fn f(x int) -> int { return 10 / x; }"),
            &cache,
            &Deadline::none(),
            &None,
            &tiers,
            &inc,
            &SummaryPolicy::default(),
        )
        .unwrap();
        assert_eq!(out.func, "f");
        assert!(!out.timed_out);
        assert_eq!(out.acls.len(), 1);
        assert_eq!(out.acls[0].psi, "x != 0");
        assert!(cache.stats().misses > 0, "inference went through the shared cache");
        assert!(tiers.snapshot().total() > 0, "tier attribution flowed through the service");
        let snap = inc.stats.snapshot();
        assert!(snap.sessions > 0, "incremental sessions flowed through the service");
        assert!(snap.queries > 0, "session queries were counted");
    }

    #[test]
    fn compile_errors_are_typed() {
        let cache = Arc::new(SolverCache::new());
        let tiers = Arc::new(TierCounters::default());
        let err = run_infer(
            &req("fn f( {"),
            &cache,
            &Deadline::none(),
            &None,
            &tiers,
            &IncrementalPolicy::default(),
            &SummaryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::CompileError);
        let err = run_infer(
            &InferRequest {
                func: Some("missing".into()),
                ..req("fn f(x int) -> int { return x; }")
            },
            &cache,
            &Deadline::none(),
            &None,
            &tiers,
            &IncrementalPolicy::default(),
            &SummaryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn expired_deadline_yields_partial_timed_out_result() {
        let cache = Arc::new(SolverCache::new());
        let deadline = Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let out = run_infer(
            &req("fn f(x int, y int) -> int { if (x > 0) { return 10 / y; } return 0; }"),
            &cache,
            &deadline,
            &None,
            &Arc::new(TierCounters::default()),
            &IncrementalPolicy::default(),
            &SummaryPolicy::default(),
        )
        .unwrap();
        assert!(out.timed_out, "deadline was already expired at admission");
    }

    #[test]
    fn response_renders_as_valid_json() {
        let cache = Arc::new(SolverCache::new());
        let out = run_infer(
            &req("fn f(x int) -> int { return 10 / x; }"),
            &cache,
            &Deadline::none(),
            &None,
            &Arc::new(TierCounters::default()),
            &IncrementalPolicy::default(),
            &SummaryPolicy::default(),
        )
        .unwrap();
        let rendered = render_infer_response(Some("id-1"), 42, &out, 0.5, &cache);
        let v = crate::json::parse(&rendered).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.str_field("verb"), Some("infer"));
        assert_eq!(v.u64_field("request_id"), Some(42));
        let acls = v.get("acls").unwrap().as_array().unwrap();
        assert_eq!(acls[0].str_field("psi"), Some("x != 0"));
    }
}
