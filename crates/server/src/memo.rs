//! The ψ-level response memo: a shard-local cache of *completed* inference
//! outcomes, keyed by the canonical method.
//!
//! The solver cache (PR 1) memoizes individual canonical solver verdicts;
//! a warm repeat of the same method still re-runs compilation, test
//! generation, and pruning around those hits (~200 µs of CPU per request).
//! The memo closes that gap for the serving layer: once a method's
//! inference has *completed* (never a `timed_out` partial), the rendered
//! outcome is stored under the method's canonical α-renamed source
//! ([`crate::routing::canonical_method`]) and later requests for the same
//! canonical method are answered without touching the worker pool at all —
//! the event core serves hits inline on the run loop. Combined with the
//! router's key-affinity sharding (which hashes the same canonical text),
//! this is the "partitioned global ψ cache": every caller of a method
//! lands on the one shard that already holds its ψ.
//!
//! Purity contract: an entry is a pure function of `(canonical method,
//! tests override)` — the stored ψ came from a real completed run, and the
//! determinism tests prove outcomes are independent of `jobs` — so a memo
//! hit is byte-identical in every ψ/α field to a fresh inference. Entries
//! are never invalidated, only evicted FIFO at capacity. The memo is
//! opt-in (`preinferd --memo on`): with it off, every request exercises
//! the full pipeline (which the corpus differential tests rely on to
//! observe solver-cache hit rates).

use crate::service::InferOutcome;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The memo key: the canonical α-renamed method text plus the request
/// knobs that change the outcome. `jobs` is excluded (determinism-tested
/// to not affect results); `deadline_ms` is excluded because only
/// deadline-clean completed outcomes are ever stored.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Canonical method rendering (`routing::canonical_method`).
    pub canon: String,
    /// `tests` override carried by the request (`None` = default).
    pub tests: Option<usize>,
}

/// One stored completed outcome.
#[derive(Debug)]
pub struct MemoEntry {
    pub outcome: InferOutcome,
}

#[derive(Debug, Default)]
struct MemoCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time memo statistics (the `stats` verb's `response_memo`
/// block and the `preinfer_response_memo_*` metrics family).
#[derive(Debug, Clone, Copy)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub entries: u64,
}

impl MemoStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded FIFO-evicting memo table.
#[derive(Debug)]
pub struct ResponseMemo {
    inner: Mutex<MemoInner>,
    counters: MemoCounters,
    capacity: usize,
}

#[derive(Debug, Default)]
struct MemoInner {
    map: HashMap<MemoKey, Arc<MemoEntry>>,
    order: VecDeque<MemoKey>,
}

impl ResponseMemo {
    pub fn new(capacity: usize) -> ResponseMemo {
        ResponseMemo {
            inner: Mutex::new(MemoInner::default()),
            counters: MemoCounters::default(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a completed outcome, counting the hit or miss.
    pub fn get(&self, key: &MemoKey) -> Option<Arc<MemoEntry>> {
        let found = self.inner.lock().expect("memo lock").map.get(key).cloned();
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a completed outcome. Callers must never store `timed_out`
    /// partials — the memo's purity contract is "completed runs only".
    pub fn insert(&self, key: MemoKey, outcome: InferOutcome) {
        debug_assert!(!outcome.timed_out, "memo stores completed outcomes only");
        let mut inner = self.inner.lock().expect("memo lock");
        if inner.map.contains_key(&key) {
            return; // concurrent workers raced on the same cold method
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, Arc::new(MemoEntry { outcome }));
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> MemoStats {
        let entries = self.inner.lock().expect("memo lock").map.len() as u64;
        MemoStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(func: &str) -> InferOutcome {
        InferOutcome {
            func: func.to_string(),
            tests: 4,
            coverage_percent: 100.0,
            acls: Vec::new(),
            timed_out: false,
            elapsed_ms: 1.0,
        }
    }

    fn key(canon: &str) -> MemoKey {
        MemoKey { canon: canon.to_string(), tests: None }
    }

    #[test]
    fn hit_miss_and_insert_accounting() {
        let memo = ResponseMemo::new(8);
        assert!(memo.get(&key("a")).is_none());
        memo.insert(key("a"), outcome("f"));
        let entry = memo.get(&key("a")).expect("stored");
        assert_eq!(entry.outcome.func, "f");
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tests_override_is_part_of_the_key() {
        let memo = ResponseMemo::new(8);
        memo.insert(key("a"), outcome("f"));
        assert!(memo.get(&MemoKey { canon: "a".into(), tests: Some(9) }).is_none());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let memo = ResponseMemo::new(2);
        memo.insert(key("a"), outcome("f"));
        memo.insert(key("b"), outcome("g"));
        memo.insert(key("c"), outcome("h"));
        assert!(memo.get(&key("a")).is_none(), "oldest evicted");
        assert!(memo.get(&key("b")).is_some());
        assert!(memo.get(&key("c")).is_some());
        let s = memo.stats();
        assert_eq!((s.evictions, s.entries), (1, 2));
    }
}
