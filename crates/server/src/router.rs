//! `preinfer-router` — the key-affinity sharding front.
//!
//! One event loop (the same [`crate::netcore`] reactor as `--io epoll`)
//! fronts N `preinferd` shard daemons:
//!
//! * **Routing**: every `infer` request's target method is canonicalized
//!   ([`crate::routing::canonical_method`] — the α-renamed pretty-printed
//!   source whose hash `solver::affinity_hash` is stable across
//!   processes) and the request is forwarded to shard
//!   `hash % shards`. α-equivalent methods therefore always land on the
//!   same shard — the shard whose solver cache and response memo already
//!   hold their verdicts. Uncompilable programs route by raw text so the
//!   typed `compile_error` still comes from a real shard.
//! * **Forwarding** is opaque: the router rewrites only the request `id`
//!   (to a private correlation token `r<seq>`) and splices the original
//!   id back into the response text byte-for-byte, so a routed response
//!   is byte-identical to a direct-daemon response in every other field —
//!   the corpus differential test locks this in for every ψ.
//! * **Pooling/pipelining**: each shard gets a small pool of persistent
//!   upstream connections; requests pipeline onto them and responses are
//!   matched by token, so out-of-order completions are fine.
//! * **Fan-out verbs**: `stats`, `metrics`, and `trace` go to every live
//!   shard and the responses are merged (`stats` nests each shard's
//!   report; `metrics` re-labels each shard's Prometheus exposition with
//!   `shard="i"` and concatenates; `trace` concatenates the retained
//!   traces). `ping` answers locally — it is the router's liveness.
//! * **Dead shards**: a request routed to a shard with no live upstream
//!   connection gets a typed `upstream_unavailable` error immediately;
//!   in-flight requests on a dying connection get the same. A connector
//!   thread re-dials lost connections with bounded exponential backoff.

use crate::json::{self, ObjBuilder};
use crate::netcore::{ConnError, FramedConn, Interest, Poller, Waker, WRITE_BACKPRESSURE_BYTES};
use crate::protocol::{self, render_error, ErrorCode, Request, TraceContext, TraceSelect};
use crate::routing;
use crate::trace::{mint_trace_id, RetainReason, SamplingPolicy, StoredTrace, TraceRing};
use obs::{MetricsRegistry, TraceSink};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Sweep period (idle deadlines, shutdown flag) in ms.
const SWEEP_MS: i32 = 100;

/// Drain grace, mirroring the daemon cores.
const DRAIN_GRACE: Duration = Duration::from_millis(200);

/// Per-downstream-connection in-flight ceiling before reads pause.
const MAX_CONN_IN_FLIGHT: usize = 512;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Upstream shard daemon addresses (`HOST:PORT`), in shard order.
    /// The order is the hash space: the same list in the same order must
    /// be used across router restarts for affinity to persist.
    pub shards: Vec<String>,
    /// Pooled upstream connections per shard.
    pub conns_per_shard: usize,
    /// Idle deadline for downstream client connections (0 disables).
    pub idle_timeout_ms: u64,
    /// Reconnect backoff floor / ceiling, milliseconds.
    pub reconnect_min_ms: u64,
    pub reconnect_max_ms: u64,
    /// How long `Router::start` waits for every shard to have at least
    /// one live upstream connection before returning (0 = don't wait).
    pub wait_ready_ms: u64,
    /// Head-sample every N-th routed `infer` request into a distributed
    /// trace (0 disables). The router mints the trace context and injects
    /// it into the forwarded frame, so the shard records under the same
    /// `trace_id` and the two per-process traces stitch back together.
    pub trace_sample: u64,
    /// Also retain the router-side trace of any routed request slower
    /// than this many milliseconds end-to-end (0 disables). Tail capture
    /// records — and forwards a sampled context for — every request, so
    /// the shard half of a slow trace exists by the time it is wanted.
    pub slow_trace_ms: u64,
    /// Bounded retained-trace ring capacity.
    pub trace_buffer: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            conns_per_shard: 2,
            idle_timeout_ms: 60_000,
            reconnect_min_ms: 50,
            reconnect_max_ms: 1_000,
            wait_ready_ms: 2_000,
            trace_sample: 0,
            slow_trace_ms: 0,
            trace_buffer: 64,
        }
    }
}

/// Monotonic router counters (the merged `stats` response's `router`
/// block and the `preinfer_router_*` metrics family).
#[derive(Debug, Default)]
pub struct RouterCounters {
    pub connections: AtomicU64,
    pub conns_closed: AtomicU64,
    pub idle_closed: AtomicU64,
    pub requests: AtomicU64,
    pub forwarded: AtomicU64,
    pub fanouts: AtomicU64,
    pub unavailable: AtomicU64,
    pub bad_requests: AtomicU64,
    pub reconnects: AtomicU64,
    /// Upstream frames whose correlation token matched nothing (e.g. a
    /// shard's unsolicited `idle_timeout` notice before it closes a
    /// quiet pooled connection).
    pub unmatched: AtomicU64,
}

impl RouterCounters {
    pub fn open_connections(&self) -> u64 {
        self.connections
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }
}

struct RouterShared {
    shutdown: AtomicBool,
    wake: Mutex<Option<Arc<Waker>>>,
    /// (shard, slot) pairs the loop wants re-dialed.
    connect_requests: Mutex<Vec<(usize, usize)>>,
    /// Freshly connected upstream streams from the connector thread.
    connect_results: Mutex<Vec<(usize, usize, TcpStream)>>,
    counters: Arc<RouterCounters>,
    /// Live upstream connections across all shards.
    live_upstreams: AtomicU64,
    /// Shards with at least one live upstream connection.
    live_shards: AtomicU64,
    registry: Arc<MetricsRegistry>,
    started: Instant,
    /// Deterministic head/tail sampling over the router's own admission
    /// counter — the same policy the daemons run, applied one tier up.
    sampling: SamplingPolicy,
    /// Retained router-side traces, served by the `trace` verb alongside
    /// the shard fan-out parts.
    ring: Arc<TraceRing>,
    cfg: RouterConfig,
}

impl RouterShared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn wake_loop(&self) {
        if let Some(w) = &*self.wake.lock().expect("wake lock") {
            w.wake();
        }
    }
}

/// A cloneable graceful-shutdown trigger.
#[derive(Clone)]
pub struct RouterHandle {
    shared: Arc<RouterShared>,
}

impl RouterHandle {
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_loop();
    }
}

/// A running router.
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    event: JoinHandle<()>,
    connector: JoinHandle<()>,
}

impl Router {
    /// Binds, starts the event loop and the connector thread, and waits
    /// up to `wait_ready_ms` for every shard to come live.
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards configured"));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(RouterCounters::default());
        let registry = Arc::new(MetricsRegistry::new());
        let started = Instant::now();
        let shared = Arc::new(RouterShared {
            shutdown: AtomicBool::new(false),
            wake: Mutex::new(None),
            connect_requests: Mutex::new(
                (0..cfg.shards.len())
                    .flat_map(|s| (0..cfg.conns_per_shard.max(1)).map(move |p| (s, p)))
                    .collect(),
            ),
            connect_results: Mutex::new(Vec::new()),
            counters: Arc::clone(&counters),
            live_upstreams: AtomicU64::new(0),
            live_shards: AtomicU64::new(0),
            registry,
            started,
            sampling: SamplingPolicy {
                sample: cfg.trace_sample,
                slow_threshold: (cfg.slow_trace_ms > 0)
                    .then(|| Duration::from_millis(cfg.slow_trace_ms)),
            },
            ring: Arc::new(TraceRing::new(cfg.trace_buffer.max(1))),
            cfg,
        });
        register_router_metrics(&shared);
        let connector = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || connector_loop(&shared))
        };
        let event = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || event_loop(listener, &shared))
        };
        let deadline = Instant::now() + Duration::from_millis(shared.cfg.wait_ready_ms);
        while shared.live_shards.load(Ordering::SeqCst) < shared.cfg.shards.len() as u64
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(Router { shared, local_addr, event, connector })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn handle(&self) -> RouterHandle {
        RouterHandle { shared: Arc::clone(&self.shared) }
    }

    /// Blocks until the router has drained (call
    /// [`RouterHandle::shutdown`] first).
    pub fn join(self) {
        let _ = self.event.join();
        let _ = self.connector.join();
    }
}

fn register_router_metrics(shared: &Arc<RouterShared>) {
    let reg = &shared.registry;
    let started = shared.started;
    reg.gauge("preinfer_uptime_seconds", "Seconds since the router started.", &[], move || {
        started.elapsed().as_secs_f64()
    });
    let c = Arc::clone(&shared.counters);
    reg.gauge(
        "preinfer_server_connections",
        "Currently open downstream connections.",
        &[],
        move || c.open_connections() as f64,
    );
    const CONN_EVENT_HELP: &str = "Connection lifecycle events.";
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "accepted")],
        move || c.connections.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "closed")],
        move || c.conns_closed.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "idle_closed")],
        move || c.idle_closed.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter("preinfer_router_requests_total", "Downstream request frames.", &[], move || {
        c.requests.load(Ordering::Relaxed)
    });
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_router_forwarded_total",
        "Requests forwarded to a shard.",
        &[],
        move || c.forwarded.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_router_fanouts_total",
        "Fan-out verbs (stats/metrics/trace) dispatched to all shards.",
        &[],
        move || c.fanouts.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_router_unavailable_total",
        "Requests answered with upstream_unavailable.",
        &[],
        move || c.unavailable.load(Ordering::Relaxed),
    );
    let c = Arc::clone(&shared.counters);
    reg.counter(
        "preinfer_router_reconnects_total",
        "Upstream connections lost and re-dialed.",
        &[],
        move || c.reconnects.load(Ordering::Relaxed),
    );
    let s = Arc::clone(shared);
    reg.gauge(
        "preinfer_router_upstream_connections",
        "Live pooled upstream connections.",
        &[],
        move || s.live_upstreams.load(Ordering::Relaxed) as f64,
    );
    let n = shared.cfg.shards.len() as f64;
    reg.gauge("preinfer_router_shards", "Configured shard count.", &[], move || n);
    const RETAIN_HELP: &str = "Per-request traces retained, by reason.";
    let r = Arc::clone(&shared.ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "head")], move || {
        r.counters().0
    });
    let r = Arc::clone(&shared.ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "slow")], move || {
        r.counters().1
    });
    let r = Arc::clone(&shared.ring);
    reg.counter(
        "preinfer_traces_retained_total",
        RETAIN_HELP,
        &[("reason", "context")],
        move || r.counters().2,
    );
    let r = Arc::clone(&shared.ring);
    reg.counter("preinfer_traces_evicted_total", "Traces evicted from the ring.", &[], move || {
        r.counters().3
    });
    let r = Arc::clone(&shared.ring);
    reg.gauge("preinfer_trace_buffer_entries", "Traces currently retained.", &[], move || {
        r.len() as f64
    });
}

// ---- connector thread -------------------------------------------------------

/// Dials lost upstream connections off the event loop (blocking
/// `connect_timeout`), with per-shard exponential backoff between
/// attempts, and hands live streams back through `connect_results`.
fn connector_loop(shared: &Arc<RouterShared>) {
    struct Attempt {
        shard: usize,
        slot: usize,
        not_before: Instant,
        backoff: Duration,
    }
    let min = Duration::from_millis(shared.cfg.reconnect_min_ms.max(1));
    let max = Duration::from_millis(shared.cfg.reconnect_max_ms.max(shared.cfg.reconnect_min_ms));
    let mut queue: Vec<Attempt> = Vec::new();
    while !shared.shutting_down() {
        for (shard, slot) in shared.connect_requests.lock().expect("connect requests").drain(..) {
            queue.push(Attempt { shard, slot, not_before: Instant::now(), backoff: min });
        }
        let now = Instant::now();
        let mut still_waiting = Vec::new();
        for mut a in queue.drain(..) {
            if now < a.not_before {
                still_waiting.push(a);
                continue;
            }
            let addr = &shared.cfg.shards[a.shard];
            let dialed = addr
                .parse::<SocketAddr>()
                .ok()
                .and_then(|sa| TcpStream::connect_timeout(&sa, Duration::from_millis(500)).ok())
                .or_else(|| TcpStream::connect(addr.as_str()).ok());
            match dialed {
                Some(stream) => {
                    shared
                        .connect_results
                        .lock()
                        .expect("connect results")
                        .push((a.shard, a.slot, stream));
                    shared.wake_loop();
                }
                None => {
                    a.not_before = now + a.backoff;
                    a.backoff = (a.backoff * 2).min(max);
                    still_waiting.push(a);
                }
            }
        }
        queue = still_waiting;
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---- event loop -------------------------------------------------------------

/// A downstream (client) connection.
struct DownConn {
    io: FramedConn,
    registered: Interest,
    /// Client requests forwarded upstream whose responses have not yet
    /// been queued back.
    in_flight: usize,
    closing: bool,
}

impl DownConn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing
                && self.in_flight < MAX_CONN_IN_FLIGHT
                && self.io.write_backlog() < WRITE_BACKPRESSURE_BYTES,
            writable: self.io.wants_write(),
        }
    }

    fn drained(&self) -> bool {
        self.closing && self.in_flight == 0 && !self.io.wants_write()
    }
}

/// An upstream (shard daemon) connection.
struct UpConn {
    io: FramedConn,
    shard: usize,
    slot: usize,
    /// Correlation tokens pipelined on this connection and still
    /// unanswered (failed over to `upstream_unavailable` if it dies).
    pending: Vec<u64>,
}

/// One in-flight forwarded request.
struct Pending {
    down_token: u64,
    orig_id: Option<String>,
    /// `Some` when this sub-request belongs to a fan-out.
    fan: Option<Rc<RefCell<FanState>>>,
    /// `Some` when this forwarded `infer` is part of a recorded
    /// distributed trace.
    trace: Option<PendingTrace>,
}

/// Router-side tracing state for one forwarded `infer` request. Span
/// timing lives here as plain `Instant`s and explicit span ids (the
/// [`TraceSink::begin_span`] flat API) because the epoll loop interleaves
/// many requests on one thread: a request's spans open in one callback
/// and close in a later one, which RAII guards and implicit thread-local
/// nesting cannot describe.
struct PendingTrace {
    sink: Arc<TraceSink>,
    trace_id: String,
    /// Whether the context was minted by the *client* (honored verbatim;
    /// retention reason `context`) rather than by the router's own policy.
    from_client: bool,
    /// Router admission id (the sampling counter, not the wire id).
    request_id: u64,
    func: String,
    /// The root `route` span; its exclusive time is pure router overhead.
    root: u64,
    /// `upstream_queue` span, open until the carrying upstream connection
    /// first reports a complete flush (the frame has left the router).
    queue_span: Option<u64>,
    /// `upstream_rtt` span — also the `parent_span_id` the forwarded
    /// context carries, so the shard's spans nest under it when merged.
    rtt_span: u64,
    t_dispatch: Instant,
    /// When the `upstream_queue` span opened — strictly after
    /// `route_decide` closed, so sibling spans never overlap and the
    /// children's sum stays within the `route` root.
    t_queued: Instant,
    /// When the forwarded frame hit the upstream socket.
    t_sent: Instant,
    queue_us: u64,
}

impl PendingTrace {
    /// Closes the `upstream_queue` span once the forwarded frame has been
    /// written to the upstream socket; the rtt clock starts here. Callers
    /// pass a timestamp taken *before* the completing write syscall so the
    /// rtt window is guaranteed to contain the shard's whole service time.
    fn close_queue(&mut self, now: Instant) {
        if let Some(qid) = self.queue_span.take() {
            let wait = now.duration_since(self.t_queued);
            self.queue_us = wait.as_micros().min(u64::MAX as u128) as u64;
            self.sink.end_span(qid, "upstream_queue", wait);
            self.t_sent = now;
        }
    }
}

/// One fan-out (stats/metrics/trace) awaiting all shard parts.
struct FanState {
    verb: FanVerb,
    down_token: u64,
    orig_id: Option<String>,
    expect: usize,
    parts: Vec<(usize, String)>,
    unavailable: usize,
    /// The router's own matching retained traces (rendered), selected at
    /// dispatch time — a stitched `trace` response carries the router
    /// part next to the shard parts.
    local_traces: Vec<String>,
    /// The router ring's occupancy at dispatch time.
    local_buffered: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FanVerb {
    Stats,
    Metrics,
    Trace,
}

struct Shards {
    /// Per shard: per pool slot, the live upstream conn token.
    slots: Vec<Vec<Option<u64>>>,
}

struct Loop<'a> {
    poller: &'a Poller,
    shared: &'a Arc<RouterShared>,
    downs: HashMap<u64, DownConn>,
    ups: HashMap<u64, UpConn>,
    shards: Shards,
    pending: HashMap<u64, Pending>,
    next_seq: u64,
    next_token: u64,
    /// 1-based admission counter for routed `infer` requests — the
    /// sampling policy's deterministic input, independent of `next_seq`
    /// (which fan-out sub-requests also consume).
    next_req_id: u64,
}

fn event_loop(listener: TcpListener, shared: &Arc<RouterShared>) {
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("preinfer-router: epoll unavailable: {e}");
            return;
        }
    };
    let waker = match Waker::new() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("preinfer-router: eventfd unavailable: {e}");
            return;
        }
    };
    if poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_err()
        || poller.add(waker.fd(), TOKEN_WAKER, Interest::READ).is_err()
    {
        eprintln!("preinfer-router: failed to register event fds");
        return;
    }
    *shared.wake.lock().expect("wake lock") = Some(Arc::clone(&waker));

    let nshards = shared.cfg.shards.len();
    let mut lp = Loop {
        poller: &poller,
        shared,
        downs: HashMap::new(),
        ups: HashMap::new(),
        shards: Shards { slots: vec![vec![None; shared.cfg.conns_per_shard.max(1)]; nshards] },
        pending: HashMap::new(),
        next_seq: 0,
        next_token: TOKEN_FIRST_CONN,
        next_req_id: 0,
    };
    let mut events = Vec::new();
    let mut frames = Vec::new();
    let mut draining = false;

    loop {
        if shared.shutting_down() && !draining {
            draining = true;
            lp.accept_burst(&listener);
            poller.delete(listener.as_raw_fd());
        }
        if draining {
            let quiet: Vec<u64> = lp
                .downs
                .iter()
                .filter(|(_, c)| {
                    c.in_flight == 0
                        && !c.io.wants_write()
                        && c.io.last_activity.elapsed() >= DRAIN_GRACE
                })
                .map(|(t, _)| *t)
                .collect();
            for t in quiet {
                lp.close_down(t);
            }
            if lp.downs.is_empty() {
                break;
            }
        }

        if poller.wait(&mut events, SWEEP_MS).is_err() {
            break;
        }
        waker.drain();
        lp.adopt_new_upstreams();

        for ev in std::mem::take(&mut events) {
            match ev.token {
                TOKEN_LISTENER => {
                    if !draining {
                        lp.accept_burst(&listener);
                    }
                }
                TOKEN_WAKER => {}
                token if lp.ups.contains_key(&token) => {
                    if ev.error {
                        lp.fail_upstream(token);
                        continue;
                    }
                    if ev.readable {
                        let fault =
                            lp.ups.get_mut(&token).unwrap().io.read_frames(&mut frames).err();
                        for frame in frames.drain(..) {
                            lp.on_upstream_frame(token, frame);
                        }
                        if fault.is_some() {
                            lp.fail_upstream(token);
                        }
                    }
                }
                token => {
                    let Some(conn) = lp.downs.get_mut(&token) else { continue };
                    if ev.error {
                        conn.closing = true;
                        conn.in_flight = 0;
                        lp.close_down(token);
                        continue;
                    }
                    if ev.readable && !conn.closing {
                        let fault = conn.io.read_frames(&mut frames).err();
                        for frame in frames.drain(..) {
                            lp.dispatch_down(token, frame);
                        }
                        let conn = lp.downs.get_mut(&token).expect("still present");
                        match fault {
                            None => {}
                            Some(ConnError::Closed) => {
                                if conn.io.has_partial_frame() {
                                    shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                    conn.io.queue(&render_error(
                                        None,
                                        ErrorCode::BadRequest,
                                        "malformed frame",
                                    ));
                                }
                                conn.closing = true;
                            }
                            Some(ConnError::TooLarge(n)) => {
                                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                conn.io.queue(&render_error(
                                    None,
                                    ErrorCode::FrameTooLarge,
                                    &format!(
                                        "frame length {n} outside 1..={}",
                                        protocol::MAX_FRAME_LEN
                                    ),
                                ));
                                conn.closing = true;
                            }
                            Some(ConnError::NotUtf8) => {
                                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                conn.io.queue(&render_error(
                                    None,
                                    ErrorCode::BadRequest,
                                    "malformed frame",
                                ));
                                conn.closing = true;
                            }
                        }
                    }
                }
            }
        }

        lp.flush_and_sweep(draining);
    }

    *shared.wake.lock().expect("wake lock") = None;
}

impl<'a> Loop<'a> {
    fn accept_burst(&mut self, listener: &TcpListener) {
        while let Ok((stream, _)) = listener.accept() {
            self.shared.counters.connections.fetch_add(1, Ordering::Relaxed);
            let Ok(io) = FramedConn::new(stream) else {
                self.shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(io.stream().as_raw_fd(), token, Interest::READ).is_err() {
                self.shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.downs.insert(
                token,
                DownConn { io, registered: Interest::READ, in_flight: 0, closing: false },
            );
        }
    }

    /// Registers streams the connector thread delivered.
    fn adopt_new_upstreams(&mut self) {
        let arrivals: Vec<(usize, usize, TcpStream)> =
            self.shared.connect_results.lock().expect("connect results").drain(..).collect();
        for (shard, slot, stream) in arrivals {
            let Ok(io) = FramedConn::new(stream) else {
                self.request_reconnect(shard, slot);
                continue;
            };
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(io.stream().as_raw_fd(), token, Interest::READ).is_err() {
                self.request_reconnect(shard, slot);
                continue;
            }
            if let Some(prev) = self.shards.slots[shard][slot].replace(token) {
                // A stale connection still occupied the slot; retire it.
                self.retire_upstream(prev);
            }
            self.ups.insert(token, UpConn { io, shard, slot, pending: Vec::new() });
            self.shared.live_upstreams.fetch_add(1, Ordering::SeqCst);
            self.recount_live_shards();
        }
    }

    fn recount_live_shards(&self) {
        let live =
            self.shards.slots.iter().filter(|slots| slots.iter().any(|s| s.is_some())).count();
        self.shared.live_shards.store(live as u64, Ordering::SeqCst);
    }

    fn request_reconnect(&self, shard: usize, slot: usize) {
        self.shared.connect_requests.lock().expect("connect requests").push((shard, slot));
    }

    /// The least-loaded live upstream connection for `shard`.
    fn pick_upstream(&self, shard: usize) -> Option<u64> {
        self.shards.slots[shard]
            .iter()
            .flatten()
            .copied()
            .min_by_key(|t| self.ups.get(t).map(|u| u.pending.len()).unwrap_or(usize::MAX))
    }

    /// Tears an upstream connection down without failing its in-flight
    /// requests (used when a slot is superseded).
    fn retire_upstream(&mut self, token: u64) {
        if let Some(up) = self.ups.remove(&token) {
            self.poller.delete(up.io.stream().as_raw_fd());
            self.shared.live_upstreams.fetch_sub(1, Ordering::SeqCst);
            for seq in up.pending {
                self.answer_unavailable(seq, up.shard);
            }
            self.recount_live_shards();
        }
    }

    /// Handles an upstream connection dying: every pipelined request on
    /// it fails over to a typed `upstream_unavailable`, the slot empties,
    /// and the connector re-dials with backoff.
    fn fail_upstream(&mut self, token: u64) {
        if let Some(up) = self.ups.remove(&token) {
            self.poller.delete(up.io.stream().as_raw_fd());
            self.shared.live_upstreams.fetch_sub(1, Ordering::SeqCst);
            self.shared.counters.reconnects.fetch_add(1, Ordering::Relaxed);
            self.shards.slots[up.shard][up.slot] = None;
            self.recount_live_shards();
            self.request_reconnect(up.shard, up.slot);
            for seq in up.pending {
                self.answer_unavailable(seq, up.shard);
            }
        }
    }

    /// Fails one pending request over to `upstream_unavailable`.
    fn answer_unavailable(&mut self, seq: u64, shard: usize) {
        let Some(p) = self.pending.remove(&seq) else { return };
        self.shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
        match p.fan {
            None => {
                let msg = format!(
                    "shard {shard} ({}) is unavailable",
                    self.shared.cfg.shards.get(shard).map(String::as_str).unwrap_or("?")
                );
                let resp = render_error(p.orig_id.as_deref(), ErrorCode::UpstreamUnavailable, &msg);
                self.deliver_down(p.down_token, resp);
            }
            Some(fan) => {
                fan.borrow_mut().unavailable += 1;
                self.try_finish_fan(&fan);
            }
        }
    }

    /// Queues a response onto a downstream connection (dropped if the
    /// client has vanished) and releases its in-flight slot.
    fn deliver_down(&mut self, token: u64, response: String) {
        if let Some(conn) = self.downs.get_mut(&token) {
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.io.queue(&response);
        }
    }

    fn close_down(&mut self, token: u64) {
        if let Some(conn) = self.downs.remove(&token) {
            self.poller.delete(conn.io.stream().as_raw_fd());
            self.shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parses and routes one downstream request frame.
    fn dispatch_down(&mut self, token: u64, payload: String) {
        self.shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        match protocol::parse_request(&payload) {
            Ok(Request::Ping { id }) => {
                // The router's own liveness, answered locally.
                let resp = ObjBuilder::new()
                    .bool("ok", true)
                    .opt_str("id", id.as_deref())
                    .str("verb", "ping")
                    .build();
                self.deliver_inline(token, resp);
            }
            Ok(Request::Infer { id, mut infer }) => {
                self.next_req_id += 1;
                let request_id = self.next_req_id;
                let t_dispatch = Instant::now();
                // Decide tracing before routing so the `route_decide` span
                // can cover the shard computation.
                let traced = decide_trace(self.shared, request_id, &mut infer);
                let root = traced.as_ref().map(|(sink, _, _)| sink.begin_span("route", None));
                let decide = traced
                    .as_ref()
                    .map(|(sink, _, _)| (sink.begin_span("route_decide", root), Instant::now()));
                let shard = routing::shard_of(
                    &infer.program,
                    infer.func.as_deref(),
                    self.shared.cfg.shards.len(),
                );
                let picked = self.pick_upstream(shard);
                if let (Some((sink, _, _)), Some((did, t0))) = (&traced, decide) {
                    sink.end_span(did, "route_decide", t0.elapsed());
                }
                let Some(up_token) = picked else {
                    self.shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
                    let msg =
                        format!("shard {shard} ({}) is unavailable", self.shared.cfg.shards[shard]);
                    let resp = render_error(id.as_deref(), ErrorCode::UpstreamUnavailable, &msg);
                    self.deliver_inline(token, resp);
                    return;
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                // Open the forwarding spans and inject the context: the
                // shard's spans will hang under `upstream_rtt` when the
                // per-process traces are merged.
                let trace = traced.map(|(sink, trace_id, from_client)| {
                    let root = root.expect("root opened with the sink");
                    let t_queued = Instant::now();
                    let queue_span = Some(sink.begin_span("upstream_queue", Some(root)));
                    let rtt_span = sink.begin_span("upstream_rtt", Some(root));
                    infer.trace = Some(TraceContext {
                        trace_id: trace_id.clone(),
                        parent_span_id: Some(rtt_span),
                        sampled: true,
                    });
                    PendingTrace {
                        sink,
                        trace_id,
                        from_client,
                        request_id,
                        func: infer.func.clone().unwrap_or_default(),
                        root,
                        queue_span,
                        rtt_span,
                        t_dispatch,
                        t_queued,
                        t_sent: t_queued,
                        queue_us: 0,
                    }
                });
                let rewritten = protocol::render_infer(Some(&format!("r{seq}")), &infer);
                let up = self.ups.get_mut(&up_token).expect("picked upstream exists");
                up.io.queue(&rewritten);
                up.pending.push(seq);
                self.pending
                    .insert(seq, Pending { down_token: token, orig_id: id, fan: None, trace });
                if let Some(conn) = self.downs.get_mut(&token) {
                    conn.in_flight += 1;
                }
                self.shared.counters.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Request::Stats { id }) => self.fan_out(token, id, FanVerb::Stats, None),
            Ok(Request::Metrics { id }) => self.fan_out(token, id, FanVerb::Metrics, None),
            Ok(Request::Trace { id, select }) => {
                self.fan_out(token, id, FanVerb::Trace, Some(select))
            }
            Err(reason) => {
                self.shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let resp = render_error(None, ErrorCode::BadRequest, &reason);
                self.deliver_inline(token, resp);
            }
        }
    }

    /// Queues a locally produced response without touching in-flight
    /// accounting (the request never went upstream).
    fn deliver_inline(&mut self, token: u64, response: String) {
        if let Some(conn) = self.downs.get_mut(&token) {
            conn.io.queue(&response);
        }
    }

    /// Dispatches a fan-out verb to every live shard and collects.
    fn fan_out(
        &mut self,
        token: u64,
        id: Option<String>,
        verb: FanVerb,
        select: Option<TraceSelect>,
    ) {
        self.shared.counters.fanouts.fetch_add(1, Ordering::Relaxed);
        let mut select = select.unwrap_or(TraceSelect::Last(1));
        // The router's own retained traces answer the same selection the
        // shards get, so a stitched trace response carries every tier.
        let (local_traces, local_buffered) = match verb {
            FanVerb::Trace => {
                let matched = match &select {
                    TraceSelect::Last(k) => {
                        self.shared.ring.last(usize::try_from(*k).unwrap_or(usize::MAX))
                    }
                    TraceSelect::ById(rid) => {
                        self.shared.ring.by_request_id(*rid).into_iter().collect()
                    }
                    TraceSelect::ByTraceId(tid) => {
                        self.shared.ring.by_trace_id(tid).into_iter().collect()
                    }
                };
                // `request_id` is meaningful only within one process's
                // admission counter — every shard has its own request 17.
                // When the id names a router-retained trace, resolve the
                // shard legs by its distributed trace_id instead, so only
                // the shard that *owns* the request answers.
                if matches!(select, TraceSelect::ById(_)) {
                    if let Some(tid) = matched.first().and_then(|t| t.trace_id.clone()) {
                        select = TraceSelect::ByTraceId(tid);
                    }
                }
                (matched.iter().map(render_router_trace).collect(), self.shared.ring.len() as u64)
            }
            _ => (Vec::new(), 0),
        };
        let nshards = self.shared.cfg.shards.len();
        let targets: Vec<(usize, Option<u64>)> =
            (0..nshards).map(|s| (s, self.pick_upstream(s))).collect();
        let reachable = targets.iter().filter(|(_, t)| t.is_some()).count();
        if reachable == 0 {
            self.shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
            let resp = render_error(
                id.as_deref(),
                ErrorCode::UpstreamUnavailable,
                "no shard is reachable",
            );
            self.deliver_inline(token, resp);
            return;
        }
        let fan = Rc::new(RefCell::new(FanState {
            verb,
            down_token: token,
            orig_id: id,
            expect: nshards,
            parts: Vec::new(),
            unavailable: nshards - reachable,
            local_traces,
            local_buffered,
        }));
        if let Some(conn) = self.downs.get_mut(&token) {
            conn.in_flight += 1;
        }
        for (shard, target) in targets {
            let Some(up_token) = target else { continue };
            let seq = self.next_seq;
            self.next_seq += 1;
            let rid = format!("r{seq}");
            let request = match verb {
                FanVerb::Stats => protocol::render_stats(Some(&rid)),
                FanVerb::Metrics => protocol::render_metrics(Some(&rid)),
                FanVerb::Trace => protocol::render_trace(Some(&rid), &select),
            };
            let up = self.ups.get_mut(&up_token).expect("picked upstream exists");
            up.io.queue(&request);
            up.pending.push(seq);
            let _ = shard; // shard is recoverable from the upstream conn
            self.pending.insert(
                seq,
                Pending {
                    down_token: token,
                    orig_id: None,
                    fan: Some(Rc::clone(&fan)),
                    trace: None,
                },
            );
        }
        // Every target may already have been unavailable-only; nothing
        // else completes the fan in that case.
        self.try_finish_fan(&fan);
    }

    /// One response frame from a shard: match its correlation token,
    /// splice the original id back, and deliver or collect.
    fn on_upstream_frame(&mut self, up_token: u64, raw: String) {
        let Some((start, end, seq)) = find_correlation_id(&raw) else {
            // E.g. the shard's typed idle_timeout notice for this pooled
            // connection; the connection will close and re-dial.
            self.shared.counters.unmatched.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(p) = self.pending.remove(&seq) else {
            self.shared.counters.unmatched.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if let Some(up) = self.ups.get_mut(&up_token) {
            up.pending.retain(|&s| s != seq);
        }
        match p.fan {
            None => {
                // Splice: replace `"id":"r<seq>"` with the original id,
                // leaving every other response byte untouched.
                let replacement = match &p.orig_id {
                    Some(v) => format!("\"id\":{}", json::escape(v)),
                    None => "\"id\":null".to_string(),
                };
                if let Some(mut tr) = p.trace {
                    let now = Instant::now();
                    // Backpressure can keep the queue span open past the
                    // response (flush never reported complete); close it
                    // here so the rtt span still gets a sane start.
                    tr.close_queue(now);
                    tr.sink.end_span(tr.rtt_span, "upstream_rtt", now.duration_since(tr.t_sent));
                    let t_splice = Instant::now();
                    let sid = tr.sink.begin_span("splice", Some(tr.root));
                    let spliced = format!("{}{}{}", &raw[..start], replacement, &raw[end..]);
                    tr.sink.end_span(sid, "splice", t_splice.elapsed());
                    let service = tr.t_dispatch.elapsed();
                    tr.sink.end_span(tr.root, "route", service);
                    self.retain_trace(tr, service);
                    self.deliver_down(p.down_token, spliced);
                } else {
                    let spliced = format!("{}{}{}", &raw[..start], replacement, &raw[end..]);
                    self.deliver_down(p.down_token, spliced);
                }
            }
            Some(fan) => {
                let shard = self.ups.get(&up_token).map(|u| u.shard).unwrap_or(0);
                fan.borrow_mut().parts.push((shard, raw));
                self.try_finish_fan(&fan);
            }
        }
    }

    /// Retention for one completed router-side trace: a client-minted
    /// context is always retained (the client already decided); router-
    /// minted traces go through the same head/slow policy as the daemons.
    fn retain_trace(&self, tr: PendingTrace, service: std::time::Duration) {
        let reason = if tr.from_client {
            Some(RetainReason::Context)
        } else {
            self.shared.sampling.retain(tr.request_id, service)
        };
        let Some(reason) = reason else { return };
        self.shared.ring.push(StoredTrace {
            request_id: tr.request_id,
            trace_id: Some(tr.trace_id),
            func: tr.func,
            reason,
            queue_us: tr.queue_us,
            service_us: service.as_micros().min(u64::MAX as u128) as u64,
            lines: tr.sink.lines(),
        });
    }

    /// Completes a fan-out once every shard has answered or failed.
    fn try_finish_fan(&mut self, fan: &Rc<RefCell<FanState>>) {
        let done = {
            let f = fan.borrow();
            f.parts.len() + f.unavailable >= f.expect
        };
        if !done {
            return;
        }
        let mut f = fan.borrow_mut();
        f.parts.sort_by_key(|(shard, _)| *shard);
        let response = match f.verb {
            FanVerb::Stats => merge_stats(&f, self.shared),
            FanVerb::Metrics => merge_metrics(&f, self.shared),
            FanVerb::Trace => merge_traces(&f),
        };
        let down = f.down_token;
        // Guard against double completion if both a part arrival and an
        // unavailable notice raced to finish it.
        f.expect = usize::MAX;
        drop(f);
        self.deliver_down(down, response);
    }

    /// Flushes every connection, re-arms interest, applies idle
    /// deadlines, and reaps the dead.
    fn flush_and_sweep(&mut self, draining: bool) {
        let now = Instant::now();
        let idle_limit = (self.shared.cfg.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(self.shared.cfg.idle_timeout_ms));
        let mut dead_downs = Vec::new();
        for (&token, conn) in self.downs.iter_mut() {
            if let Some(limit) = idle_limit {
                if !draining
                    && !conn.closing
                    && conn.in_flight == 0
                    && !conn.io.wants_write()
                    && now.duration_since(conn.io.last_activity) >= limit
                {
                    self.shared.counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                    conn.io.queue(&render_error(
                        None,
                        ErrorCode::IdleTimeout,
                        &format!("connection idle past {} ms", limit.as_millis()),
                    ));
                    conn.closing = true;
                }
            }
            if conn.io.wants_write() && conn.io.flush().is_err() {
                conn.in_flight = 0;
                conn.closing = true;
                dead_downs.push(token);
                continue;
            }
            if conn.drained() {
                dead_downs.push(token);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.registered
                && self.poller.modify(conn.io.stream().as_raw_fd(), token, want).is_ok()
            {
                conn.registered = want;
            }
        }
        for token in dead_downs {
            self.close_down(token);
        }
        let mut dead_ups = Vec::new();
        for (&token, up) in self.ups.iter_mut() {
            if up.io.wants_write() {
                // Timestamp BEFORE the write syscall: on loopback the
                // shard can be woken with the bytes while this thread is
                // still inside (or descheduled after) `write`, so a
                // post-write stamp would let the shard's entire service
                // time leak into `upstream_queue` and leave an
                // `upstream_rtt` span too short to contain the shard's
                // grafted `run` span in the merged trace.
                let t_flush = Instant::now();
                match up.io.flush() {
                    Err(_) => {
                        dead_ups.push(token);
                        continue;
                    }
                    Ok(flushed) => {
                        if flushed {
                            // Every frame queued on this connection has
                            // left the router: close their queue spans.
                            for seq in &up.pending {
                                if let Some(tr) =
                                    self.pending.get_mut(seq).and_then(|p| p.trace.as_mut())
                                {
                                    tr.close_queue(t_flush);
                                }
                            }
                        }
                        let want = Interest { readable: true, writable: !flushed };
                        let _ = self.poller.modify(up.io.stream().as_raw_fd(), token, want);
                    }
                }
            }
        }
        for token in dead_ups {
            self.fail_upstream(token);
        }
    }
}

/// The tracing decision for one routed `infer` request. Exactly one tier
/// decides sampling:
///
/// * A client-supplied context is honored verbatim — that tier decided;
///   the router joins the trace as a middle hop (when `sampled`) or stays
///   dark (when not).
/// * Otherwise, with a router policy configured, the router decides and
///   mints the context. Non-sampled requests are forwarded with an
///   explicit `sampled: false` so shards do not independently head-sample
///   a request the router declined — one trace per decision, not two.
/// * With no policy and no context, the frame is forwarded untouched and
///   the shard's own head/tail policy applies as before.
///
/// Returns `(sink, trace_id, from_client)` when the router records.
fn decide_trace(
    shared: &RouterShared,
    request_id: u64,
    infer: &mut protocol::InferRequest,
) -> Option<(Arc<TraceSink>, String, bool)> {
    let (ctx, from_client) = match infer.trace.clone() {
        Some(c) => (c, true),
        None => {
            if !shared.sampling.enabled() {
                return None;
            }
            let sampled = shared.sampling.record(request_id);
            (
                TraceContext { trace_id: mint_trace_id(request_id), parent_span_id: None, sampled },
                false,
            )
        }
    };
    if !ctx.sampled {
        infer.trace = Some(ctx);
        return None;
    }
    let sink = Arc::new(TraceSink::recording_in_trace(
        "preinfer-router",
        &ctx.trace_id,
        ctx.parent_span_id,
    ));
    Some((sink, ctx.trace_id, from_client))
}

/// Renders one retained router-side trace, in the same shape as the
/// daemon's `trace` verb elements plus a `process` marker (shard parts
/// carry a `shard` index instead).
fn render_router_trace(t: &StoredTrace) -> String {
    ObjBuilder::new()
        .str("process", "preinfer-router")
        .u64("request_id", t.request_id)
        .opt_str("trace_id", t.trace_id.as_deref())
        .str("func", &t.func)
        .str("reason", t.reason.label())
        .u64("queue_us", t.queue_us)
        .u64("service_us", t.service_us)
        .arr("events", t.lines.clone())
        .build()
}

/// Locates the router's correlation token `"id":"r<seq>"` in a raw shard
/// response, returning the byte range of the whole `"id":"r<seq>"` field
/// and the parsed sequence number. Raw double quotes cannot occur inside
/// JSON string values (they render escaped), so this byte pattern can
/// only be the actual id field.
fn find_correlation_id(raw: &str) -> Option<(usize, usize, u64)> {
    const PAT: &str = "\"id\":\"r";
    let start = raw.find(PAT)?;
    let digits = &raw.as_bytes()[start + PAT.len()..];
    let mut n = 0usize;
    let mut seq: u64 = 0;
    while n < digits.len() && digits[n].is_ascii_digit() {
        seq = seq.wrapping_mul(10).wrapping_add(u64::from(digits[n] - b'0'));
        n += 1;
    }
    if n == 0 || digits.get(n) != Some(&b'"') {
        return None;
    }
    Some((start, start + PAT.len() + n + 1, seq))
}

/// Renders the router block common to merged responses.
fn router_block(shared: &Arc<RouterShared>) -> String {
    let c = &shared.counters;
    ObjBuilder::new()
        .u64("shards", shared.cfg.shards.len() as u64)
        .u64("live_upstreams", shared.live_upstreams.load(Ordering::SeqCst))
        .u64("connections", c.connections.load(Ordering::Relaxed))
        .u64("conns_closed", c.conns_closed.load(Ordering::Relaxed))
        .u64("idle_closed", c.idle_closed.load(Ordering::Relaxed))
        .u64("open_connections", c.open_connections())
        .u64("requests", c.requests.load(Ordering::Relaxed))
        .u64("forwarded", c.forwarded.load(Ordering::Relaxed))
        .u64("fanouts", c.fanouts.load(Ordering::Relaxed))
        .u64("unavailable", c.unavailable.load(Ordering::Relaxed))
        .u64("bad_requests", c.bad_requests.load(Ordering::Relaxed))
        .u64("reconnects", c.reconnects.load(Ordering::Relaxed))
        .u64("unmatched", c.unmatched.load(Ordering::Relaxed))
        .u64("uptime_s", shared.started.elapsed().as_secs())
        .build()
}

/// Merged `stats`: the router's own counters plus each shard's full
/// stats response nested verbatim under its shard index.
fn merge_stats(f: &FanState, shared: &Arc<RouterShared>) -> String {
    let shards: Vec<String> = f
        .parts
        .iter()
        .map(|(shard, raw)| {
            ObjBuilder::new()
                .u64("shard", *shard as u64)
                .str("addr", &shared.cfg.shards[*shard])
                .raw("stats", raw.clone())
                .build()
        })
        .collect();
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", f.orig_id.as_deref())
        .str("verb", "stats")
        .raw("router", router_block(shared))
        .u64("shards_unavailable", f.unavailable as u64)
        .arr("shards", shards)
        .build()
}

/// Merged `metrics`: the router's own exposition plus each shard's,
/// re-labeled with `shard="i"` and de-duplicated `# HELP`/`# TYPE`.
fn merge_metrics(f: &FanState, shared: &Arc<RouterShared>) -> String {
    let mut out = String::new();
    let mut seen_headers = std::collections::HashSet::new();
    let mut push = |line: &str, out: &mut String| {
        if line.starts_with("# ") && !seen_headers.insert(line.to_string()) {
            return;
        }
        out.push_str(line);
        out.push('\n');
    };
    for line in shared.registry.render_prometheus().lines() {
        push(line, &mut out);
    }
    for (shard, raw) in &f.parts {
        let Ok(parsed) = json::parse(raw) else { continue };
        let Some(text) = parsed.str_field("text") else { continue };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if line.starts_with('#') {
                push(line, &mut out);
            } else {
                push(&relabel_metric_line(line, *shard), &mut out);
            }
        }
    }
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", f.orig_id.as_deref())
        .str("verb", "metrics")
        .str("content_type", "text/plain; version=0.0.4")
        .u64("shards_unavailable", f.unavailable as u64)
        .str("text", &out)
        .build()
}

/// Inserts `shard="i"` as the first label of one Prometheus sample line.
fn relabel_metric_line(line: &str, shard: usize) -> String {
    match line.find('{') {
        Some(brace) => format!("{}{{shard=\"{shard}\",{}", &line[..brace], &line[brace + 1..]),
        None => match line.find(' ') {
            Some(space) => {
                format!("{}{{shard=\"{shard}\"}}{}", &line[..space], &line[space..])
            }
            None => line.to_string(),
        },
    }
}

/// Merged `trace`: the router's own matching retained traces first
/// (tagged `process: "preinfer-router"`), then all shards' (each trace
/// object gains a `shard` field), newest-first within each shard. A
/// by-`trace_id` selection therefore returns one stitched multi-process
/// trace: every part shares the `trace_id`, and each part's recorded
/// lines open with the `trace_meta` naming its process, which is all
/// `obs::analyze` needs to merge them into one tree.
fn merge_traces(f: &FanState) -> String {
    let mut traces = f.local_traces.clone();
    let mut buffered = f.local_buffered;
    for (shard, raw) in &f.parts {
        let Ok(parsed) = json::parse(raw) else { continue };
        buffered += parsed.u64_field("buffered").unwrap_or(0);
        if let Some(items) = parsed.get("traces").and_then(|t| t.as_array()) {
            for t in items {
                let mut with_shard = t.clone();
                if let json::Json::Obj(m) = &mut with_shard {
                    m.insert("shard".to_string(), json::Json::Num(*shard as f64));
                }
                traces.push(json::render(&with_shard));
            }
        }
    }
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", f.orig_id.as_deref())
        .str("verb", "trace")
        .u64("buffered", buffered)
        .u64("shards_unavailable", f.unavailable as u64)
        .arr("traces", traces)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_ids_are_found_and_spliced() {
        let raw = "{\"ok\":true,\"id\":\"r42\",\"verb\":\"infer\",\"psi\":\"x != 0\"}";
        let (s, e, seq) = find_correlation_id(raw).expect("token found");
        assert_eq!(seq, 42);
        assert_eq!(&raw[s..e], "\"id\":\"r42\"");
        let spliced = format!("{}{}{}", &raw[..s], "\"id\":\"client-7\"", &raw[e..]);
        assert_eq!(
            spliced,
            "{\"ok\":true,\"id\":\"client-7\",\"verb\":\"infer\",\"psi\":\"x != 0\"}"
        );
    }

    #[test]
    fn correlation_ignores_escaped_lookalikes_in_strings() {
        // A ψ string that *contains* the pattern renders with escaped
        // quotes, so the matcher cannot be fooled.
        let raw = "{\"msg\":\"see \\\"id\\\":\\\"r9\\\"\",\"id\":\"r3\",\"ok\":false}";
        let (_, _, seq) = find_correlation_id(raw).expect("real id found");
        assert_eq!(seq, 3);
        assert!(find_correlation_id("{\"id\":null}").is_none());
        assert!(find_correlation_id("{\"id\":\"client\"}").is_none());
        assert!(find_correlation_id("{\"id\":\"r\"}").is_none(), "no digits");
    }

    #[test]
    fn metric_lines_gain_the_shard_label() {
        assert_eq!(
            relabel_metric_line("preinfer_queue_depth 3", 1),
            "preinfer_queue_depth{shard=\"1\"} 3"
        );
        assert_eq!(
            relabel_metric_line("preinfer_cache_lookups_total{result=\"hit\"} 9", 0),
            "preinfer_cache_lookups_total{shard=\"0\",result=\"hit\"} 9"
        );
    }
}
