//! The resident daemon: acceptor, connection handlers, worker pool,
//! admission control, and graceful shutdown.
//!
//! ## Threading model
//!
//! * One **acceptor** thread polls a non-blocking [`TcpListener`] (~20 ms
//!   period) so it can observe the shutdown flag between accepts.
//! * One **connection** thread per client reads frames with a read
//!   timeout (idle polls re-check the shutdown flag), answers `ping` and
//!   `stats` inline, and submits `infer` work to the admission queue —
//!   waiting for the worker's reply before reading the next frame (one
//!   in-flight request per connection; concurrency comes from opening
//!   more connections, as the load generator does).
//! * A fixed **worker pool** pops jobs and runs inference, all workers
//!   sharing one warm [`SolverCache`] — the serving layer's whole point:
//!   request N+1 reuses request N's canonical verdicts, and because
//!   cached values are pure functions of their keys, served results are
//!   byte-identical to cold offline runs.
//!
//! ## Admission, deadlines, shutdown
//!
//! Admission is bounded ([`BoundedQueue`]): a full queue rejects with a
//! typed `overloaded` response instead of buffering unboundedly. Each
//! request's deadline starts at admission, so queue wait counts against
//! it; workers check it between solver calls and return partial results
//! marked `timed_out` — a deadline can never hang a worker because every
//! solve is budget-bounded. On shutdown (SIGTERM in the binary, or
//! [`ServerHandle::shutdown`]), the acceptor stops admitting, connection
//! threads reject new work with `shutting_down`, workers drain the queue
//! to empty, and `join` returns once every thread has exited.

use crate::protocol::{
    self, render_error, ErrorCode, FrameError, InferRequest, Request, MAX_FRAME_LEN,
};
use crate::queue::BoundedQueue;
use crate::service;
use obs::Histogram;
use solver::{Deadline, SolverCache, TierCounters};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads re-check the shutdown flag.
const POLL_PERIOD: Duration = Duration::from_millis(20);

/// Socket read timeout: long enough that a slow-but-live client streaming
/// a frame body is not cut off, short enough to bound drain time.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing `infer` jobs.
    pub workers: usize,
    /// Admission-queue capacity (requests waiting for a worker).
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            queue_capacity: 64,
            default_deadline_ms: None,
        }
    }
}

/// Monotonic counters for the `stats` verb.
#[derive(Debug, Default)]
pub struct Counters {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub infers_ok: AtomicU64,
    pub infer_errors: AtomicU64,
    pub overloaded: AtomicU64,
    pub timed_out: AtomicU64,
    pub bad_requests: AtomicU64,
}

/// Per-verb latency histograms.
#[derive(Debug, Default)]
pub struct VerbLatency {
    pub infer: Histogram,
    pub stats: Histogram,
    pub ping: Histogram,
}

/// One admitted unit of work.
struct Job {
    id: Option<String>,
    request: InferRequest,
    deadline: Deadline,
    admitted_at: Instant,
    reply: mpsc::Sender<String>,
}

/// State shared by every thread.
struct Shared {
    shutdown: AtomicBool,
    /// Set by the acceptor once every connection thread has exited; the
    /// workers wait for it so that a request admitted in the instant the
    /// shutdown flag flips is still drained, not orphaned.
    conns_done: AtomicBool,
    queue: BoundedQueue<Job>,
    cache: Arc<SolverCache>,
    counters: Counters,
    latency: VerbLatency,
    /// Aggregate pipeline-stage histograms shared by every worker (no
    /// per-event buffering — recording sinks are a CLI concern). Served by
    /// the `stats` verb.
    trace: Arc<obs::TraceSink>,
    /// Which solver tier answered each executed query, summed across all
    /// workers for the daemon's lifetime. Served by the `stats` verb.
    tiers: Arc<TierCounters>,
    default_deadline_ms: Option<u64>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A cloneable trigger for graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop admitting, drain, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            conns_done: AtomicBool::new(false),
            queue: BoundedQueue::new(cfg.queue_capacity),
            cache: Arc::new(SolverCache::new()),
            counters: Counters::default(),
            latency: VerbLatency::default(),
            trace: Arc::new(obs::TraceSink::aggregate()),
            tiers: Arc::new(TierCounters::default()),
            default_deadline_ms: cfg.default_deadline_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        Ok(Server { shared, local_addr, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown trigger usable from signal handlers and tests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The shared solver cache (exposed for tests and diagnostics).
    pub fn cache(&self) -> Arc<SolverCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Blocks until the daemon has fully drained and every thread exited.
    /// Call [`ServerHandle::shutdown`] (or deliver SIGTERM to the binary)
    /// first, or this never returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

// ---- acceptor ---------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let _ = connection_loop(stream, &shared);
                });
                let mut guard = conns.lock().expect("conns lock");
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_PERIOD),
            Err(_) => std::thread::sleep(POLL_PERIOD),
        }
    }
    // Final sweep: connections the kernel already completed in the accept
    // backlog get a thread too — they will be answered with typed
    // `shutting_down` errors rather than a connection reset.
    while let Ok((stream, _)) = listener.accept() {
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared);
        });
        conns.lock().expect("conns lock").push(handle);
    }
    // Drain: wait for every connection thread (each observes the flag
    // within one read timeout and finishes its in-flight request first).
    let handles = std::mem::take(&mut *conns.lock().expect("conns lock"));
    for h in handles {
        let _ = h.join();
    }
    shared.conns_done.store(true, Ordering::SeqCst);
}

// ---- connection handling ----------------------------------------------------

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        let payload = match protocol::read_frame(&mut reader) {
            Ok(p) => p,
            Err(FrameError::Idle) => {
                if shared.shutting_down() {
                    return Ok(()); // idle connection at shutdown: close
                }
                continue;
            }
            Err(FrameError::Eof) => return Ok(()),
            Err(FrameError::TooLarge(n)) => {
                // The stream cannot be resynchronized: typed error, close.
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame length {n} outside 1..={MAX_FRAME_LEN}");
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::FrameTooLarge, &msg),
                );
                return Ok(());
            }
            Err(FrameError::Truncated) | Err(FrameError::NotUtf8) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, "malformed frame"),
                );
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()),
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        match protocol::parse_request(&payload) {
            Ok(Request::Ping { id }) => {
                let resp = crate::json::ObjBuilder::new()
                    .bool("ok", true)
                    .opt_str("id", id.as_deref())
                    .str("verb", "ping")
                    .build();
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.ping.record(started.elapsed());
            }
            Ok(Request::Stats { id }) => {
                let resp = render_stats_response(id.as_deref(), shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.stats.record(started.elapsed());
            }
            Ok(Request::Infer { id, infer }) => {
                let resp = submit_infer(id, infer, shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.infer.record(started.elapsed());
            }
            Err(reason) => {
                // Parseable framing, unparseable payload: answer and keep
                // the connection (the stream is still in sync).
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, &reason),
                )?;
            }
        }
    }
}

/// Admits an `infer` request and waits for its worker reply.
fn submit_infer(id: Option<String>, request: InferRequest, shared: &Arc<Shared>) -> String {
    if shared.shutting_down() {
        return render_error(id.as_deref(), ErrorCode::ShuttingDown, "daemon is draining");
    }
    let deadline_ms = request.deadline_ms.or(shared.default_deadline_ms);
    let deadline = deadline_ms.map(Deadline::after_ms).unwrap_or_default();
    let (tx, rx) = mpsc::channel();
    let job = Job { id: id.clone(), request, deadline, admitted_at: Instant::now(), reply: tx };
    if shared.queue.try_push(job).is_err() {
        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        return render_error(
            id.as_deref(),
            ErrorCode::Overloaded,
            &format!("admission queue full ({} slots)", shared.queue.capacity()),
        );
    }
    // The worker always replies, including during drain; a closed channel
    // means the pool died, which is itself a typed error.
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => render_error(id.as_deref(), ErrorCode::Internal, "worker pool unavailable"),
    }
}

fn render_stats_response(id: Option<&str>, shared: &Shared) -> String {
    use crate::json::ObjBuilder;
    let cache = shared.cache.stats();
    let c = &shared.counters;
    let verb = |h: &Histogram| {
        let (p50, p90, p99) = h.percentiles_us();
        ObjBuilder::new()
            .u64("count", h.count())
            .u64("mean_us", h.mean_us())
            .u64("p50_us", p50)
            .u64("p90_us", p90)
            .u64("p99_us", p99)
            .build()
    };
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "stats")
        .raw(
            "cache",
            ObjBuilder::new()
                .u64("hits", cache.hits)
                .u64("misses", cache.misses)
                .u64("entries", cache.entries)
                .u64("evictions", cache.evictions)
                .u64("evicted_entries", cache.evicted_entries)
                .f64("hit_rate", cache.hit_rate())
                .build(),
        )
        .raw("solver_tiers", {
            let t = shared.tiers.snapshot();
            ObjBuilder::new()
                .u64("answered_by_syntactic", t.answered_by_syntactic)
                .u64("answered_by_interval", t.answered_by_interval)
                .u64("answered_by_simplex", t.answered_by_simplex)
                .u64("escalations", t.escalations)
                .f64("tier1_rate", t.tier1_rate())
                .build()
        })
        .raw("stages", {
            let mut b = ObjBuilder::new();
            for (stage, snap) in shared.trace.stages() {
                b = b.raw(
                    stage.label(),
                    ObjBuilder::new()
                        .u64("count", snap.count)
                        .u64("total_us", snap.total_us)
                        .u64("mean_us", snap.mean_us)
                        .u64("p50_us", snap.p50_us)
                        .u64("p90_us", snap.p90_us)
                        .u64("p99_us", snap.p99_us)
                        .build(),
                );
            }
            b.build()
        })
        .raw(
            "counters",
            ObjBuilder::new()
                .u64("connections", c.connections.load(Ordering::Relaxed))
                .u64("requests", c.requests.load(Ordering::Relaxed))
                .u64("infers_ok", c.infers_ok.load(Ordering::Relaxed))
                .u64("infer_errors", c.infer_errors.load(Ordering::Relaxed))
                .u64("overloaded", c.overloaded.load(Ordering::Relaxed))
                .u64("timed_out", c.timed_out.load(Ordering::Relaxed))
                .u64("bad_requests", c.bad_requests.load(Ordering::Relaxed))
                .u64("queue_depth", shared.queue.len() as u64)
                .build(),
        )
        .raw(
            "latency",
            ObjBuilder::new()
                .raw("infer", verb(&shared.latency.infer))
                .raw("stats", verb(&shared.latency.stats))
                .raw("ping", verb(&shared.latency.ping))
                .build(),
        )
        .build()
}

// ---- workers ----------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(job) = shared.queue.pop_timeout(POLL_PERIOD) else {
            // Exit only after every connection thread has gone: a request
            // admitted in the same instant the flag flipped still drains.
            if shared.shutting_down()
                && shared.conns_done.load(Ordering::SeqCst)
                && shared.queue.is_empty()
            {
                return;
            }
            continue;
        };
        let queue_ms = job.admitted_at.elapsed().as_secs_f64() * 1e3;
        let trace = Some(Arc::clone(&shared.trace));
        let response = match service::run_infer(
            &job.request,
            &shared.cache,
            &job.deadline,
            &trace,
            &shared.tiers,
        ) {
            Ok(outcome) => {
                shared.counters.infers_ok.fetch_add(1, Ordering::Relaxed);
                if outcome.timed_out {
                    shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                service::render_infer_response(job.id.as_deref(), &outcome, queue_ms, &shared.cache)
            }
            Err(e) => {
                shared.counters.infer_errors.fetch_add(1, Ordering::Relaxed);
                render_error(job.id.as_deref(), e.code, &e.message)
            }
        };
        // The connection thread may have vanished (client hung up); the
        // work is simply discarded then.
        let _ = job.reply.send(response);
    }
}
