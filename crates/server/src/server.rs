//! The resident daemon: acceptor, connection handlers, worker pool,
//! admission control, and graceful shutdown.
//!
//! ## Threading model
//!
//! * One **acceptor** thread polls a non-blocking [`TcpListener`] (~20 ms
//!   period) so it can observe the shutdown flag between accepts.
//! * One **connection** thread per client reads frames with a read
//!   timeout (idle polls re-check the shutdown flag), answers `ping` and
//!   `stats` inline, and submits `infer` work to the admission queue —
//!   waiting for the worker's reply before reading the next frame (one
//!   in-flight request per connection; concurrency comes from opening
//!   more connections, as the load generator does).
//! * A fixed **worker pool** pops jobs and runs inference, all workers
//!   sharing one warm [`SolverCache`] — the serving layer's whole point:
//!   request N+1 reuses request N's canonical verdicts, and because
//!   cached values are pure functions of their keys, served results are
//!   byte-identical to cold offline runs.
//!
//! ## Admission, deadlines, shutdown
//!
//! Admission is bounded ([`BoundedQueue`]): a full queue rejects with a
//! typed `overloaded` response instead of buffering unboundedly. Each
//! request's deadline starts at admission, so queue wait counts against
//! it; workers check it between solver calls and return partial results
//! marked `timed_out` — a deadline can never hang a worker because every
//! solve is budget-bounded. On shutdown (SIGTERM in the binary, or
//! [`ServerHandle::shutdown`]), the acceptor stops admitting, connection
//! threads reject new work with `shutting_down`, workers drain the queue
//! to empty, and `join` returns once every thread has exited.

use crate::eio;
use crate::memo::{MemoKey, ResponseMemo};
use crate::netcore::Waker;
use crate::protocol::{
    self, render_error, ErrorCode, FrameError, InferRequest, Request, TraceSelect, MAX_FRAME_LEN,
};
use crate::queue::BoundedQueue;
use crate::routing;
use crate::service;
use crate::service::{IncrementalPolicy, SummaryPolicy};
use crate::trace::{SamplingPolicy, StoredTrace, TraceRing};
use concolic::InterprocMode;
use obs::{Histogram, MetricsRegistry};
use solver::{Deadline, IncrementalCounters, SolverCache, TierCounters};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads re-check the shutdown flag.
const POLL_PERIOD: Duration = Duration::from_millis(20);

/// Socket read timeout: long enough that a slow-but-live client streaming
/// a frame body is not cut off, short enough to bound drain time.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Which connection core drives the daemon's sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The original thread-per-connection core: blocking reads, one
    /// in-flight request per connection.
    #[default]
    Threads,
    /// The event-driven core (`server::eio`): one epoll loop drives every
    /// connection non-blockingly with request pipelining.
    Epoll,
}

impl IoMode {
    pub fn label(&self) -> &'static str {
        match self {
            IoMode::Threads => "threads",
            IoMode::Epoll => "epoll",
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;
    fn from_str(s: &str) -> Result<IoMode, String> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!("unknown io mode `{other}` (expected `threads` or `epoll`)")),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Connection core (`--io {threads,epoll}`).
    pub io: IoMode,
    /// Worker threads executing `infer` jobs.
    pub workers: usize,
    /// Admission-queue capacity (requests waiting for a worker).
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Close connections with no in-flight work that have been silent this
    /// long (typed `idle_timeout` response; 0 disables).
    pub idle_timeout_ms: u64,
    /// Head-sample 1 in N `infer` requests for per-request tracing
    /// (deterministic on the admission counter; 0 disables).
    pub trace_sample: u64,
    /// Tail capture: retain the trace of any request whose service time
    /// exceeds this many milliseconds, sampled or not.
    pub slow_trace_ms: Option<u64>,
    /// Capacity of the retained-trace ring served by the `trace` verb.
    pub trace_buffer: usize,
    /// Solve prefix-sharing queries through warm incremental sessions
    /// (`--incremental`). Speed only — served ψ is identical either way.
    pub incremental: bool,
    /// How `infer` requests treat user calls (`--interproc`): inline the
    /// callee body (default) or apply callee ψ-summaries from the
    /// daemon-lifetime shared table.
    pub interproc: InterprocMode,
    /// Serve repeat requests for an α-equivalent method from the ψ-level
    /// response memo (`--memo`). Off by default: with the memo on, repeat
    /// requests skip the pipeline entirely, which changes the solver-cache
    /// traffic the corpus differential tests observe.
    pub memo: bool,
    /// Response-memo capacity in entries (FIFO eviction).
    pub memo_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            io: IoMode::Threads,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            queue_capacity: 64,
            default_deadline_ms: None,
            idle_timeout_ms: 60_000,
            trace_sample: 0,
            slow_trace_ms: None,
            trace_buffer: 64,
            incremental: true,
            interproc: InterprocMode::Inline,
            memo: false,
            memo_capacity: 4096,
        }
    }
}

/// Monotonic counters for the `stats` verb.
#[derive(Debug, Default)]
pub struct Counters {
    pub connections: AtomicU64,
    /// Connections torn down (every accepted connection is eventually
    /// counted here too; `connections - conns_closed` is the live gauge).
    pub conns_closed: AtomicU64,
    /// Subset of `conns_closed`: closed by the per-connection idle
    /// deadline with a typed `idle_timeout` response.
    pub idle_closed: AtomicU64,
    pub requests: AtomicU64,
    pub infers_ok: AtomicU64,
    pub infer_errors: AtomicU64,
    pub overloaded: AtomicU64,
    pub timed_out: AtomicU64,
    pub bad_requests: AtomicU64,
}

impl Counters {
    /// Currently open connections (accepted minus closed).
    pub fn open_connections(&self) -> u64 {
        self.connections
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }
}

/// Server-side latency histograms: one per verb, plus `queue_wait`
/// (admission → dequeue) so time spent waiting for a worker is attributed
/// separately from service time.
#[derive(Debug, Default)]
pub struct ServerLatency {
    pub infer: Histogram,
    pub stats: Histogram,
    pub ping: Histogram,
    pub metrics: Histogram,
    pub trace: Histogram,
    pub queue_wait: Histogram,
}

/// Where a worker delivers a finished response.
pub(crate) enum ReplyTo {
    /// The threaded core: the connection thread blocks on the channel.
    Sync(mpsc::Sender<String>),
    /// The event core: the response is pushed onto the loop's completion
    /// queue (tagged with the connection token) and the loop is woken.
    Event { token: u64, completions: Arc<eio::Completions> },
}

impl ReplyTo {
    fn send(self, response: String) {
        match self {
            // The connection thread may have vanished (client hung up);
            // the work is simply discarded then.
            ReplyTo::Sync(tx) => {
                let _ = tx.send(response);
            }
            ReplyTo::Event { token, completions } => completions.push(token, response),
        }
    }
}

/// One admitted unit of work.
pub(crate) struct Job {
    /// Monotonic 1-based admission id (assigned in [`start_infer`]).
    pub(crate) request_id: u64,
    pub(crate) id: Option<String>,
    pub(crate) request: InferRequest,
    pub(crate) deadline: Deadline,
    pub(crate) admitted_at: Instant,
    /// The response-memo key, precomputed at admission when the memo is
    /// enabled and the program compiles (the worker stores its completed
    /// outcome under it).
    pub(crate) memo_key: Option<MemoKey>,
    pub(crate) reply: ReplyTo,
}

/// State shared by every thread. The observable pieces (`queue`,
/// `counters`, `latency`, `trace`, `tiers`, `ring`) are individually
/// `Arc`'d so the metrics registry's scrape closures can capture them
/// without holding the whole `Shared` (which owns the registry — a cycle).
pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    /// Set by the connection core once every connection has closed; the
    /// workers wait for it so that a request admitted in the instant the
    /// shutdown flag flips is still drained, not orphaned.
    pub(crate) conns_done: AtomicBool,
    pub(crate) queue: Arc<BoundedQueue<Job>>,
    pub(crate) cache: Arc<SolverCache>,
    pub(crate) counters: Arc<Counters>,
    pub(crate) latency: Arc<ServerLatency>,
    /// Aggregate pipeline-stage histograms shared by every worker. Served
    /// by the `stats` verb. Sampled requests run on their own recording
    /// sink which is absorbed here on completion, so these lifetime
    /// histograms stay complete regardless of sampling.
    pub(crate) trace: Arc<obs::TraceSink>,
    /// Which solver tier answered each executed query, summed across all
    /// workers for the daemon's lifetime. Served by the `stats` verb.
    pub(crate) tiers: Arc<TierCounters>,
    /// Retained per-request traces, served by the `trace` verb.
    pub(crate) ring: Arc<TraceRing>,
    /// Incremental-session policy + counters shared by every worker.
    /// Served by the `stats` verb and the metrics registry.
    pub(crate) incremental: IncrementalPolicy,
    /// Interprocedural policy: mode, the daemon-lifetime summary table,
    /// and apply counters. Served by `stats` and the metrics registry.
    pub(crate) summaries: SummaryPolicy,
    /// Deterministic per-request sampling policy (fixed at startup).
    pub(crate) sampling: SamplingPolicy,
    /// Unified metrics, served by the `metrics` verb.
    pub(crate) registry: Arc<MetricsRegistry>,
    /// The ψ-level response memo (`--memo`); `None` when disabled.
    pub(crate) memo: Option<Arc<ResponseMemo>>,
    /// Idle-close deadline for silent connections; `None` when disabled.
    pub(crate) idle_timeout: Option<Duration>,
    /// The event core's waker, registered by the loop at startup so
    /// [`ServerHandle::shutdown`] can interrupt `epoll_wait` immediately.
    pub(crate) wake: Mutex<Option<Arc<Waker>>>,
    /// Admission counter: ids are 1-based, assigned in [`start_infer`].
    pub(crate) next_request_id: AtomicU64,
    pub(crate) started: Instant,
    pub(crate) default_deadline_ms: Option<u64>,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A cloneable trigger for graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop admitting, drain, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Interrupt the event core's `epoll_wait` so the drain starts now
        // rather than at the next sweep tick.
        if let Some(waker) = &*self.shared.wake.lock().expect("wake lock") {
            waker.wake();
        }
    }
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let started = Instant::now();
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let cache = Arc::new(SolverCache::new());
        let counters = Arc::new(Counters::default());
        let latency = Arc::new(ServerLatency::default());
        let trace = Arc::new(obs::TraceSink::aggregate());
        let tiers = Arc::new(TierCounters::default());
        let ring = Arc::new(TraceRing::new(cfg.trace_buffer));
        let incremental = IncrementalPolicy {
            enabled: cfg.incremental,
            stats: Arc::new(IncrementalCounters::default()),
        };
        let memo = cfg.memo.then(|| Arc::new(ResponseMemo::new(cfg.memo_capacity)));
        let summaries = SummaryPolicy { mode: cfg.interproc, ..SummaryPolicy::default() };
        let registry = Arc::new(MetricsRegistry::new());
        register_metrics(
            &registry,
            &cache,
            &tiers,
            &counters,
            &latency,
            &trace,
            &queue,
            &ring,
            &incremental.stats,
            &summaries,
            &memo,
            started,
        );
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            conns_done: AtomicBool::new(false),
            queue,
            cache,
            counters,
            latency,
            trace,
            tiers,
            ring,
            incremental,
            summaries,
            sampling: SamplingPolicy {
                sample: cfg.trace_sample,
                slow_threshold: cfg.slow_trace_ms.map(Duration::from_millis),
            },
            registry,
            memo,
            idle_timeout: (cfg.idle_timeout_ms > 0)
                .then(|| Duration::from_millis(cfg.idle_timeout_ms)),
            wake: Mutex::new(None),
            next_request_id: AtomicU64::new(0),
            started,
            default_deadline_ms: cfg.default_deadline_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            match cfg.io {
                IoMode::Threads => std::thread::spawn(move || accept_loop(listener, &shared)),
                IoMode::Epoll => std::thread::spawn(move || eio::event_loop(listener, &shared)),
            }
        };
        Ok(Server { shared, local_addr, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown trigger usable from signal handlers and tests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The shared solver cache (exposed for tests and diagnostics).
    pub fn cache(&self) -> Arc<SolverCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Blocks until the daemon has fully drained and every thread exited.
    /// Call [`ServerHandle::shutdown`] (or deliver SIGTERM to the binary)
    /// first, or this never returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

// ---- acceptor ---------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let _ = connection_loop(stream, &shared);
                    shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
                });
                let mut guard = conns.lock().expect("conns lock");
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_PERIOD),
            Err(_) => std::thread::sleep(POLL_PERIOD),
        }
    }
    // Final sweep: connections the kernel already completed in the accept
    // backlog get a thread too — they will be answered with typed
    // `shutting_down` errors rather than a connection reset.
    while let Ok((stream, _)) = listener.accept() {
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared);
            shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
        });
        conns.lock().expect("conns lock").push(handle);
    }
    // Drain: wait for every connection thread (each observes the flag
    // within one read timeout and finishes its in-flight request first).
    let handles = std::mem::take(&mut *conns.lock().expect("conns lock"));
    for h in handles {
        let _ = h.join();
    }
    shared.conns_done.store(true, Ordering::SeqCst);
}

// ---- connection handling ----------------------------------------------------

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut last_activity = Instant::now();
    loop {
        let payload = match protocol::read_frame(&mut reader) {
            Ok(p) => p,
            Err(FrameError::Idle) => {
                if shared.shutting_down() {
                    return Ok(()); // idle connection at shutdown: close
                }
                if let Some(limit) = shared.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        // Silent past the deadline: typed close so a live
                        // peer knows why, not a mystery reset.
                        shared.counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                        let _ = protocol::write_frame(
                            &mut writer,
                            &render_error(
                                None,
                                ErrorCode::IdleTimeout,
                                &format!("connection idle past {} ms", limit.as_millis()),
                            ),
                        );
                        return Ok(());
                    }
                }
                continue;
            }
            Err(FrameError::Eof) => return Ok(()),
            Err(FrameError::TooLarge(n)) => {
                // The stream cannot be resynchronized: typed error, close.
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame length {n} outside 1..={MAX_FRAME_LEN}");
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::FrameTooLarge, &msg),
                );
                return Ok(());
            }
            Err(FrameError::Truncated) | Err(FrameError::NotUtf8) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, "malformed frame"),
                );
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()),
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        last_activity = Instant::now();
        let started = Instant::now();
        match protocol::parse_request(&payload) {
            Ok(Request::Ping { id }) => {
                let resp = crate::json::ObjBuilder::new()
                    .bool("ok", true)
                    .opt_str("id", id.as_deref())
                    .str("verb", "ping")
                    .build();
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.ping.record(started.elapsed());
            }
            Ok(Request::Stats { id }) => {
                let resp = render_stats_response(id.as_deref(), shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.stats.record(started.elapsed());
            }
            Ok(Request::Metrics { id }) => {
                let resp = render_metrics_response(id.as_deref(), shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.metrics.record(started.elapsed());
            }
            Ok(Request::Trace { id, select }) => {
                let resp = render_trace_response(id.as_deref(), &select, shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.trace.record(started.elapsed());
            }
            Ok(Request::Infer { id, infer }) => {
                let exemplar = sampled_trace_id(&infer).map(str::to_string);
                let resp = submit_infer(id, infer, shared);
                protocol::write_frame(&mut writer, &resp)?;
                match &exemplar {
                    Some(tid) => shared.latency.infer.record_with_exemplar(started.elapsed(), tid),
                    None => shared.latency.infer.record(started.elapsed()),
                }
            }
            Err(reason) => {
                // Parseable framing, unparseable payload: answer and keep
                // the connection (the stream is still in sync).
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, &reason),
                )?;
            }
        }
    }
}

/// The outcome of trying to start an `infer` request.
pub(crate) enum InferDisposition {
    /// The response is already known: memo hit, rejection, or drain.
    Done(String),
    /// A job was admitted; the response arrives through the [`ReplyTo`].
    Queued,
}

/// The shared admission path for both connection cores: drain check, memo
/// lookup, then bounded admission. On a memo hit the stored completed
/// outcome is rendered inline — no worker-pool hop at all — which is what
/// lets the event core answer warm repeat traffic at wire speed.
pub(crate) fn start_infer(
    id: Option<String>,
    request: InferRequest,
    shared: &Arc<Shared>,
    reply: ReplyTo,
) -> InferDisposition {
    if shared.shutting_down() {
        return InferDisposition::Done(render_error(
            id.as_deref(),
            ErrorCode::ShuttingDown,
            "daemon is draining",
        ));
    }
    // The admission id is assigned before the push so the job carries it;
    // rejected (overloaded) and memo-served requests consume ids too.
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let mut memo_key = None;
    if let Some(memo) = &shared.memo {
        // Uncompilable programs get no key: errors are never memoized and
        // the worker will produce the typed compile_error itself.
        if let Ok(m) = routing::canonical_method(&request.program, request.func.as_deref()) {
            let key = MemoKey { canon: m.canon, tests: request.tests };
            if let Some(entry) = memo.get(&key) {
                shared.counters.infers_ok.fetch_add(1, Ordering::Relaxed);
                return InferDisposition::Done(service::render_infer_response(
                    id.as_deref(),
                    request_id,
                    &entry.outcome,
                    0.0,
                    &shared.cache,
                ));
            }
            memo_key = Some(key);
        }
    }
    let deadline_ms = request.deadline_ms.or(shared.default_deadline_ms);
    let deadline = deadline_ms.map(Deadline::after_ms).unwrap_or_default();
    let job = Job {
        request_id,
        id: id.clone(),
        request,
        deadline,
        admitted_at: Instant::now(),
        memo_key,
        reply,
    };
    if shared.queue.try_push(job).is_err() {
        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        return InferDisposition::Done(render_error(
            id.as_deref(),
            ErrorCode::Overloaded,
            &format!("admission queue full ({} slots)", shared.queue.capacity()),
        ));
    }
    InferDisposition::Queued
}

/// Admits an `infer` request and waits for its worker reply (the threaded
/// core's one-in-flight-per-connection path).
fn submit_infer(id: Option<String>, request: InferRequest, shared: &Arc<Shared>) -> String {
    let (tx, rx) = mpsc::channel();
    match start_infer(id.clone(), request, shared, ReplyTo::Sync(tx)) {
        InferDisposition::Done(resp) => resp,
        // The worker always replies, including during drain; a closed
        // channel means the pool died, which is itself a typed error.
        InferDisposition::Queued => rx.recv().unwrap_or_else(|_| {
            render_error(id.as_deref(), ErrorCode::Internal, "worker pool unavailable")
        }),
    }
}

pub(crate) fn render_stats_response(id: Option<&str>, shared: &Shared) -> String {
    use crate::json::ObjBuilder;
    let cache = shared.cache.stats();
    let c = &shared.counters;
    let verb = |h: &Histogram| {
        let (p50, p90, p99) = h.percentiles_us();
        ObjBuilder::new()
            .u64("count", h.count())
            .u64("mean_us", h.mean_us())
            .u64("p50_us", p50)
            .u64("p90_us", p90)
            .u64("p99_us", p99)
            .build()
    };
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "stats")
        .raw(
            "cache",
            ObjBuilder::new()
                .u64("hits", cache.hits)
                .u64("misses", cache.misses)
                .u64("entries", cache.entries)
                .u64("evictions", cache.evictions)
                .u64("evicted_entries", cache.evicted_entries)
                .f64("hit_rate", cache.hit_rate())
                .build(),
        )
        .raw("solver_tiers", {
            let t = shared.tiers.snapshot();
            ObjBuilder::new()
                .u64("answered_by_syntactic", t.answered_by_syntactic)
                .u64("answered_by_interval", t.answered_by_interval)
                .u64("answered_by_simplex", t.answered_by_simplex)
                .u64("escalations", t.escalations)
                .f64("tier1_rate", t.tier1_rate())
                .build()
        })
        .raw("solver_incremental", {
            let i = shared.incremental.stats.snapshot();
            ObjBuilder::new()
                .bool("enabled", shared.incremental.enabled)
                .u64("sessions", i.sessions)
                .u64("queries", i.queries)
                .u64("pushes", i.pushes)
                .u64("pops", i.pops)
                .u64("reused_depth_sum", i.reused_depth_sum)
                .f64("avg_reused_depth", i.avg_reused_depth())
                .build()
        })
        .raw("summaries", {
            let t = &shared.summaries.table;
            let s = &shared.summaries.stats;
            ObjBuilder::new()
                .str("mode", shared.summaries.mode.label())
                .u64("hits", t.hits())
                .u64("misses", t.misses())
                .u64("inserts", t.inserts())
                .u64("entries", t.len() as u64)
                .u64("applies", s.applies())
                .u64("fallbacks", s.fallbacks())
                .build()
        })
        .raw("stages", {
            let mut b = ObjBuilder::new();
            for (stage, snap) in shared.trace.stages() {
                b = b.raw(
                    stage.label(),
                    ObjBuilder::new()
                        .u64("count", snap.count)
                        .u64("total_us", snap.total_us)
                        .u64("mean_us", snap.mean_us)
                        .u64("p50_us", snap.p50_us)
                        .u64("p90_us", snap.p90_us)
                        .u64("p99_us", snap.p99_us)
                        .build(),
                );
            }
            b.build()
        })
        .raw("response_memo", {
            let b = ObjBuilder::new().bool("enabled", shared.memo.is_some());
            match &shared.memo {
                Some(memo) => {
                    let m = memo.stats();
                    b.u64("hits", m.hits)
                        .u64("misses", m.misses)
                        .u64("inserts", m.inserts)
                        .u64("evictions", m.evictions)
                        .u64("entries", m.entries)
                        .f64("hit_rate", m.hit_rate())
                        .build()
                }
                None => b.build(),
            }
        })
        .raw(
            "counters",
            ObjBuilder::new()
                .u64("connections", c.connections.load(Ordering::Relaxed))
                .u64("conns_closed", c.conns_closed.load(Ordering::Relaxed))
                .u64("idle_closed", c.idle_closed.load(Ordering::Relaxed))
                .u64("open_connections", c.open_connections())
                .u64("requests", c.requests.load(Ordering::Relaxed))
                .u64("infers_ok", c.infers_ok.load(Ordering::Relaxed))
                .u64("infer_errors", c.infer_errors.load(Ordering::Relaxed))
                .u64("overloaded", c.overloaded.load(Ordering::Relaxed))
                .u64("timed_out", c.timed_out.load(Ordering::Relaxed))
                .u64("bad_requests", c.bad_requests.load(Ordering::Relaxed))
                .u64("queue_depth", shared.queue.len() as u64)
                .u64("queue_capacity", shared.queue.capacity() as u64)
                .u64("uptime_s", shared.started.elapsed().as_secs())
                .build(),
        )
        .raw(
            "latency",
            ObjBuilder::new()
                .raw("infer", verb(&shared.latency.infer))
                .raw("stats", verb(&shared.latency.stats))
                .raw("ping", verb(&shared.latency.ping))
                .raw("metrics", verb(&shared.latency.metrics))
                .raw("trace", verb(&shared.latency.trace))
                .raw("queue_wait", verb(&shared.latency.queue_wait))
                .build(),
        )
        .raw("traces", {
            let (head, slow, context, evicted) = shared.ring.counters();
            ObjBuilder::new()
                .u64("sample", shared.sampling.sample)
                .u64("buffered", shared.ring.len() as u64)
                .u64("retained_head", head)
                .u64("retained_slow", slow)
                .u64("retained_context", context)
                .u64("evicted", evicted)
                .build()
        })
        .build()
}

/// Renders the `metrics` verb: the registry's Prometheus text exposition,
/// carried as a JSON string field so the frame stays a JSON object.
pub(crate) fn render_metrics_response(id: Option<&str>, shared: &Shared) -> String {
    crate::json::ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "metrics")
        .str("content_type", "text/plain; version=0.0.4")
        .str("text", &shared.registry.render_prometheus())
        .build()
}

/// Renders the `trace` verb: retained traces (newest first for `last`),
/// each with its recorded events inlined as a JSON array.
pub(crate) fn render_trace_response(
    id: Option<&str>,
    select: &TraceSelect,
    shared: &Shared,
) -> String {
    use crate::json::ObjBuilder;
    let traces = match select {
        TraceSelect::Last(k) => shared.ring.last(usize::try_from(*k).unwrap_or(usize::MAX)),
        TraceSelect::ById(rid) => shared.ring.by_request_id(*rid).into_iter().collect(),
        TraceSelect::ByTraceId(tid) => shared.ring.by_trace_id(tid).into_iter().collect(),
    };
    let rendered: Vec<String> = traces
        .iter()
        .map(|t| {
            ObjBuilder::new()
                .u64("request_id", t.request_id)
                .opt_str("trace_id", t.trace_id.as_deref())
                .str("func", &t.func)
                .str("reason", t.reason.label())
                .u64("queue_us", t.queue_us)
                .u64("service_us", t.service_us)
                .arr("events", t.lines.clone())
                .build()
        })
        .collect();
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "trace")
        .u64("buffered", shared.ring.len() as u64)
        .arr("traces", rendered)
        .build()
}

// ---- workers ----------------------------------------------------------------

/// The trace id to stamp on latency exemplars: present only when the
/// request carries a sampled cross-process trace context.
fn sampled_trace_id(req: &InferRequest) -> Option<&str> {
    req.trace.as_ref().filter(|c| c.sampled).map(|c| c.trace_id.as_str())
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(job) = shared.queue.pop_timeout(POLL_PERIOD) else {
            // Exit only after every connection thread has gone: a request
            // admitted in the same instant the flag flipped still drains.
            if shared.shutting_down()
                && shared.conns_done.load(Ordering::SeqCst)
                && shared.queue.is_empty()
            {
                return;
            }
            continue;
        };
        let dequeued = Instant::now();
        let queue_wait = dequeued.duration_since(job.admitted_at);
        // A sampled cross-process request leaves its trace_id as the
        // exemplar on whatever bucket its wait lands in, so a fat tail
        // bucket in `metrics` links straight to a retained trace.
        match sampled_trace_id(&job.request) {
            Some(tid) => shared.latency.queue_wait.record_with_exemplar(queue_wait, tid),
            None => shared.latency.queue_wait.record(queue_wait),
        }
        let queue_ms = queue_wait.as_secs_f64() * 1e3;
        // Sampled requests (and all requests under a slow threshold) run
        // on a private recording sink; everyone else shares the aggregate.
        // Recording is observation-only — the trace-neutrality tests prove
        // served ψ identical either way. An upstream-minted trace context
        // overrides the local policy entirely: exactly one tier decides
        // sampling, and a context-recorded sink stamps the shared trace_id
        // so the per-process traces stitch together afterwards.
        let ctx = job.request.trace.clone();
        let recording = match &ctx {
            Some(c) => c.sampled,
            None => shared.sampling.record(job.request_id),
        };
        let sink = match (&ctx, recording) {
            (Some(c), true) => Arc::new(obs::TraceSink::recording_in_trace(
                "preinferd",
                &c.trace_id,
                c.parent_span_id,
            )),
            (None, true) => Arc::new(obs::TraceSink::recording()),
            (_, false) => Arc::clone(&shared.trace),
        };
        let trace = Some(Arc::clone(&sink));
        let result = service::run_infer(
            &job.request,
            &shared.cache,
            &job.deadline,
            &trace,
            &shared.tiers,
            &shared.incremental,
            &shared.summaries,
        );
        let service_time = dequeued.elapsed();
        let (response, func) = match result {
            Ok(outcome) => {
                shared.counters.infers_ok.fetch_add(1, Ordering::Relaxed);
                if outcome.timed_out {
                    shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                let resp = service::render_infer_response(
                    job.id.as_deref(),
                    job.request_id,
                    &outcome,
                    queue_ms,
                    &shared.cache,
                );
                // Only clean completions enter the memo: a timed-out
                // partial must never be replayed to later callers.
                if !outcome.timed_out {
                    if let (Some(memo), Some(key)) = (&shared.memo, job.memo_key) {
                        memo.insert(key, outcome.clone());
                    }
                }
                (resp, outcome.func)
            }
            Err(e) => {
                shared.counters.infer_errors.fetch_add(1, Ordering::Relaxed);
                let func = job.request.func.clone().unwrap_or_default();
                (render_error(job.id.as_deref(), e.code, &e.message), func)
            }
        };
        if recording {
            let queue_us = queue_wait.as_micros().min(u64::MAX as u128) as u64;
            let service_us = service_time.as_micros().min(u64::MAX as u128) as u64;
            // Trailing request summary so an exported trace is
            // self-describing (preinfer-trace reads it as the wall clock).
            sink.event(
                "run",
                &[
                    ("request_id", obs::Val::U(job.request_id)),
                    ("func", obs::Val::S(&func)),
                    ("dur_us", obs::Val::U(service_us)),
                    ("queue_us", obs::Val::U(queue_us)),
                ],
            );
            // Fold the private sink's stage histograms into the daemon
            // aggregate so `stats`/`metrics` stay complete under sampling.
            shared.trace.absorb(&sink);
            // With a context the upstream tier already decided retention;
            // locally-sampled requests go through the head/tail policy.
            let reason = match &ctx {
                Some(_) => Some(crate::trace::RetainReason::Context),
                None => shared.sampling.retain(job.request_id, service_time),
            };
            if let Some(reason) = reason {
                let trace_id = sink.trace_id();
                shared.ring.push(StoredTrace {
                    request_id: job.request_id,
                    trace_id,
                    func,
                    reason,
                    queue_us,
                    service_us,
                    lines: sink.lines(),
                });
            }
        }
        // The threaded core records infer latency on the connection
        // thread; for event-core jobs the worker is the last stop that
        // knows the request, so record admission→completion here.
        if matches!(job.reply, ReplyTo::Event { .. }) {
            match sampled_trace_id(&job.request) {
                Some(tid) => {
                    shared.latency.infer.record_with_exemplar(job.admitted_at.elapsed(), tid)
                }
                None => shared.latency.infer.record(job.admitted_at.elapsed()),
            }
        }
        job.reply.send(response);
    }
}

/// Registers every observable the daemon owns into the unified registry.
/// Closures capture individual `Arc`s (never `Shared`, which owns the
/// registry) and read their atomics at scrape time — zero hot-path cost.
#[allow(clippy::too_many_arguments)]
fn register_metrics(
    reg: &MetricsRegistry,
    cache: &Arc<SolverCache>,
    tiers: &Arc<TierCounters>,
    counters: &Arc<Counters>,
    latency: &Arc<ServerLatency>,
    trace: &Arc<obs::TraceSink>,
    queue: &Arc<BoundedQueue<Job>>,
    ring: &Arc<TraceRing>,
    incremental: &Arc<IncrementalCounters>,
    summaries: &SummaryPolicy,
    memo: &Option<Arc<ResponseMemo>>,
    started: Instant,
) {
    reg.gauge("preinfer_uptime_seconds", "Seconds since the daemon started.", &[], move || {
        started.elapsed().as_secs_f64()
    });
    let q = Arc::clone(queue);
    reg.gauge("preinfer_queue_depth", "Requests waiting for a worker.", &[], move || {
        q.len() as f64
    });
    let q = Arc::clone(queue);
    reg.gauge("preinfer_queue_capacity", "Admission queue capacity.", &[], move || {
        q.capacity() as f64
    });

    let c = Arc::clone(counters);
    reg.counter("preinfer_connections_total", "Accepted TCP connections.", &[], move || {
        c.connections.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.gauge("preinfer_server_connections", "Currently open connections.", &[], move || {
        c.open_connections() as f64
    });
    const CONN_EVENT_HELP: &str = "Connection lifecycle events.";
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "accepted")],
        move || c.connections.load(Ordering::Relaxed),
    );
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "closed")],
        move || c.conns_closed.load(Ordering::Relaxed),
    );
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_connection_events_total",
        CONN_EVENT_HELP,
        &[("event", "idle_closed")],
        move || c.idle_closed.load(Ordering::Relaxed),
    );
    if let Some(memo) = memo {
        const MEMO_LOOKUP_HELP: &str = "Response-memo lookups by result.";
        let m = Arc::clone(memo);
        reg.counter(
            "preinfer_response_memo_lookups_total",
            MEMO_LOOKUP_HELP,
            &[("result", "hit")],
            move || m.stats().hits,
        );
        let m = Arc::clone(memo);
        reg.counter(
            "preinfer_response_memo_lookups_total",
            MEMO_LOOKUP_HELP,
            &[("result", "miss")],
            move || m.stats().misses,
        );
        let m = Arc::clone(memo);
        reg.counter(
            "preinfer_response_memo_inserts_total",
            "Completed outcomes stored in the response memo.",
            &[],
            move || m.stats().inserts,
        );
        let m = Arc::clone(memo);
        reg.counter(
            "preinfer_response_memo_evictions_total",
            "Response-memo entries evicted (FIFO).",
            &[],
            move || m.stats().evictions,
        );
        let m = Arc::clone(memo);
        reg.gauge(
            "preinfer_response_memo_entries",
            "Entries resident in the response memo.",
            &[],
            move || m.stats().entries as f64,
        );
    }
    let c = Arc::clone(counters);
    reg.counter("preinfer_requests_total", "Parsed request frames.", &[], move || {
        c.requests.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_bad_requests_total",
        "Malformed or unparseable requests.",
        &[],
        move || c.bad_requests.load(Ordering::Relaxed),
    );
    const INFER_HELP: &str = "Completed infer requests by result.";
    let c = Arc::clone(counters);
    reg.counter("preinfer_infer_results_total", INFER_HELP, &[("result", "ok")], move || {
        c.infers_ok.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter("preinfer_infer_results_total", INFER_HELP, &[("result", "error")], move || {
        c.infer_errors.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_infer_results_total",
        INFER_HELP,
        &[("result", "overloaded")],
        move || c.overloaded.load(Ordering::Relaxed),
    );
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_infer_results_total",
        INFER_HELP,
        &[("result", "timed_out")],
        move || c.timed_out.load(Ordering::Relaxed),
    );

    const LOOKUP_HELP: &str = "Solver cache lookups by result.";
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_lookups_total", LOOKUP_HELP, &[("result", "hit")], move || {
        ca.stats().hits
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_lookups_total", LOOKUP_HELP, &[("result", "miss")], move || {
        ca.stats().misses
    });
    let ca = Arc::clone(cache);
    reg.gauge("preinfer_cache_entries", "Entries resident in the solver cache.", &[], move || {
        ca.stats().entries as f64
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_eviction_sweeps_total", "Cache eviction sweeps.", &[], move || {
        ca.stats().evictions
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_evicted_entries_total", "Entries evicted.", &[], move || {
        ca.stats().evicted_entries
    });

    const TIER_HELP: &str = "Solver queries answered, by deciding tier.";
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "syntactic")],
        move || t.snapshot().answered_by_syntactic,
    );
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "interval")],
        move || t.snapshot().answered_by_interval,
    );
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "simplex")],
        move || t.snapshot().answered_by_simplex,
    );
    let t = Arc::clone(tiers);
    reg.counter("preinfer_solver_escalations_total", "Tier escalations.", &[], move || {
        t.snapshot().escalations
    });

    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_sessions_total",
        "Warm incremental solver sessions opened.",
        &[],
        move || i.snapshot().sessions,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_queries_total",
        "Solver queries answered through an incremental session.",
        &[],
        move || i.snapshot().queries,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_pushes_total",
        "Predicates pushed onto incremental session stacks.",
        &[],
        move || i.snapshot().pushes,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_pops_total",
        "Incremental session stack rewinds.",
        &[],
        move || i.snapshot().pops,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_reused_depth_total",
        "Stacked predicates reused across incremental queries (sum).",
        &[],
        move || i.snapshot().reused_depth_sum,
    );

    const SUMMARY_LOOKUP_HELP: &str = "Summary-table lookups by result.";
    let t = Arc::clone(&summaries.table);
    reg.counter(
        "preinfer_summary_table_lookups_total",
        SUMMARY_LOOKUP_HELP,
        &[("result", "hit")],
        move || t.hits(),
    );
    let t = Arc::clone(&summaries.table);
    reg.counter(
        "preinfer_summary_table_lookups_total",
        SUMMARY_LOOKUP_HELP,
        &[("result", "miss")],
        move || t.misses(),
    );
    let t = Arc::clone(&summaries.table);
    reg.gauge(
        "preinfer_summary_table_entries",
        "Callee closures resident in the summary table.",
        &[],
        move || t.len() as f64,
    );
    let s = Arc::clone(&summaries.stats);
    reg.counter(
        "preinfer_summary_applies_total",
        "Checks summarized at call sites (psi(actuals) recorded).",
        &[],
        move || s.applies(),
    );
    let s = Arc::clone(&summaries.stats);
    reg.counter(
        "preinfer_summary_fallbacks_total",
        "Call-site fallbacks to inline recording.",
        &[],
        move || s.fallbacks(),
    );

    for stage in obs::Stage::ALL {
        let tr = Arc::clone(trace);
        reg.histogram(
            "preinfer_stage_duration_us",
            "Pipeline stage wall-clock, microseconds.",
            &[("stage", stage.label())],
            move || tr.stage_histogram(stage).snapshot(),
        );
    }
    type VerbSelector = fn(&ServerLatency) -> &Histogram;
    let verbs: [(&str, VerbSelector); 5] = [
        ("infer", |l| &l.infer),
        ("stats", |l| &l.stats),
        ("ping", |l| &l.ping),
        ("metrics", |l| &l.metrics),
        ("trace", |l| &l.trace),
    ];
    for (verb, sel) in verbs {
        let l = Arc::clone(latency);
        reg.histogram(
            "preinfer_request_duration_us",
            "Request service latency by verb, microseconds.",
            &[("verb", verb)],
            move || sel(&l).snapshot(),
        );
    }
    let l = Arc::clone(latency);
    reg.histogram(
        "preinfer_queue_wait_us",
        "Admission-to-dequeue wait, microseconds.",
        &[],
        move || l.queue_wait.snapshot(),
    );

    const RETAIN_HELP: &str = "Per-request traces retained, by reason.";
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "head")], move || {
        r.counters().0
    });
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "slow")], move || {
        r.counters().1
    });
    let r = Arc::clone(ring);
    reg.counter(
        "preinfer_traces_retained_total",
        RETAIN_HELP,
        &[("reason", "context")],
        move || r.counters().2,
    );
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_evicted_total", "Traces evicted from the ring.", &[], move || {
        r.counters().3
    });
    let r = Arc::clone(ring);
    reg.gauge("preinfer_trace_buffer_entries", "Traces currently retained.", &[], move || {
        r.len() as f64
    });
}
