//! The resident daemon: acceptor, connection handlers, worker pool,
//! admission control, and graceful shutdown.
//!
//! ## Threading model
//!
//! * One **acceptor** thread polls a non-blocking [`TcpListener`] (~20 ms
//!   period) so it can observe the shutdown flag between accepts.
//! * One **connection** thread per client reads frames with a read
//!   timeout (idle polls re-check the shutdown flag), answers `ping` and
//!   `stats` inline, and submits `infer` work to the admission queue —
//!   waiting for the worker's reply before reading the next frame (one
//!   in-flight request per connection; concurrency comes from opening
//!   more connections, as the load generator does).
//! * A fixed **worker pool** pops jobs and runs inference, all workers
//!   sharing one warm [`SolverCache`] — the serving layer's whole point:
//!   request N+1 reuses request N's canonical verdicts, and because
//!   cached values are pure functions of their keys, served results are
//!   byte-identical to cold offline runs.
//!
//! ## Admission, deadlines, shutdown
//!
//! Admission is bounded ([`BoundedQueue`]): a full queue rejects with a
//! typed `overloaded` response instead of buffering unboundedly. Each
//! request's deadline starts at admission, so queue wait counts against
//! it; workers check it between solver calls and return partial results
//! marked `timed_out` — a deadline can never hang a worker because every
//! solve is budget-bounded. On shutdown (SIGTERM in the binary, or
//! [`ServerHandle::shutdown`]), the acceptor stops admitting, connection
//! threads reject new work with `shutting_down`, workers drain the queue
//! to empty, and `join` returns once every thread has exited.

use crate::protocol::{
    self, render_error, ErrorCode, FrameError, InferRequest, Request, TraceSelect, MAX_FRAME_LEN,
};
use crate::queue::BoundedQueue;
use crate::service;
use crate::service::IncrementalPolicy;
use crate::trace::{SamplingPolicy, StoredTrace, TraceRing};
use obs::{Histogram, MetricsRegistry};
use solver::{Deadline, IncrementalCounters, SolverCache, TierCounters};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads re-check the shutdown flag.
const POLL_PERIOD: Duration = Duration::from_millis(20);

/// Socket read timeout: long enough that a slow-but-live client streaming
/// a frame body is not cut off, short enough to bound drain time.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing `infer` jobs.
    pub workers: usize,
    /// Admission-queue capacity (requests waiting for a worker).
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Head-sample 1 in N `infer` requests for per-request tracing
    /// (deterministic on the admission counter; 0 disables).
    pub trace_sample: u64,
    /// Tail capture: retain the trace of any request whose service time
    /// exceeds this many milliseconds, sampled or not.
    pub slow_trace_ms: Option<u64>,
    /// Capacity of the retained-trace ring served by the `trace` verb.
    pub trace_buffer: usize,
    /// Solve prefix-sharing queries through warm incremental sessions
    /// (`--incremental`). Speed only — served ψ is identical either way.
    pub incremental: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            queue_capacity: 64,
            default_deadline_ms: None,
            trace_sample: 0,
            slow_trace_ms: None,
            trace_buffer: 64,
            incremental: true,
        }
    }
}

/// Monotonic counters for the `stats` verb.
#[derive(Debug, Default)]
pub struct Counters {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub infers_ok: AtomicU64,
    pub infer_errors: AtomicU64,
    pub overloaded: AtomicU64,
    pub timed_out: AtomicU64,
    pub bad_requests: AtomicU64,
}

/// Server-side latency histograms: one per verb, plus `queue_wait`
/// (admission → dequeue) so time spent waiting for a worker is attributed
/// separately from service time.
#[derive(Debug, Default)]
pub struct ServerLatency {
    pub infer: Histogram,
    pub stats: Histogram,
    pub ping: Histogram,
    pub metrics: Histogram,
    pub trace: Histogram,
    pub queue_wait: Histogram,
}

/// One admitted unit of work.
struct Job {
    /// Monotonic 1-based admission id (assigned in [`submit_infer`]).
    request_id: u64,
    id: Option<String>,
    request: InferRequest,
    deadline: Deadline,
    admitted_at: Instant,
    reply: mpsc::Sender<String>,
}

/// State shared by every thread. The observable pieces (`queue`,
/// `counters`, `latency`, `trace`, `tiers`, `ring`) are individually
/// `Arc`'d so the metrics registry's scrape closures can capture them
/// without holding the whole `Shared` (which owns the registry — a cycle).
struct Shared {
    shutdown: AtomicBool,
    /// Set by the acceptor once every connection thread has exited; the
    /// workers wait for it so that a request admitted in the instant the
    /// shutdown flag flips is still drained, not orphaned.
    conns_done: AtomicBool,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<SolverCache>,
    counters: Arc<Counters>,
    latency: Arc<ServerLatency>,
    /// Aggregate pipeline-stage histograms shared by every worker. Served
    /// by the `stats` verb. Sampled requests run on their own recording
    /// sink which is absorbed here on completion, so these lifetime
    /// histograms stay complete regardless of sampling.
    trace: Arc<obs::TraceSink>,
    /// Which solver tier answered each executed query, summed across all
    /// workers for the daemon's lifetime. Served by the `stats` verb.
    tiers: Arc<TierCounters>,
    /// Retained per-request traces, served by the `trace` verb.
    ring: Arc<TraceRing>,
    /// Incremental-session policy + counters shared by every worker.
    /// Served by the `stats` verb and the metrics registry.
    incremental: IncrementalPolicy,
    /// Deterministic per-request sampling policy (fixed at startup).
    sampling: SamplingPolicy,
    /// Unified metrics, served by the `metrics` verb.
    registry: Arc<MetricsRegistry>,
    /// Admission counter: ids are 1-based, assigned in [`submit_infer`].
    next_request_id: AtomicU64,
    started: Instant,
    default_deadline_ms: Option<u64>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A cloneable trigger for graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop admitting, drain, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let started = Instant::now();
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let cache = Arc::new(SolverCache::new());
        let counters = Arc::new(Counters::default());
        let latency = Arc::new(ServerLatency::default());
        let trace = Arc::new(obs::TraceSink::aggregate());
        let tiers = Arc::new(TierCounters::default());
        let ring = Arc::new(TraceRing::new(cfg.trace_buffer));
        let incremental = IncrementalPolicy {
            enabled: cfg.incremental,
            stats: Arc::new(IncrementalCounters::default()),
        };
        let registry = Arc::new(MetricsRegistry::new());
        register_metrics(
            &registry,
            &cache,
            &tiers,
            &counters,
            &latency,
            &trace,
            &queue,
            &ring,
            &incremental.stats,
            started,
        );
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            conns_done: AtomicBool::new(false),
            queue,
            cache,
            counters,
            latency,
            trace,
            tiers,
            ring,
            incremental,
            sampling: SamplingPolicy {
                sample: cfg.trace_sample,
                slow_threshold: cfg.slow_trace_ms.map(Duration::from_millis),
            },
            registry,
            next_request_id: AtomicU64::new(0),
            started,
            default_deadline_ms: cfg.default_deadline_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        Ok(Server { shared, local_addr, acceptor, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown trigger usable from signal handlers and tests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The shared solver cache (exposed for tests and diagnostics).
    pub fn cache(&self) -> Arc<SolverCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Blocks until the daemon has fully drained and every thread exited.
    /// Call [`ServerHandle::shutdown`] (or deliver SIGTERM to the binary)
    /// first, or this never returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

// ---- acceptor ---------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let _ = connection_loop(stream, &shared);
                });
                let mut guard = conns.lock().expect("conns lock");
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_PERIOD),
            Err(_) => std::thread::sleep(POLL_PERIOD),
        }
    }
    // Final sweep: connections the kernel already completed in the accept
    // backlog get a thread too — they will be answered with typed
    // `shutting_down` errors rather than a connection reset.
    while let Ok((stream, _)) = listener.accept() {
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared);
        });
        conns.lock().expect("conns lock").push(handle);
    }
    // Drain: wait for every connection thread (each observes the flag
    // within one read timeout and finishes its in-flight request first).
    let handles = std::mem::take(&mut *conns.lock().expect("conns lock"));
    for h in handles {
        let _ = h.join();
    }
    shared.conns_done.store(true, Ordering::SeqCst);
}

// ---- connection handling ----------------------------------------------------

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        let payload = match protocol::read_frame(&mut reader) {
            Ok(p) => p,
            Err(FrameError::Idle) => {
                if shared.shutting_down() {
                    return Ok(()); // idle connection at shutdown: close
                }
                continue;
            }
            Err(FrameError::Eof) => return Ok(()),
            Err(FrameError::TooLarge(n)) => {
                // The stream cannot be resynchronized: typed error, close.
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame length {n} outside 1..={MAX_FRAME_LEN}");
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::FrameTooLarge, &msg),
                );
                return Ok(());
            }
            Err(FrameError::Truncated) | Err(FrameError::NotUtf8) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, "malformed frame"),
                );
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()),
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        match protocol::parse_request(&payload) {
            Ok(Request::Ping { id }) => {
                let resp = crate::json::ObjBuilder::new()
                    .bool("ok", true)
                    .opt_str("id", id.as_deref())
                    .str("verb", "ping")
                    .build();
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.ping.record(started.elapsed());
            }
            Ok(Request::Stats { id }) => {
                let resp = render_stats_response(id.as_deref(), shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.stats.record(started.elapsed());
            }
            Ok(Request::Metrics { id }) => {
                let resp = render_metrics_response(id.as_deref(), shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.metrics.record(started.elapsed());
            }
            Ok(Request::Trace { id, select }) => {
                let resp = render_trace_response(id.as_deref(), &select, shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.trace.record(started.elapsed());
            }
            Ok(Request::Infer { id, infer }) => {
                let resp = submit_infer(id, infer, shared);
                protocol::write_frame(&mut writer, &resp)?;
                shared.latency.infer.record(started.elapsed());
            }
            Err(reason) => {
                // Parseable framing, unparseable payload: answer and keep
                // the connection (the stream is still in sync).
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                protocol::write_frame(
                    &mut writer,
                    &render_error(None, ErrorCode::BadRequest, &reason),
                )?;
            }
        }
    }
}

/// Admits an `infer` request and waits for its worker reply.
fn submit_infer(id: Option<String>, request: InferRequest, shared: &Arc<Shared>) -> String {
    if shared.shutting_down() {
        return render_error(id.as_deref(), ErrorCode::ShuttingDown, "daemon is draining");
    }
    let deadline_ms = request.deadline_ms.or(shared.default_deadline_ms);
    let deadline = deadline_ms.map(Deadline::after_ms).unwrap_or_default();
    // The admission id is assigned before the push so the job carries it;
    // a rejected (overloaded) request therefore consumes an id too.
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request_id,
        id: id.clone(),
        request,
        deadline,
        admitted_at: Instant::now(),
        reply: tx,
    };
    if shared.queue.try_push(job).is_err() {
        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        return render_error(
            id.as_deref(),
            ErrorCode::Overloaded,
            &format!("admission queue full ({} slots)", shared.queue.capacity()),
        );
    }
    // The worker always replies, including during drain; a closed channel
    // means the pool died, which is itself a typed error.
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => render_error(id.as_deref(), ErrorCode::Internal, "worker pool unavailable"),
    }
}

fn render_stats_response(id: Option<&str>, shared: &Shared) -> String {
    use crate::json::ObjBuilder;
    let cache = shared.cache.stats();
    let c = &shared.counters;
    let verb = |h: &Histogram| {
        let (p50, p90, p99) = h.percentiles_us();
        ObjBuilder::new()
            .u64("count", h.count())
            .u64("mean_us", h.mean_us())
            .u64("p50_us", p50)
            .u64("p90_us", p90)
            .u64("p99_us", p99)
            .build()
    };
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "stats")
        .raw(
            "cache",
            ObjBuilder::new()
                .u64("hits", cache.hits)
                .u64("misses", cache.misses)
                .u64("entries", cache.entries)
                .u64("evictions", cache.evictions)
                .u64("evicted_entries", cache.evicted_entries)
                .f64("hit_rate", cache.hit_rate())
                .build(),
        )
        .raw("solver_tiers", {
            let t = shared.tiers.snapshot();
            ObjBuilder::new()
                .u64("answered_by_syntactic", t.answered_by_syntactic)
                .u64("answered_by_interval", t.answered_by_interval)
                .u64("answered_by_simplex", t.answered_by_simplex)
                .u64("escalations", t.escalations)
                .f64("tier1_rate", t.tier1_rate())
                .build()
        })
        .raw("solver_incremental", {
            let i = shared.incremental.stats.snapshot();
            ObjBuilder::new()
                .bool("enabled", shared.incremental.enabled)
                .u64("sessions", i.sessions)
                .u64("queries", i.queries)
                .u64("pushes", i.pushes)
                .u64("pops", i.pops)
                .u64("reused_depth_sum", i.reused_depth_sum)
                .f64("avg_reused_depth", i.avg_reused_depth())
                .build()
        })
        .raw("stages", {
            let mut b = ObjBuilder::new();
            for (stage, snap) in shared.trace.stages() {
                b = b.raw(
                    stage.label(),
                    ObjBuilder::new()
                        .u64("count", snap.count)
                        .u64("total_us", snap.total_us)
                        .u64("mean_us", snap.mean_us)
                        .u64("p50_us", snap.p50_us)
                        .u64("p90_us", snap.p90_us)
                        .u64("p99_us", snap.p99_us)
                        .build(),
                );
            }
            b.build()
        })
        .raw(
            "counters",
            ObjBuilder::new()
                .u64("connections", c.connections.load(Ordering::Relaxed))
                .u64("requests", c.requests.load(Ordering::Relaxed))
                .u64("infers_ok", c.infers_ok.load(Ordering::Relaxed))
                .u64("infer_errors", c.infer_errors.load(Ordering::Relaxed))
                .u64("overloaded", c.overloaded.load(Ordering::Relaxed))
                .u64("timed_out", c.timed_out.load(Ordering::Relaxed))
                .u64("bad_requests", c.bad_requests.load(Ordering::Relaxed))
                .u64("queue_depth", shared.queue.len() as u64)
                .u64("queue_capacity", shared.queue.capacity() as u64)
                .u64("uptime_s", shared.started.elapsed().as_secs())
                .build(),
        )
        .raw(
            "latency",
            ObjBuilder::new()
                .raw("infer", verb(&shared.latency.infer))
                .raw("stats", verb(&shared.latency.stats))
                .raw("ping", verb(&shared.latency.ping))
                .raw("metrics", verb(&shared.latency.metrics))
                .raw("trace", verb(&shared.latency.trace))
                .raw("queue_wait", verb(&shared.latency.queue_wait))
                .build(),
        )
        .raw("traces", {
            let (head, slow, evicted) = shared.ring.counters();
            ObjBuilder::new()
                .u64("sample", shared.sampling.sample)
                .u64("buffered", shared.ring.len() as u64)
                .u64("retained_head", head)
                .u64("retained_slow", slow)
                .u64("evicted", evicted)
                .build()
        })
        .build()
}

/// Renders the `metrics` verb: the registry's Prometheus text exposition,
/// carried as a JSON string field so the frame stays a JSON object.
fn render_metrics_response(id: Option<&str>, shared: &Shared) -> String {
    crate::json::ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "metrics")
        .str("content_type", "text/plain; version=0.0.4")
        .str("text", &shared.registry.render_prometheus())
        .build()
}

/// Renders the `trace` verb: retained traces (newest first for `last`),
/// each with its recorded events inlined as a JSON array.
fn render_trace_response(id: Option<&str>, select: &TraceSelect, shared: &Shared) -> String {
    use crate::json::ObjBuilder;
    let traces = match select {
        TraceSelect::Last(k) => shared.ring.last(usize::try_from(*k).unwrap_or(usize::MAX)),
        TraceSelect::ById(rid) => shared.ring.by_request_id(*rid).into_iter().collect(),
    };
    let rendered: Vec<String> = traces
        .iter()
        .map(|t| {
            ObjBuilder::new()
                .u64("request_id", t.request_id)
                .str("func", &t.func)
                .str("reason", t.reason.label())
                .u64("queue_us", t.queue_us)
                .u64("service_us", t.service_us)
                .arr("events", t.lines.clone())
                .build()
        })
        .collect();
    ObjBuilder::new()
        .bool("ok", true)
        .opt_str("id", id)
        .str("verb", "trace")
        .u64("buffered", shared.ring.len() as u64)
        .arr("traces", rendered)
        .build()
}

// ---- workers ----------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(job) = shared.queue.pop_timeout(POLL_PERIOD) else {
            // Exit only after every connection thread has gone: a request
            // admitted in the same instant the flag flipped still drains.
            if shared.shutting_down()
                && shared.conns_done.load(Ordering::SeqCst)
                && shared.queue.is_empty()
            {
                return;
            }
            continue;
        };
        let dequeued = Instant::now();
        let queue_wait = dequeued.duration_since(job.admitted_at);
        shared.latency.queue_wait.record(queue_wait);
        let queue_ms = queue_wait.as_secs_f64() * 1e3;
        // Sampled requests (and all requests under a slow threshold) run
        // on a private recording sink; everyone else shares the aggregate.
        // Recording is observation-only — the trace-neutrality tests prove
        // served ψ identical either way.
        let recording = shared.sampling.record(job.request_id);
        let sink = if recording {
            Arc::new(obs::TraceSink::recording())
        } else {
            Arc::clone(&shared.trace)
        };
        let trace = Some(Arc::clone(&sink));
        let result = service::run_infer(
            &job.request,
            &shared.cache,
            &job.deadline,
            &trace,
            &shared.tiers,
            &shared.incremental,
        );
        let service_time = dequeued.elapsed();
        let (response, func) = match result {
            Ok(outcome) => {
                shared.counters.infers_ok.fetch_add(1, Ordering::Relaxed);
                if outcome.timed_out {
                    shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                let resp = service::render_infer_response(
                    job.id.as_deref(),
                    job.request_id,
                    &outcome,
                    queue_ms,
                    &shared.cache,
                );
                (resp, outcome.func)
            }
            Err(e) => {
                shared.counters.infer_errors.fetch_add(1, Ordering::Relaxed);
                let func = job.request.func.clone().unwrap_or_default();
                (render_error(job.id.as_deref(), e.code, &e.message), func)
            }
        };
        if recording {
            let queue_us = queue_wait.as_micros().min(u64::MAX as u128) as u64;
            let service_us = service_time.as_micros().min(u64::MAX as u128) as u64;
            // Trailing request summary so an exported trace is
            // self-describing (preinfer-trace reads it as the wall clock).
            sink.event(
                "run",
                &[
                    ("request_id", obs::Val::U(job.request_id)),
                    ("func", obs::Val::S(&func)),
                    ("dur_us", obs::Val::U(service_us)),
                    ("queue_us", obs::Val::U(queue_us)),
                ],
            );
            // Fold the private sink's stage histograms into the daemon
            // aggregate so `stats`/`metrics` stay complete under sampling.
            shared.trace.absorb(&sink);
            if let Some(reason) = shared.sampling.retain(job.request_id, service_time) {
                shared.ring.push(StoredTrace {
                    request_id: job.request_id,
                    func,
                    reason,
                    queue_us,
                    service_us,
                    lines: sink.lines(),
                });
            }
        }
        // The connection thread may have vanished (client hung up); the
        // work is simply discarded then.
        let _ = job.reply.send(response);
    }
}

/// Registers every observable the daemon owns into the unified registry.
/// Closures capture individual `Arc`s (never `Shared`, which owns the
/// registry) and read their atomics at scrape time — zero hot-path cost.
#[allow(clippy::too_many_arguments)]
fn register_metrics(
    reg: &MetricsRegistry,
    cache: &Arc<SolverCache>,
    tiers: &Arc<TierCounters>,
    counters: &Arc<Counters>,
    latency: &Arc<ServerLatency>,
    trace: &Arc<obs::TraceSink>,
    queue: &Arc<BoundedQueue<Job>>,
    ring: &Arc<TraceRing>,
    incremental: &Arc<IncrementalCounters>,
    started: Instant,
) {
    reg.gauge("preinfer_uptime_seconds", "Seconds since the daemon started.", &[], move || {
        started.elapsed().as_secs_f64()
    });
    let q = Arc::clone(queue);
    reg.gauge("preinfer_queue_depth", "Requests waiting for a worker.", &[], move || {
        q.len() as f64
    });
    let q = Arc::clone(queue);
    reg.gauge("preinfer_queue_capacity", "Admission queue capacity.", &[], move || {
        q.capacity() as f64
    });

    let c = Arc::clone(counters);
    reg.counter("preinfer_connections_total", "Accepted TCP connections.", &[], move || {
        c.connections.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter("preinfer_requests_total", "Parsed request frames.", &[], move || {
        c.requests.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_bad_requests_total",
        "Malformed or unparseable requests.",
        &[],
        move || c.bad_requests.load(Ordering::Relaxed),
    );
    const INFER_HELP: &str = "Completed infer requests by result.";
    let c = Arc::clone(counters);
    reg.counter("preinfer_infer_results_total", INFER_HELP, &[("result", "ok")], move || {
        c.infers_ok.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter("preinfer_infer_results_total", INFER_HELP, &[("result", "error")], move || {
        c.infer_errors.load(Ordering::Relaxed)
    });
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_infer_results_total",
        INFER_HELP,
        &[("result", "overloaded")],
        move || c.overloaded.load(Ordering::Relaxed),
    );
    let c = Arc::clone(counters);
    reg.counter(
        "preinfer_infer_results_total",
        INFER_HELP,
        &[("result", "timed_out")],
        move || c.timed_out.load(Ordering::Relaxed),
    );

    const LOOKUP_HELP: &str = "Solver cache lookups by result.";
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_lookups_total", LOOKUP_HELP, &[("result", "hit")], move || {
        ca.stats().hits
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_lookups_total", LOOKUP_HELP, &[("result", "miss")], move || {
        ca.stats().misses
    });
    let ca = Arc::clone(cache);
    reg.gauge("preinfer_cache_entries", "Entries resident in the solver cache.", &[], move || {
        ca.stats().entries as f64
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_eviction_sweeps_total", "Cache eviction sweeps.", &[], move || {
        ca.stats().evictions
    });
    let ca = Arc::clone(cache);
    reg.counter("preinfer_cache_evicted_entries_total", "Entries evicted.", &[], move || {
        ca.stats().evicted_entries
    });

    const TIER_HELP: &str = "Solver queries answered, by deciding tier.";
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "syntactic")],
        move || t.snapshot().answered_by_syntactic,
    );
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "interval")],
        move || t.snapshot().answered_by_interval,
    );
    let t = Arc::clone(tiers);
    reg.counter(
        "preinfer_solver_tier_answers_total",
        TIER_HELP,
        &[("tier", "simplex")],
        move || t.snapshot().answered_by_simplex,
    );
    let t = Arc::clone(tiers);
    reg.counter("preinfer_solver_escalations_total", "Tier escalations.", &[], move || {
        t.snapshot().escalations
    });

    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_sessions_total",
        "Warm incremental solver sessions opened.",
        &[],
        move || i.snapshot().sessions,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_queries_total",
        "Solver queries answered through an incremental session.",
        &[],
        move || i.snapshot().queries,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_pushes_total",
        "Predicates pushed onto incremental session stacks.",
        &[],
        move || i.snapshot().pushes,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_pops_total",
        "Incremental session stack rewinds.",
        &[],
        move || i.snapshot().pops,
    );
    let i = Arc::clone(incremental);
    reg.counter(
        "preinfer_solver_incremental_reused_depth_total",
        "Stacked predicates reused across incremental queries (sum).",
        &[],
        move || i.snapshot().reused_depth_sum,
    );

    for stage in obs::Stage::ALL {
        let tr = Arc::clone(trace);
        reg.histogram(
            "preinfer_stage_duration_us",
            "Pipeline stage wall-clock, microseconds.",
            &[("stage", stage.label())],
            move || tr.stage_histogram(stage).snapshot(),
        );
    }
    type VerbSelector = fn(&ServerLatency) -> &Histogram;
    let verbs: [(&str, VerbSelector); 5] = [
        ("infer", |l| &l.infer),
        ("stats", |l| &l.stats),
        ("ping", |l| &l.ping),
        ("metrics", |l| &l.metrics),
        ("trace", |l| &l.trace),
    ];
    for (verb, sel) in verbs {
        let l = Arc::clone(latency);
        reg.histogram(
            "preinfer_request_duration_us",
            "Request service latency by verb, microseconds.",
            &[("verb", verb)],
            move || sel(&l).snapshot(),
        );
    }
    let l = Arc::clone(latency);
    reg.histogram(
        "preinfer_queue_wait_us",
        "Admission-to-dequeue wait, microseconds.",
        &[],
        move || l.queue_wait.snapshot(),
    );

    const RETAIN_HELP: &str = "Per-request traces retained, by reason.";
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "head")], move || {
        r.counters().0
    });
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_retained_total", RETAIN_HELP, &[("reason", "slow")], move || {
        r.counters().1
    });
    let r = Arc::clone(ring);
    reg.counter("preinfer_traces_evicted_total", "Traces evicted from the ring.", &[], move || {
        r.counters().2
    });
    let r = Arc::clone(ring);
    reg.gauge("preinfer_trace_buffer_entries", "Traces currently retained.", &[], move || {
        r.len() as f64
    });
}
