//! The bounded admission queue.
//!
//! Admission control is the daemon's backpressure mechanism: a request
//! either gets a queue slot *at admission time* or is rejected immediately
//! with a typed `overloaded` response. Nothing in the daemon buffers
//! unboundedly — memory for queued work is `capacity × request size`, and
//! clients learn about saturation synchronously instead of via timeouts.
//!
//! `Mutex<VecDeque> + Condvar` rather than a channel: `try_push` must fail
//! *without blocking* when full (std's `SyncSender::try_send` would also
//! work, but it cannot report queue depth, which `stats` exposes).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bounded MPMC queue with non-blocking admission and timed removal.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: Mutex<VecDeque<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` if a slot is free; returns it back on a full queue.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock().expect("queue lock");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Removes the oldest item, waiting up to `timeout` for one to arrive.
    /// `None` on timeout — callers poll their shutdown flag and re-enter.
    ///
    /// The wait is against an absolute deadline: a wakeup that finds the
    /// queue still empty (another consumer won the race, or the condvar
    /// woke spuriously) re-waits only for the *remaining* time, so
    /// repeated wakeups can never stretch the total wait beyond `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut q = self.items.lock().expect("queue lock");
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _res) = self.ready.wait_timeout(q, deadline - now).expect("queue lock");
            q = guard;
        }
    }

    /// Removes the oldest item without waiting (used while draining).
    pub fn try_pop(&self) -> Option<T> {
        self.items.lock().expect("queue lock").pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.lock().expect("queue lock").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_frees_on_pop() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue returns the item");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed");
    }

    #[test]
    fn pop_timeout_returns_none_when_starved() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn producers_wake_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    /// Regression: `pop_timeout` used to restart the full timeout after
    /// every wakeup that found the queue empty, so a stream of wakeups
    /// (another consumer winning the race, or spurious condvar wakeups)
    /// could postpone the deadline indefinitely. The wait must be against
    /// an absolute deadline.
    #[test]
    fn wakeups_without_items_do_not_extend_the_deadline() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Hammer the condvar with empty wakeups every few milliseconds —
        // far more often than the 120 ms timeout.
        let waker = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    q.ready.notify_all();
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        };
        let started = std::time::Instant::now();
        let got = q.pop_timeout(Duration::from_millis(120));
        let elapsed = started.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        waker.join().unwrap();
        assert_eq!(got, None);
        assert!(elapsed >= Duration::from_millis(100), "returned early: {elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(2_000),
            "deadline drifted under repeated wakeups: {elapsed:?}"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
