//! The bounded admission queue.
//!
//! Admission control is the daemon's backpressure mechanism: a request
//! either gets a queue slot *at admission time* or is rejected immediately
//! with a typed `overloaded` response. Nothing in the daemon buffers
//! unboundedly — memory for queued work is `capacity × request size`, and
//! clients learn about saturation synchronously instead of via timeouts.
//!
//! `Mutex<VecDeque> + Condvar` rather than a channel: `try_push` must fail
//! *without blocking* when full (std's `SyncSender::try_send` would also
//! work, but it cannot report queue depth, which `stats` exposes).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded MPMC queue with non-blocking admission and timed removal.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: Mutex<VecDeque<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` if a slot is free; returns it back on a full queue.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock().expect("queue lock");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Removes the oldest item, waiting up to `timeout` for one to arrive.
    /// `None` on timeout — callers poll their shutdown flag and re-enter.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.items.lock().expect("queue lock");
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            let (guard, res) = self.ready.wait_timeout(q, timeout).expect("queue lock");
            q = guard;
            if res.timed_out() {
                return q.pop_front();
            }
        }
    }

    /// Removes the oldest item without waiting (used while draining).
    pub fn try_pop(&self) -> Option<T> {
        self.items.lock().expect("queue lock").pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.lock().expect("queue lock").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_frees_on_pop() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue returns the item");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed");
    }

    #[test]
    fn pop_timeout_returns_none_when_starved() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn producers_wake_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
