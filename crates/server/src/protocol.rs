//! The `preinferd` wire protocol: length-prefixed JSON frames.
//!
//! Every frame is a 4-byte big-endian length `N` followed by exactly `N`
//! bytes of UTF-8 JSON (one object per frame). `N` must be between 1 and
//! [`MAX_FRAME_LEN`]; anything else is a framing error and the peer closes
//! the connection after a typed error response, because the stream can no
//! longer be resynchronized. The full request/response shapes are
//! documented in `PROTOCOL.md` at the repository root.

use crate::json::{self, Json, ObjBuilder};
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload (16 MiB). Large enough for any
/// MiniLang program plus slack, small enough to bound per-connection
/// memory against hostile length prefixes.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary — the peer is done.
    Eof,
    /// Read timed out while *waiting* for a frame to start (no bytes of
    /// the length prefix arrived). The connection is still in sync; the
    /// caller typically polls its shutdown flag and retries.
    Idle,
    /// The declared length is zero or exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The stream ended or timed out mid-frame; the framing is lost.
    Truncated,
    /// The payload is not UTF-8.
    NotUtf8,
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Idle => write!(f, "idle (no frame started)"),
            FrameError::TooLarge(n) => {
                write!(f, "declared frame length {n} outside 1..={MAX_FRAME_LEN}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads exactly `buf.len()` bytes, treating timeouts as truncation once
/// `started` (at least one byte already consumed) and as [`FrameError::Idle`]
/// otherwise. Interrupted reads are retried.
fn read_exact_frame(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if started { FrameError::Truncated } else { FrameError::Eof });
            }
            Ok(n) => {
                filled += n;
                started = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return Err(if started { FrameError::Truncated } else { FrameError::Idle });
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning its JSON payload as a string.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_frame(r, &mut prefix, false)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_frame(r, &mut payload, true)?;
    String::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(!bytes.is_empty() && bytes.len() <= MAX_FRAME_LEN);
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

// ---- requests ---------------------------------------------------------------

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    Ping {
        id: Option<String>,
    },
    Stats {
        id: Option<String>,
    },
    /// Prometheus text-format exposition of the unified metrics registry.
    Metrics {
        id: Option<String>,
    },
    /// Retained request traces from the sampling ring.
    Trace {
        id: Option<String>,
        select: TraceSelect,
    },
    Infer {
        id: Option<String>,
        infer: InferRequest,
    },
}

/// Which retained traces a `trace` request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSelect {
    /// The `k` most recent traces, newest first (default `1`).
    Last(u64),
    /// The trace of one request id, if still retained.
    ById(u64),
    /// The trace of one distributed trace id (128-bit hex), if retained.
    /// On a router this fans out and returns the *stitched* multi-process
    /// trace.
    ByTraceId(String),
}

/// A distributed trace context carried on an `infer` frame. The outermost
/// tier (the router, or a client driving a daemon directly) mints the
/// 128-bit `trace_id` and decides sampling; every process downstream
/// honors that decision instead of its own head/tail sampling policy, and
/// stamps its recorded spans with the shared id so the per-process traces
/// are joinable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id as exactly 32 hex digits.
    pub trace_id: String,
    /// The minting process's span id this process's work nests under
    /// (e.g. the router's `upstream_rtt` span).
    pub parent_span_id: Option<u64>,
    /// Whether the minting tier chose to record this request. `false`
    /// suppresses local head sampling too — at most one tier decides.
    pub sampled: bool,
}

/// `true` iff `s` is a well-formed 128-bit hex trace id.
pub fn valid_trace_id(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// The `infer` verb's payload.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// Full MiniLang source text.
    pub program: String,
    /// Entry function; defaults to the program's first function.
    pub func: Option<String>,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// `TestGenConfig::max_runs` override.
    pub tests: Option<usize>,
    /// Worker threads for per-ACL inference inside this request.
    pub jobs: usize,
    /// Distributed trace context minted upstream, if any.
    pub trace: Option<TraceContext>,
}

/// Typed error codes (`PROTOCOL.md`, "Error codes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its JSON payload could not be understood.
    BadRequest,
    /// The declared frame length was out of range.
    FrameTooLarge,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
    /// The submitted program failed to compile.
    CompileError,
    /// The daemon dropped the request internally (worker died).
    Internal,
    /// The connection sat idle past the per-connection deadline and is
    /// being closed.
    IdleTimeout,
    /// The router could not reach the shard this request routes to.
    UpstreamUnavailable,
}

impl ErrorCode {
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::CompileError => "compile_error",
            ErrorCode::Internal => "internal",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::UpstreamUnavailable => "upstream_unavailable",
        }
    }
}

/// Parses a request payload. `Err` carries a human-readable reason for the
/// `bad_request` response.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let v = json::parse(payload).map_err(|e| e.to_string())?;
    let id = v.str_field("id").map(str::to_string);
    match v.str_field("verb") {
        Some("ping") => Ok(Request::Ping { id }),
        Some("stats") => Ok(Request::Stats { id }),
        Some("metrics") => Ok(Request::Metrics { id }),
        Some("trace") => {
            let request_id = match v.get("request_id") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_u64()
                        .ok_or_else(|| "`request_id` must be a non-negative integer".to_string())?,
                ),
            };
            let last = match v.get("last") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_u64()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "`last` must be a positive integer".to_string())?,
                ),
            };
            let trace_id = match v.get("trace_id") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_str()
                        .filter(|s| valid_trace_id(s))
                        .map(str::to_string)
                        .ok_or_else(|| "`trace_id` must be 32 hex digits".to_string())?,
                ),
            };
            let select = match (request_id, last, trace_id) {
                (None, None, Some(tid)) => TraceSelect::ByTraceId(tid),
                (Some(rid), None, None) => TraceSelect::ById(rid),
                (None, k, None) => TraceSelect::Last(k.unwrap_or(1)),
                _ => {
                    return Err(
                        "`trace` takes one of `last`, `request_id` or `trace_id`".to_string()
                    )
                }
            };
            Ok(Request::Trace { id, select })
        }
        Some("infer") => {
            let program = v
                .str_field("program")
                .ok_or_else(|| "infer requires a string `program` field".to_string())?
                .to_string();
            let func = v.str_field("func").map(str::to_string);
            let deadline_ms =
                match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(j.as_u64().ok_or_else(|| {
                        "`deadline_ms` must be a non-negative integer".to_string()
                    })?),
                };
            let tests = match v.get("tests") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_u64()
                        .ok_or_else(|| "`tests` must be a non-negative integer".to_string())?
                        as usize,
                ),
            };
            let jobs = match v.get("jobs") {
                None | Some(Json::Null) => 1,
                Some(j) => j
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "`jobs` must be a positive integer".to_string())?
                    as usize,
            };
            let trace = match v.get("trace") {
                None | Some(Json::Null) => None,
                Some(t) => {
                    let trace_id = t
                        .str_field("trace_id")
                        .filter(|s| valid_trace_id(s))
                        .ok_or_else(|| "`trace.trace_id` must be 32 hex digits".to_string())?
                        .to_string();
                    let parent_span_id = match t.get("parent_span_id") {
                        None | Some(Json::Null) => None,
                        Some(j) => Some(j.as_u64().ok_or_else(|| {
                            "`trace.parent_span_id` must be a non-negative integer".to_string()
                        })?),
                    };
                    let sampled = match t.get("sampled") {
                        None | Some(Json::Null) => true,
                        Some(j) => j
                            .as_bool()
                            .ok_or_else(|| "`trace.sampled` must be a boolean".to_string())?,
                    };
                    Some(TraceContext { trace_id, parent_span_id, sampled })
                }
            };
            Ok(Request::Infer {
                id,
                infer: InferRequest { program, func, deadline_ms, tests, jobs, trace },
            })
        }
        Some(other) => Err(format!("unknown verb `{other}`")),
        None => Err("missing string `verb` field".to_string()),
    }
}

// ---- request rendering (client side) ---------------------------------------

/// Renders a `ping` request.
pub fn render_ping(id: Option<&str>) -> String {
    ObjBuilder::new().str("verb", "ping").opt_str("id", id).build()
}

/// Renders a `stats` request.
pub fn render_stats(id: Option<&str>) -> String {
    ObjBuilder::new().str("verb", "stats").opt_str("id", id).build()
}

/// Renders a `metrics` request.
pub fn render_metrics(id: Option<&str>) -> String {
    ObjBuilder::new().str("verb", "metrics").opt_str("id", id).build()
}

/// Renders a `trace` request.
pub fn render_trace(id: Option<&str>, select: &TraceSelect) -> String {
    let b = ObjBuilder::new().str("verb", "trace").opt_str("id", id);
    match select {
        TraceSelect::Last(k) => b.u64("last", *k),
        TraceSelect::ById(rid) => b.u64("request_id", *rid),
        TraceSelect::ByTraceId(tid) => b.str("trace_id", tid),
    }
    .build()
}

/// Renders a trace context as a JSON object (the `trace` field of an
/// `infer` frame).
pub fn render_trace_context(ctx: &TraceContext) -> String {
    let mut b = ObjBuilder::new().str("trace_id", &ctx.trace_id);
    if let Some(p) = ctx.parent_span_id {
        b = b.u64("parent_span_id", p);
    }
    b.bool("sampled", ctx.sampled).build()
}

/// Renders an `infer` request.
pub fn render_infer(id: Option<&str>, req: &InferRequest) -> String {
    let mut b = ObjBuilder::new()
        .str("verb", "infer")
        .opt_str("id", id)
        .str("program", &req.program)
        .u64("jobs", req.jobs as u64);
    if let Some(f) = &req.func {
        b = b.str("func", f);
    }
    if let Some(ms) = req.deadline_ms {
        b = b.u64("deadline_ms", ms);
    }
    if let Some(t) = req.tests {
        b = b.u64("tests", t as u64);
    }
    if let Some(ctx) = &req.trace {
        b = b.raw("trace", render_trace_context(ctx));
    }
    b.build()
}

/// Renders a typed error response.
pub fn render_error(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    ObjBuilder::new()
        .bool("ok", false)
        .opt_str("id", id)
        .str("error", code.as_str())
        .str("message", message)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"verb\":\"ping\"}").unwrap();
        write_frame(&mut buf, "{\"verb\":\"stats\"}").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), "{\"verb\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap(), "{\"verb\":\"stats\"}");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge(n) if n == u32::MAX as usize));
    }

    #[test]
    fn zero_length_is_rejected() {
        let buf = 0u32.to_be_bytes().to_vec();
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::TooLarge(0))));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc"); // 3 of 10 declared bytes
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::Truncated)));
    }

    #[test]
    fn truncated_prefix_is_detected() {
        let buf = vec![0u8, 0u8]; // 2 of 4 prefix bytes
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::Truncated)));
    }

    #[test]
    fn non_utf8_payload_is_detected() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let req = InferRequest {
            program: "fn f(x int) -> int { return 1 / x; }".to_string(),
            func: Some("f".to_string()),
            deadline_ms: Some(250),
            tests: Some(40),
            jobs: 2,
            trace: None,
        };
        let Request::Infer { id, infer } = parse_request(&render_infer(Some("r1"), &req)).unwrap()
        else {
            panic!("wrong verb")
        };
        assert_eq!(id.as_deref(), Some("r1"));
        assert_eq!(infer.program, req.program);
        assert_eq!(infer.func, req.func);
        assert_eq!(infer.deadline_ms, Some(250));
        assert_eq!(infer.tests, Some(40));
        assert_eq!(infer.jobs, 2);
        assert_eq!(infer.trace, None);
        assert!(matches!(parse_request(&render_ping(None)).unwrap(), Request::Ping { id: None }));
        assert!(matches!(parse_request(&render_stats(None)).unwrap(), Request::Stats { .. }));
        assert!(matches!(parse_request(&render_metrics(None)).unwrap(), Request::Metrics { .. }));
    }

    #[test]
    fn trace_contexts_round_trip_on_infer_frames() {
        let ctx = TraceContext {
            trace_id: "00112233445566778899aabbccddeeff".to_string(),
            parent_span_id: Some(3),
            sampled: true,
        };
        let req = InferRequest {
            program: "fn f() -> int { return 1; }".to_string(),
            func: None,
            deadline_ms: None,
            tests: None,
            jobs: 1,
            trace: Some(ctx.clone()),
        };
        let Request::Infer { infer, .. } = parse_request(&render_infer(None, &req)).unwrap() else {
            panic!("wrong verb")
        };
        assert_eq!(infer.trace, Some(ctx));
        // `sampled: false` and an absent parent survive too.
        let req2 = InferRequest {
            trace: Some(TraceContext {
                trace_id: "00112233445566778899AABBCCDDEEFF".to_string(),
                parent_span_id: None,
                sampled: false,
            }),
            ..req
        };
        let Request::Infer { infer, .. } = parse_request(&render_infer(None, &req2)).unwrap()
        else {
            panic!("wrong verb")
        };
        let got = infer.trace.expect("context survives");
        assert_eq!(got.parent_span_id, None);
        assert!(!got.sampled);
        // Malformed contexts are rejected with a reason.
        for bad in [
            "{\"verb\":\"infer\",\"program\":\"fn\",\"trace\":{}}",
            "{\"verb\":\"infer\",\"program\":\"fn\",\"trace\":{\"trace_id\":\"zz\"}}",
            "{\"verb\":\"infer\",\"program\":\"fn\",\
             \"trace\":{\"trace_id\":\"00112233445566778899aabbccddeeff\",\"sampled\":3}}",
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn trace_requests_select_last_request_id_or_trace_id() {
        assert!(matches!(
            parse_request(&render_trace(None, &TraceSelect::Last(5))).unwrap(),
            Request::Trace { select: TraceSelect::Last(5), .. }
        ));
        assert!(matches!(
            parse_request(&render_trace(Some("t1"), &TraceSelect::ById(9))).unwrap(),
            Request::Trace { select: TraceSelect::ById(9), .. }
        ));
        let tid = "00112233445566778899aabbccddeeff".to_string();
        match parse_request(&render_trace(None, &TraceSelect::ByTraceId(tid.clone()))).unwrap() {
            Request::Trace { select: TraceSelect::ByTraceId(got), .. } => assert_eq!(got, tid),
            other => panic!("wrong parse: {other:?}"),
        }
        // Default selection: the most recent trace.
        assert!(matches!(
            parse_request("{\"verb\":\"trace\"}").unwrap(),
            Request::Trace { select: TraceSelect::Last(1), .. }
        ));
        for bad in [
            "{\"verb\":\"trace\",\"last\":0}",
            "{\"verb\":\"trace\",\"last\":-2}",
            "{\"verb\":\"trace\",\"request_id\":\"x\"}",
            "{\"verb\":\"trace\",\"last\":1,\"request_id\":1}",
            "{\"verb\":\"trace\",\"trace_id\":\"tooshort\"}",
            "{\"verb\":\"trace\",\"request_id\":1,\
             \"trace_id\":\"00112233445566778899aabbccddeeff\"}",
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "[]",
            "{}",
            "{\"verb\":\"nope\"}",
            "{\"verb\":\"infer\"}",
            "{\"verb\":\"infer\",\"program\":7}",
            "{\"verb\":\"infer\",\"program\":\"fn\",\"jobs\":0}",
            "{\"verb\":\"infer\",\"program\":\"fn\",\"deadline_ms\":-4}",
            "not json",
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad}");
        }
    }
}
