//! The daemon's event-driven connection core (`preinferd --io epoll`).
//!
//! One thread runs an epoll loop ([`netcore::Poller`]) that drives the
//! listener, every client connection, and an eventfd [`netcore::Waker`]:
//!
//! * **Accept**: non-blocking accept bursts; each connection becomes a
//!   [`FramedConn`] registered with read interest.
//! * **Read**: readiness drains the socket and decodes every complete
//!   frame ([`FramedConn::read_frames`]); each frame is dispatched — verbs
//!   other than `infer` answer inline, `infer` goes through the shared
//!   admission path ([`server::start_infer`]): drain check, memo lookup
//!   (hits answer inline with no worker hop), then bounded admission with
//!   [`ReplyTo::Event`]. Connections pipeline freely: many frames may be
//!   in flight at once and responses are written in completion order (the
//!   client matches them by `request_id`/`id`, see PROTOCOL.md).
//! * **Completions**: workers push finished responses onto the
//!   [`Completions`] queue and wake the loop, which routes each response
//!   to its connection token (dropped silently if the client vanished).
//! * **Write**: responses queue into the connection's write buffer;
//!   whatever the socket refuses stays buffered under `EPOLLOUT`
//!   interest. A peer that stops reading (backlog past
//!   [`WRITE_BACKPRESSURE_BYTES`]) or floods requests (in-flight past
//!   [`MAX_CONN_IN_FLIGHT`]) has its read interest dropped until the
//!   pressure clears.
//! * **Idle sweep**: every [`SWEEP`] the loop closes connections that
//!   have been silent past the configured idle deadline and have no
//!   in-flight work, with a typed `idle_timeout` response.
//! * **Drain**: on shutdown the loop does a final accept sweep (backlog
//!   connections get typed `shutting_down` answers, as in the threaded
//!   core), stops accepting, keeps serving until each connection has zero
//!   in-flight work and an empty write buffer, then closes it. When the
//!   last connection closes it sets `conns_done`, releasing the workers.

use crate::netcore::{ConnError, FramedConn, Interest, Poller, Waker, WRITE_BACKPRESSURE_BYTES};
use crate::protocol::{self, render_error, ErrorCode, Request};
use crate::server::{self, InferDisposition, ReplyTo, Shared};
use std::collections::HashMap;
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Reserved poller tokens.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Idle-deadline sweep period (also the `epoll_wait` timeout, so the loop
/// observes the shutdown flag at least this often even without a wake).
const SWEEP_MS: i32 = 100;

/// Per-connection in-flight ceiling: past this the connection's read
/// interest is dropped (requests already decoded still run; the kernel
/// socket buffer is the only place further frames can wait).
const MAX_CONN_IN_FLIGHT: usize = 512;

/// How long a quiescent connection survives after shutdown begins, so a
/// peer mid-request still gets its typed `shutting_down` answer.
const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_millis(200);

/// The worker→loop completion channel: finished responses tagged with
/// their connection token, plus the waker that interrupts `epoll_wait`.
pub struct Completions {
    queue: Mutex<Vec<(u64, String)>>,
    waker: Arc<Waker>,
}

impl Completions {
    pub(crate) fn push(&self, token: u64, response: String) {
        self.queue.lock().expect("completions lock").push((token, response));
        self.waker.wake();
    }

    fn drain(&self) -> Vec<(u64, String)> {
        std::mem::take(&mut *self.queue.lock().expect("completions lock"))
    }
}

struct Conn {
    io: FramedConn,
    /// Interest currently registered in the poller.
    registered: Interest,
    /// Requests admitted to the worker pool whose responses have not yet
    /// been queued for writing.
    in_flight: usize,
    /// No further reads; close once `in_flight` is 0 and the write buffer
    /// has flushed.
    closing: bool,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing
                && self.in_flight < MAX_CONN_IN_FLIGHT
                && self.io.write_backlog() < WRITE_BACKPRESSURE_BYTES,
            writable: self.io.wants_write(),
        }
    }

    /// A closing connection with nothing left to deliver can be dropped.
    fn drained(&self) -> bool {
        self.closing && self.in_flight == 0 && !self.io.wants_write()
    }
}

/// Runs the event core until shutdown completes. Takes the role of both
/// the threaded core's acceptor and all its connection threads; the worker
/// pool is unchanged.
pub(crate) fn event_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("preinferd: epoll unavailable: {e}");
            shared.conns_done.store(true, Ordering::SeqCst);
            return;
        }
    };
    let waker = match Waker::new() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("preinferd: eventfd unavailable: {e}");
            shared.conns_done.store(true, Ordering::SeqCst);
            return;
        }
    };
    if poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_err()
        || poller.add(waker.fd(), TOKEN_WAKER, Interest::READ).is_err()
    {
        eprintln!("preinferd: failed to register event-core fds");
        shared.conns_done.store(true, Ordering::SeqCst);
        return;
    }
    *shared.wake.lock().expect("wake lock") = Some(Arc::clone(&waker));
    let completions =
        Arc::new(Completions { queue: Mutex::new(Vec::new()), waker: Arc::clone(&waker) });

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events = Vec::new();
    let mut frames = Vec::new();
    let mut draining = false;

    loop {
        if shared.shutting_down() && !draining {
            draining = true;
            // Final sweep: backlog connections get typed `shutting_down`
            // answers instead of a reset, then the listener goes quiet.
            accept_burst(&listener, &poller, shared, &mut conns, &mut next_token);
            poller.delete(listener.as_raw_fd());
        }
        if draining {
            // Close connections with nothing pending — but give each a
            // short grace since its last activity so a just-accepted
            // backlog connection can still send its request and read the
            // typed `shutting_down` answer (the threaded core's
            // one-read-timeout parity).
            let quiet: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    c.in_flight == 0
                        && !c.io.wants_write()
                        && c.io.last_activity.elapsed() >= DRAIN_GRACE
                })
                .map(|(t, _)| *t)
                .collect();
            for t in quiet {
                close_conn(&poller, shared, &mut conns, t);
            }
            if conns.is_empty() {
                break;
            }
        }

        if poller.wait(&mut events, SWEEP_MS).is_err() {
            break;
        }
        // Deliver finished work first so freshly writable sockets flush
        // the newest responses in the same iteration.
        waker.drain();
        for (token, response) in completions.drain() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.in_flight -= 1;
                conn.io.queue(&response);
            }
        }

        for ev in std::mem::take(&mut events) {
            match ev.token {
                TOKEN_LISTENER => {
                    if !draining {
                        accept_burst(&listener, &poller, shared, &mut conns, &mut next_token);
                    }
                }
                TOKEN_WAKER => {} // drained above
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    if ev.error {
                        conn.closing = true;
                        conn.in_flight = 0; // nothing can be delivered anymore
                        close_conn(&poller, shared, &mut conns, token);
                        continue;
                    }
                    if ev.readable && !conn.closing {
                        let fault = conn.io.read_frames(&mut frames).err();
                        // In-sync frames decoded before any fault still
                        // get dispatched (and answered) first.
                        for frame in frames.drain(..) {
                            dispatch(frame, token, conn, shared, &completions);
                        }
                        match fault {
                            None => {}
                            Some(ConnError::Closed) => {
                                if conn.io.has_partial_frame() {
                                    shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                    conn.io.queue(&render_error(
                                        None,
                                        ErrorCode::BadRequest,
                                        "malformed frame",
                                    ));
                                }
                                conn.closing = true;
                            }
                            Some(ConnError::TooLarge(n)) => {
                                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                conn.io.queue(&render_error(
                                    None,
                                    ErrorCode::FrameTooLarge,
                                    &format!(
                                        "frame length {n} outside 1..={}",
                                        protocol::MAX_FRAME_LEN
                                    ),
                                ));
                                conn.closing = true;
                            }
                            Some(ConnError::NotUtf8) => {
                                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                                conn.io.queue(&render_error(
                                    None,
                                    ErrorCode::BadRequest,
                                    "malformed frame",
                                ));
                                conn.closing = true;
                            }
                        }
                    }
                }
            }
        }

        // Flush, re-arm, and reap every connection whose state changed.
        // (Iterating all connections each tick is fine at the daemon's
        // connection counts and keeps the bookkeeping obviously right.)
        let now = Instant::now();
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if let Some(limit) = shared.idle_timeout {
                if !draining
                    && !conn.closing
                    && conn.in_flight == 0
                    && !conn.io.wants_write()
                    && now.duration_since(conn.io.last_activity) >= limit
                {
                    shared.counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                    conn.io.queue(&render_error(
                        None,
                        ErrorCode::IdleTimeout,
                        &format!("connection idle past {} ms", limit.as_millis()),
                    ));
                    conn.closing = true;
                }
            }
            if conn.io.wants_write() && conn.io.flush().is_err() {
                conn.in_flight = 0;
                conn.closing = true;
                dead.push(token);
                continue;
            }
            if conn.drained() {
                dead.push(token);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.registered
                && poller.modify(conn.io.stream().as_raw_fd(), token, want).is_ok()
            {
                conn.registered = want;
            }
        }
        for token in dead {
            close_conn(&poller, shared, &mut conns, token);
        }
    }

    drop(completions);
    *shared.wake.lock().expect("wake lock") = None;
    shared.conns_done.store(true, Ordering::SeqCst);
}

fn accept_burst(
    listener: &TcpListener,
    poller: &Poller,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    while let Ok((stream, _)) = listener.accept() {
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let Ok(io) = FramedConn::new(stream) else {
            shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let token = *next_token;
        *next_token += 1;
        if poller.add(io.stream().as_raw_fd(), token, Interest::READ).is_err() {
            shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        conns.insert(token, Conn { io, registered: Interest::READ, in_flight: 0, closing: false });
    }
}

fn close_conn(poller: &Poller, shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        poller.delete(conn.io.stream().as_raw_fd());
        shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parses and dispatches one request frame. Inline verbs queue their
/// response immediately; admitted `infer` jobs bump `in_flight` and reply
/// later through the completion queue.
fn dispatch(
    payload: String,
    token: u64,
    conn: &mut Conn,
    shared: &Arc<Shared>,
    completions: &Arc<Completions>,
) {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    match protocol::parse_request(&payload) {
        Ok(Request::Ping { id }) => {
            let resp = crate::json::ObjBuilder::new()
                .bool("ok", true)
                .opt_str("id", id.as_deref())
                .str("verb", "ping")
                .build();
            conn.io.queue(&resp);
            shared.latency.ping.record(started.elapsed());
        }
        Ok(Request::Stats { id }) => {
            conn.io.queue(&server::render_stats_response(id.as_deref(), shared));
            shared.latency.stats.record(started.elapsed());
        }
        Ok(Request::Metrics { id }) => {
            conn.io.queue(&server::render_metrics_response(id.as_deref(), shared));
            shared.latency.metrics.record(started.elapsed());
        }
        Ok(Request::Trace { id, select }) => {
            conn.io.queue(&server::render_trace_response(id.as_deref(), &select, shared));
            shared.latency.trace.record(started.elapsed());
        }
        Ok(Request::Infer { id, infer }) => {
            let reply = ReplyTo::Event { token, completions: Arc::clone(completions) };
            match server::start_infer(id, infer, shared, reply) {
                InferDisposition::Done(resp) => {
                    conn.io.queue(&resp);
                    shared.latency.infer.record(started.elapsed());
                }
                InferDisposition::Queued => conn.in_flight += 1,
            }
        }
        Err(reason) => {
            // Parseable framing, unparseable payload: answer and keep the
            // connection (the stream is still in sync).
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            conn.io.queue(&render_error(None, ErrorCode::BadRequest, &reason));
        }
    }
}
