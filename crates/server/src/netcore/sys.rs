//! Raw Linux syscall FFI for the event core: `epoll(7)` and `eventfd(2)`.
//!
//! The offline build environment has no `libc` crate, so — in the same
//! style as the `signal(2)` FFI in `preinferd` — the handful of symbols
//! the reactor needs are declared directly against the C library every
//! Rust binary already links. Constants are the x86-64 Linux UAPI values
//! (the only target this repository builds on).

use std::io;

/// `EPOLL_CLOEXEC` for [`epoll_create1`].
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

/// `EFD_CLOEXEC | EFD_NONBLOCK` for [`eventfd`].
pub const EFD_CLOEXEC: i32 = 0o2000000;
pub const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record. On x86-64 the kernel ABI packs this struct to 12
/// bytes (`__EPOLL_PACKED` in the UAPI headers); other architectures use
/// natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Checked `epoll_create1`.
pub fn sys_epoll_create1() -> io::Result<i32> {
    match unsafe { epoll_create1(EPOLL_CLOEXEC) } {
        -1 => Err(io::Error::last_os_error()),
        fd => Ok(fd),
    }
}

/// Checked `epoll_ctl`. `event` may be null only for `EPOLL_CTL_DEL`.
pub fn sys_epoll_ctl(epfd: i32, op: i32, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
    let mut ev = event;
    let ptr = ev.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
    match unsafe { epoll_ctl(epfd, op, fd, ptr) } {
        -1 => Err(io::Error::last_os_error()),
        _ => Ok(()),
    }
}

/// Checked `epoll_wait`; retries `EINTR` internally so signal delivery
/// (SIGTERM sets a flag the caller polls) never surfaces as an error.
pub fn sys_epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Checked `eventfd` (non-blocking, close-on-exec).
pub fn sys_eventfd() -> io::Result<i32> {
    match unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) } {
        -1 => Err(io::Error::last_os_error()),
        fd => Ok(fd),
    }
}

/// Best-effort `close(2)` (used by the RAII fd owners; errors ignored —
/// there is nothing useful to do with them at drop time).
pub fn sys_close(fd: i32) {
    unsafe {
        close(fd);
    }
}

/// Adds `1` to an eventfd counter. Async-signal-safe and non-blocking; a
/// full counter (`EAGAIN`) means a wakeup is already pending, which is all
/// the caller wants.
pub fn sys_eventfd_write(fd: i32) {
    let one: u64 = 1;
    unsafe {
        write(fd, &one as *const u64 as *const u8, 8);
    }
}

/// Drains an eventfd counter to zero (non-blocking read; `EAGAIN` means
/// already drained).
pub fn sys_eventfd_drain(fd: i32) {
    let mut buf = [0u8; 8];
    unsafe {
        read(fd, buf.as_mut_ptr(), 8);
    }
}
