//! # netcore — the std-only event-driven connection core
//!
//! An epoll-backed reactor ([`Poller`], [`Waker`]) plus a framed
//! non-blocking connection state machine ([`FramedConn`]), built directly
//! on `epoll(7)`/`eventfd(2)` FFI in the same spirit as the daemon's
//! `signal(2)` handler — no async runtime, no external crates.
//!
//! Two run loops are built on it:
//!
//! * the daemon's event core (`server::eio`, selected with
//!   `preinferd --io epoll`): non-blocking accept, per-connection
//!   incremental frame decode, request pipelining with worker completions
//!   delivered back through an eventfd wakeup, write buffering with
//!   `EAGAIN` backpressure, and per-connection idle deadlines;
//! * the `preinfer-router` front (`server::router`): the same reactor
//!   driving downstream client connections and pooled pipelined upstream
//!   connections to the shard daemons.
//!
//! Design notes live in DESIGN.md §6.

pub mod conn;
pub mod poll;
mod sys;

pub use conn::{ConnError, FramedConn, WRITE_BACKPRESSURE_BYTES};
pub use poll::{Event, Interest, Poller, Waker};
