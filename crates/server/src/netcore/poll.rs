//! The reactor: a thin safe wrapper over one epoll instance plus an
//! eventfd waker.
//!
//! Tokens are caller-chosen `u64`s carried in `epoll_data`; the poller
//! never interprets them. Registration is level-triggered — the run loops
//! re-arm interest explicitly after every state change, which keeps the
//! connection state machines simple (no starvation bookkeeping for
//! edge-triggered wakeups) at the cost of a few extra `epoll_ctl` calls.

use super::sys::{self, EpollEvent};
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness record.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup: the fd should be serviced and torn down.
    pub error: bool,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { epfd: sys::sys_epoll_create1()? })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let ev = EpollEvent { events: interest.mask(), data: token };
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(ev))
    }

    /// Changes an existing registration's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let ev = EpollEvent { events: interest.mask(), data: token };
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(ev))
    }

    /// Removes a registration. Harmless to call for an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) {
        let _ = sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None);
    }

    /// Blocks up to `timeout_ms` for readiness, appending decoded events
    /// into `out` (cleared first). `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
        let n = sys::sys_epoll_wait(self.epfd, &mut raw, timeout_ms)?;
        out.clear();
        for ev in &raw[..n] {
            // Copy out of the (packed on x86-64) struct before use.
            let events = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                error: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// A cross-thread wakeup for a [`Poller`]: worker threads (and signal-
/// noticing shutdown paths) call [`Waker::wake`], and the run loop — which
/// registers the eventfd under a reserved token — drains it and processes
/// whatever queue the wake advertised. `write(2)` on an eventfd is
/// async-signal-safe and non-blocking, so waking can never stall a worker.
#[derive(Debug)]
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Arc<Waker>> {
        Ok(Arc::new(Waker { efd: sys::sys_eventfd()? }))
    }

    /// The fd to register in the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.efd
    }

    /// Signals the run loop; coalesces with pending wakes.
    pub fn wake(&self) {
        sys::sys_eventfd_write(self.efd);
    }

    /// Consumes pending wake counts (run loop side).
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.efd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.efd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_readiness_round_trips_through_epoll() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing ready before a wake");
        waker.wake();
        waker.wake(); // coalesces
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained waker is no longer ready");
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable), "accept readiness");

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(accepted.as_raw_fd(), 2, Interest { readable: true, writable: true }).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable), "fresh socket is writable");

        // Narrow to read interest: no spurious writable wakeups.
        poller.modify(accepted.as_raw_fd(), 2, Interest::READ).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(!events.iter().any(|e| e.token == 2));
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        poller.delete(accepted.as_raw_fd());
    }
}
