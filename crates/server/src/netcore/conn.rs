//! The per-connection state machine: incremental frame decode on the read
//! side, buffered writes with `EAGAIN` backpressure on the write side.
//!
//! A [`FramedConn`] owns one non-blocking [`TcpStream`] and speaks the
//! length-prefixed protocol (`protocol::read_frame`'s wire format, decoded
//! incrementally): the run loop calls [`FramedConn::read_frames`] on read
//! readiness — which consumes every byte the kernel has and returns every
//! *complete* frame, leaving partial ones buffered — and
//! [`FramedConn::flush`] on write readiness. Responses are queued with
//! [`FramedConn::queue`]; whatever the socket will not take immediately
//! stays in the write buffer and the caller arms `EPOLLOUT`.

use crate::protocol::MAX_FRAME_LEN;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Stop buffering decoded-but-unanswered bytes past this point: a peer
/// that writes requests faster than it reads responses gets its read
/// interest dropped until the write buffer drains below the mark again.
pub const WRITE_BACKPRESSURE_BYTES: usize = 4 << 20;

/// Why a connection must be torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnError {
    /// Clean EOF (or reset) from the peer.
    Closed,
    /// A declared frame length outside `1..=MAX_FRAME_LEN`; the stream can
    /// no longer be resynchronized. Mirrors `FrameError::TooLarge`.
    TooLarge(usize),
    /// A complete frame whose payload is not UTF-8 (`FrameError::NotUtf8`).
    NotUtf8,
}

/// One framed, non-blocking connection.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    /// Received-but-undecoded bytes (at most one partial frame plus
    /// whatever complete frames one readiness burst delivered).
    rbuf: Vec<u8>,
    /// Encoded-but-unsent response bytes; `wpos` is the flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Last time a byte arrived (any byte — a slow writer mid-frame is
    /// active, not idle).
    pub last_activity: Instant,
}

impl FramedConn {
    /// Takes ownership of `stream`, switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_activity: Instant::now(),
        })
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads everything the kernel has buffered and decodes complete
    /// frames into `frames`. Returns a [`ConnError`] when the connection
    /// must close; decoded frames are still delivered first so in-sync
    /// requests that arrived before the fault get answered.
    pub fn read_frames(&mut self, frames: &mut Vec<String>) -> Result<(), ConnError> {
        frames.clear();
        let mut chunk = [0u8; 16 * 1024];
        let mut saw_eof = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(ConnError::Closed),
            }
        }
        self.decode(frames)?;
        if saw_eof {
            return Err(ConnError::Closed);
        }
        Ok(())
    }

    /// Decodes as many complete frames as the read buffer holds.
    fn decode(&mut self, frames: &mut Vec<String>) -> Result<(), ConnError> {
        let mut pos = 0;
        let result = loop {
            let rest = &self.rbuf[pos..];
            if rest.len() < 4 {
                break Ok(());
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len == 0 || len > MAX_FRAME_LEN {
                break Err(ConnError::TooLarge(len));
            }
            if rest.len() < 4 + len {
                break Ok(());
            }
            match std::str::from_utf8(&rest[4..4 + len]) {
                Ok(s) => frames.push(s.to_string()),
                Err(_) => break Err(ConnError::NotUtf8),
            }
            pos += 4 + len;
        };
        self.rbuf.drain(..pos);
        result
    }

    /// Queues one response frame for writing. Call [`FramedConn::flush`]
    /// (and arm write interest if it reports pending bytes) afterwards.
    pub fn queue(&mut self, payload: &str) {
        let bytes = payload.as_bytes();
        debug_assert!(!bytes.is_empty() && bytes.len() <= MAX_FRAME_LEN);
        self.wbuf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(bytes);
    }

    /// Writes as much of the buffer as the socket takes. `Ok(true)` means
    /// fully flushed; `Ok(false)` means bytes remain (arm `EPOLLOUT`).
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Whether undecoded bytes remain in the read buffer (a partial frame
    /// — at EOF this means the peer truncated mid-frame).
    pub fn has_partial_frame(&self) -> bool {
        !self.rbuf.is_empty()
    }

    /// Whether unsent bytes remain.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Unflushed write-buffer bytes (backpressure signal).
    pub fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (client, FramedConn::new(accepted).unwrap())
    }

    fn frame(payload: &str) -> Vec<u8> {
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload.as_bytes());
        buf
    }

    #[test]
    fn whole_and_split_frames_decode_incrementally() {
        let (mut client, mut conn) = pair();
        let mut frames = Vec::new();

        // Two frames in one burst.
        client.write_all(&frame("{\"a\":1}")).unwrap();
        client.write_all(&frame("{\"b\":2}")).unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        conn.read_frames(&mut frames).unwrap();
        assert_eq!(frames, vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()]);

        // One frame split mid-prefix and mid-payload.
        let whole = frame("{\"c\":3}");
        client.write_all(&whole[..2]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        conn.read_frames(&mut frames).unwrap();
        assert!(frames.is_empty(), "partial prefix decodes nothing");
        client.write_all(&whole[2..7]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        conn.read_frames(&mut frames).unwrap();
        assert!(frames.is_empty(), "partial payload decodes nothing");
        client.write_all(&whole[7..]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        conn.read_frames(&mut frames).unwrap();
        assert_eq!(frames, vec!["{\"c\":3}".to_string()]);
    }

    #[test]
    fn oversized_and_zero_lengths_are_desync_errors() {
        let (mut client, mut conn) = pair();
        let mut frames = Vec::new();
        client.write_all(&frame("{}")).unwrap();
        client.write_all(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let err = conn.read_frames(&mut frames).unwrap_err();
        assert_eq!(err, ConnError::TooLarge(MAX_FRAME_LEN + 1));
        assert_eq!(frames, vec!["{}".to_string()], "in-sync frame delivered before the fault");

        let (mut client, mut conn) = pair();
        client.write_all(&0u32.to_be_bytes()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(conn.read_frames(&mut frames).unwrap_err(), ConnError::TooLarge(0));
    }

    #[test]
    fn eof_is_reported_after_buffered_frames() {
        let (mut client, mut conn) = pair();
        client.write_all(&frame("{\"z\":9}")).unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut frames = Vec::new();
        assert_eq!(conn.read_frames(&mut frames).unwrap_err(), ConnError::Closed);
        assert_eq!(frames, vec!["{\"z\":9}".to_string()]);
    }

    #[test]
    fn flush_reports_pending_bytes_under_backpressure() {
        let (client, mut conn) = pair();
        // Never read from `client`, so the kernel buffers fill up.
        let big = "x".repeat(256 * 1024);
        let mut stalled = false;
        for _ in 0..64 {
            conn.queue(&big);
            if !conn.flush().unwrap() {
                stalled = true;
                break;
            }
        }
        assert!(stalled, "a 16 MiB burst must hit EAGAIN");
        assert!(conn.wants_write());
        assert!(conn.write_backlog() > 0);
        drop(client);
    }
}
