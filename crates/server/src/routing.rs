//! Canonical method identity: the key the router shards by and the memo
//! caches under.
//!
//! The canonical rendering of an `infer` request's target method is its
//! pretty-printed source with every parameter α-renamed to the positional
//! `%i` placeholders `solver::canon` uses — so two methods that are
//! α-equivalent (and therefore produce identical solver `CacheKey`s for
//! every query their inference issues) share one canonical text, one
//! [`solver::affinity_hash`], one shard, and one memo entry. `%` cannot
//! begin a MiniLang identifier, so placeholders never collide with real
//! names, and string literals are skipped by the renamer so a parameter
//! name appearing inside one is left alone.
//!
//! The hash must be stable across processes (router and shards agree on
//! it forever), which is why it is FNV-1a in `solver::canon` rather than
//! `DefaultHasher`.

use minilang::{func_to_string, rename_idents};

/// A resolved canonical method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalMethod {
    /// The resolved entry-function name (the program's first function
    /// when the request named none).
    pub func: String,
    /// The α-renamed pretty-printed function source.
    pub canon: String,
}

/// Compiles `program`, resolves the entry function the same way the
/// service does (named, else first), and returns its canonical rendering.
/// `Err` carries a human-readable reason (compile error, missing
/// function, empty program).
pub fn canonical_method(program: &str, func: Option<&str>) -> Result<CanonicalMethod, String> {
    let typed = minilang::compile(program)?;
    let f = match func {
        Some(name) => typed
            .program()
            .funcs
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| format!("no function `{name}` in program"))?,
        None => typed.program().funcs.first().ok_or("program has no functions")?,
    };
    let renames: Vec<(String, String)> =
        f.params.iter().enumerate().map(|(i, p)| (p.name.clone(), format!("%{i}"))).collect();
    Ok(CanonicalMethod { func: f.name.clone(), canon: rename_idents(&func_to_string(f), &renames) })
}

/// The shard index an `infer` request routes to. Uncompilable programs
/// (which every shard would answer with the same `compile_error`) fall
/// back to hashing the raw `(program, func)` text so routing stays
/// deterministic and spread.
pub fn shard_of(program: &str, func: Option<&str>, shards: usize) -> usize {
    let h = match canonical_method(program, func) {
        Ok(m) => solver::affinity_hash(&m.canon),
        Err(_) => solver::affinity_hash(&format!("!{}\u{0}{}", func.unwrap_or(""), program)),
    };
    (h % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_equivalent_methods_share_a_canonical_text() {
        let a = canonical_method("fn f(x int, y int) -> int { return x / y; }", None).unwrap();
        let b = canonical_method("fn f(p int, q int) -> int { return p / q; }", Some("f")).unwrap();
        assert_eq!(a, b);
        assert!(a.canon.contains("%0") && a.canon.contains("%1"));
        assert_eq!(a.func, "f");
    }

    #[test]
    fn argument_order_distinguishes_methods() {
        let a = canonical_method("fn f(x int, y int) -> int { return x / y; }", None).unwrap();
        let b = canonical_method("fn f(y int, x int) -> int { return x / y; }", None).unwrap();
        assert_ne!(a.canon, b.canon, "positional renaming keeps distinct methods distinct");
    }

    #[test]
    fn entry_resolution_matches_the_service() {
        let two = "fn g(a int) -> int { return a; }\nfn h(b int) -> int { return b + 1; }";
        assert_eq!(canonical_method(two, None).unwrap().func, "g");
        assert_eq!(canonical_method(two, Some("h")).unwrap().func, "h");
        assert!(canonical_method(two, Some("nope")).is_err());
        assert!(canonical_method("fn broken(", None).is_err());
    }

    #[test]
    fn string_literals_are_not_renamed() {
        let m = canonical_method(
            "fn f(x int) -> str { if (x > 0) { return \"x\"; } return null; }",
            None,
        )
        .unwrap();
        assert!(m.canon.contains("\"x\""), "literal preserved: {}", m.canon);
        assert!(m.canon.contains("%0 >"), "parameter renamed: {}", m.canon);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        let src = "fn f(x int) -> int { return 10 / x; }";
        let s1 = shard_of(src, None, 2);
        assert_eq!(s1, shard_of(src, None, 2), "stable");
        assert!(s1 < 2);
        assert!(shard_of("fn oops(", None, 3) < 3, "uncompilable still routes");
        // α-equivalent spelling routes identically.
        assert_eq!(s1, shard_of("fn f(z int) -> int { return 10 / z; }", None, 2));
    }
}
