//! Per-request trace sampling and retention.
//!
//! The daemon assigns every admitted `infer` request a monotonic id and
//! decides — deterministically, from that id alone — whether the request
//! runs with its own recording `TraceSink`:
//!
//! * **Head sampling**: with `--trace-sample N`, every N-th request
//!   (ids 1, N+1, 2N+1, …) records. The decision is a modulus on the
//!   admission counter — no wall clock, no RNG — so the same request
//!   sequence samples the same ids on every run and under any worker
//!   count; the sampling determinism tests pin this.
//! * **Tail capture**: with `--slow-trace-ms T`, *every* request records
//!   speculatively, and a trace is retained after completion if the
//!   request's service time exceeded `T` — the only way to have the trace
//!   of a request you could not know would be slow. Head-sampled requests
//!   are always retained.
//!
//! Retained traces go into a bounded ring ([`TraceRing`]) that evicts the
//! oldest entry on overflow, and are served by the `trace` verb
//! (`{last: K}` / `{request_id: N}`, PROTOCOL.md). Recording is
//! observation-only: the trace-neutrality differential proves served ψ
//! byte-identical with sampling on or off.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Why a completed trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainReason {
    /// The request id was head-sampled (`--trace-sample`).
    Head,
    /// Service time exceeded the slow threshold (`--slow-trace-ms`).
    Slow,
    /// An upstream tier minted a trace context with `sampled: true`; this
    /// process honored that decision instead of its own policy.
    Context,
}

impl RetainReason {
    pub fn label(self) -> &'static str {
        match self {
            RetainReason::Head => "head",
            RetainReason::Slow => "slow",
            RetainReason::Context => "context",
        }
    }
}

/// Mints a fresh 128-bit trace id (32 hex digits). Uniqueness comes from
/// hashing a per-process random seed with the wall clock, the pid, and
/// the caller's monotonic sequence number — collision needs both
/// independent 64-bit halves to collide. No RNG state is kept, so the
/// serving paths that never mint (every non-sampled request) pay nothing.
pub fn mint_trace_id(seq: u64) -> String {
    use std::hash::{BuildHasher, Hasher, RandomState};
    use std::sync::OnceLock;
    static SEED: OnceLock<RandomState> = OnceLock::new();
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let seed = SEED.get_or_init(RandomState::new);
    // The nonce keeps ids distinct even if the clock is too coarse to
    // move between two mints with the same caller sequence number.
    let seq = seq ^ NONCE.fetch_add(1, Ordering::Relaxed).rotate_left(32);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let mut h = seed.build_hasher();
    h.write_u128(now);
    h.write_u64(seq);
    h.write_u32(std::process::id());
    let hi = h.finish();
    let mut h = seed.build_hasher();
    h.write_u64(seq);
    h.write_u32(std::process::id());
    h.write_u128(now);
    h.write_u64(0x7072_6549_6e66_6572); // "prInfer", domain-separates the halves
    let lo = h.finish();
    format!("{hi:016x}{lo:016x}")
}

/// The deterministic sampling policy (immutable after startup).
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingPolicy {
    /// Head-sample 1 in `sample` requests; 0 disables head sampling.
    pub sample: u64,
    /// Retain any request slower than this, regardless of head sampling.
    pub slow_threshold: Option<Duration>,
}

impl SamplingPolicy {
    /// Whether any per-request recording is configured at all.
    pub fn enabled(&self) -> bool {
        self.sample > 0 || self.slow_threshold.is_some()
    }

    /// Whether `request_id` (1-based admission counter) is head-sampled.
    pub fn head_sampled(&self, request_id: u64) -> bool {
        self.sample > 0 && (request_id - 1).is_multiple_of(self.sample)
    }

    /// Whether this request must run with a recording sink. Head-sampled
    /// requests always do; when a slow threshold is set, every request
    /// does (tail capture needs the trace before knowing it is slow).
    pub fn record(&self, request_id: u64) -> bool {
        self.head_sampled(request_id) || self.slow_threshold.is_some()
    }

    /// The retention decision once the request finished in `service`.
    pub fn retain(&self, request_id: u64, service: Duration) -> Option<RetainReason> {
        if self.head_sampled(request_id) {
            return Some(RetainReason::Head);
        }
        match self.slow_threshold {
            Some(t) if service > t => Some(RetainReason::Slow),
            _ => None,
        }
    }
}

/// One retained request trace.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    pub request_id: u64,
    /// The distributed trace id this request recorded under, when it ran
    /// inside a cross-process trace (or minted one itself).
    pub trace_id: Option<String>,
    /// Entry function of the request (empty when it failed to compile).
    pub func: String,
    pub reason: RetainReason,
    /// Queue wait (admission → dequeue), µs.
    pub queue_us: u64,
    /// Service time (dequeue → completion), µs.
    pub service_us: u64,
    /// The recorded JSON-lines events, in `seq` order.
    pub lines: Vec<String>,
}

/// A bounded ring of completed traces: pushing beyond capacity evicts the
/// oldest. All methods take `&self` (internal mutex); clones out on read
/// so the lock is never held while rendering a response.
#[derive(Debug)]
pub struct TraceRing {
    entries: Mutex<VecDeque<StoredTrace>>,
    capacity: usize,
    retained_head: AtomicU64,
    retained_slow: AtomicU64,
    retained_context: AtomicU64,
    evicted: AtomicU64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            retained_head: AtomicU64::new(0),
            retained_slow: AtomicU64::new(0),
            retained_context: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retains one completed trace, evicting the oldest when full.
    pub fn push(&self, trace: StoredTrace) {
        match trace.reason {
            RetainReason::Head => &self.retained_head,
            RetainReason::Slow => &self.retained_slow,
            RetainReason::Context => &self.retained_context,
        }
        .fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("trace ring");
        while entries.len() >= self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(trace);
    }

    /// The `k` most recent traces, newest first.
    pub fn last(&self, k: usize) -> Vec<StoredTrace> {
        let entries = self.entries.lock().expect("trace ring");
        entries.iter().rev().take(k).cloned().collect()
    }

    /// The trace of one request, if still retained.
    pub fn by_request_id(&self, request_id: u64) -> Option<StoredTrace> {
        let entries = self.entries.lock().expect("trace ring");
        entries.iter().rev().find(|t| t.request_id == request_id).cloned()
    }

    /// The trace recorded under one distributed trace id, if retained.
    pub fn by_trace_id(&self, trace_id: &str) -> Option<StoredTrace> {
        let entries = self.entries.lock().expect("trace ring");
        entries.iter().rev().find(|t| t.trace_id.as_deref() == Some(trace_id)).cloned()
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace ring").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(head-sampled, slow-captured, context-sampled, evicted)` lifetime
    /// counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.retained_head.load(Ordering::Relaxed),
            self.retained_slow.load(Ordering::Relaxed),
            self.retained_context.load(Ordering::Relaxed),
            self.evicted.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(id: u64, reason: RetainReason) -> StoredTrace {
        StoredTrace {
            request_id: id,
            trace_id: Some(format!("{id:032x}")),
            func: "f".to_string(),
            reason,
            queue_us: 1,
            service_us: 2,
            lines: vec![format!("{{\"ev\":\"run\",\"request_id\":{id}}}")],
        }
    }

    #[test]
    fn head_sampling_is_a_pure_function_of_the_id() {
        let p = SamplingPolicy { sample: 4, slow_threshold: None };
        let sampled: Vec<u64> = (1..=12).filter(|&id| p.head_sampled(id)).collect();
        assert_eq!(sampled, vec![1, 5, 9]);
        assert!(p.record(1) && !p.record(2), "only sampled ids record without a slow threshold");
        let off = SamplingPolicy::default();
        assert!(!off.enabled());
        assert!((1..=100).all(|id| !off.record(id)));
    }

    #[test]
    fn slow_threshold_records_everything_but_retains_only_slow() {
        let p = SamplingPolicy { sample: 0, slow_threshold: Some(Duration::from_millis(10)) };
        assert!(p.enabled());
        assert!((1..=5).all(|id| p.record(id)), "tail capture must record speculatively");
        assert_eq!(p.retain(3, Duration::from_millis(5)), None);
        assert_eq!(p.retain(3, Duration::from_millis(11)), Some(RetainReason::Slow));
        // Head sampling wins the label when both apply.
        let both = SamplingPolicy { sample: 2, slow_threshold: Some(Duration::ZERO) };
        assert_eq!(both.retain(1, Duration::from_millis(9)), Some(RetainReason::Head));
        assert_eq!(both.retain(2, Duration::from_millis(9)), Some(RetainReason::Slow));
    }

    #[test]
    fn ring_evicts_oldest_and_serves_newest_first() {
        let ring = TraceRing::new(2);
        ring.push(stored(1, RetainReason::Head));
        ring.push(stored(2, RetainReason::Head));
        ring.push(stored(3, RetainReason::Slow));
        assert_eq!(ring.len(), 2);
        let last = ring.last(10);
        assert_eq!(last.iter().map(|t| t.request_id).collect::<Vec<_>>(), vec![3, 2]);
        assert!(ring.by_request_id(1).is_none(), "oldest entry was evicted");
        assert_eq!(ring.by_request_id(3).unwrap().reason, RetainReason::Slow);
        assert_eq!(ring.counters(), (2, 1, 0, 1));
    }

    #[test]
    fn ring_serves_by_trace_id_and_counts_context_retention() {
        let ring = TraceRing::new(4);
        ring.push(stored(1, RetainReason::Context));
        ring.push(stored(2, RetainReason::Context));
        let found = ring.by_trace_id(&format!("{:032x}", 2)).expect("trace retained");
        assert_eq!(found.request_id, 2);
        assert!(ring.by_trace_id("ffffffffffffffffffffffffffffffff").is_none());
        assert_eq!(ring.counters(), (0, 0, 2, 0));
        assert_eq!(RetainReason::Context.label(), "context");
    }

    #[test]
    fn minted_trace_ids_are_well_formed_and_distinct() {
        let a = mint_trace_id(1);
        let b = mint_trace_id(2);
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b, "consecutive mints must differ");
        assert_ne!(mint_trace_id(1), a, "same seq mints differ across calls (clock moved)");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = TraceRing::new(0);
        ring.push(stored(1, RetainReason::Head));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
    }
}
