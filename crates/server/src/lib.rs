//! # server
//!
//! The serving layer: `preinferd`, a resident batch precondition-inference
//! daemon, and the `preinfer-client` CLI / load generator. The daemon
//! amortizes the canonicalizing [`solver::SolverCache`] across requests —
//! the warm-cache counterpart of PR 1's per-process parallel pipeline —
//! behind a length-prefixed JSON protocol (`PROTOCOL.md`) with bounded
//! admission, per-request deadlines, per-verb latency histograms, and
//! SIGTERM-triggered graceful drain. See DESIGN.md §6 "Serving layer".

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use client::{served_psis, Client, ClientError};
pub use obs::Histogram;
pub use protocol::{ErrorCode, InferRequest, Request, MAX_FRAME_LEN};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{run_infer, InferOutcome};
