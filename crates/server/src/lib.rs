//! # server
//!
//! The serving layer: `preinferd`, a resident batch precondition-inference
//! daemon, and the `preinfer-client` CLI / load generator. The daemon
//! amortizes the canonicalizing [`solver::SolverCache`] across requests —
//! the warm-cache counterpart of PR 1's per-process parallel pipeline —
//! behind a length-prefixed JSON protocol (`PROTOCOL.md`) with bounded
//! admission, per-request deadlines, per-verb latency histograms, and
//! SIGTERM-triggered graceful drain. See DESIGN.md §6 "Serving layer".
//!
//! Observability rides on `obs`: every admitted request gets a monotonic
//! id, deterministic head sampling and slow-request tail capture retain
//! per-request traces in a bounded ring ([`TraceRing`], the `trace` verb),
//! and every counter/histogram registers in a unified
//! [`obs::MetricsRegistry`] scraped by the `metrics` verb as Prometheus
//! text exposition.

pub mod client;
pub mod eio;
pub mod json;
pub mod memo;
pub mod netcore;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod routing;
pub mod server;
pub mod service;
pub mod trace;

pub use client::{served_psis, Client, ClientError};
pub use memo::{MemoKey, MemoStats, ResponseMemo};
pub use obs::Histogram;
pub use protocol::{ErrorCode, InferRequest, Request, TraceSelect, MAX_FRAME_LEN};
pub use queue::BoundedQueue;
pub use router::{Router, RouterConfig, RouterHandle};
pub use routing::{canonical_method, shard_of, CanonicalMethod};
pub use server::{IoMode, Server, ServerConfig, ServerHandle, ServerLatency};
pub use service::{run_infer, IncrementalPolicy, InferOutcome, SummaryPolicy};
pub use trace::{RetainReason, SamplingPolicy, StoredTrace, TraceRing};
