//! # server
//!
//! The serving layer: `preinferd`, a resident batch precondition-inference
//! daemon, and the `preinfer-client` CLI / load generator. The daemon
//! amortizes the canonicalizing [`solver::SolverCache`] across requests —
//! the warm-cache counterpart of PR 1's per-process parallel pipeline —
//! behind a length-prefixed JSON protocol (`PROTOCOL.md`) with bounded
//! admission, per-request deadlines, per-verb latency histograms, and
//! SIGTERM-triggered graceful drain. See DESIGN.md §6 "Serving layer".
//!
//! Observability rides on `obs`: every admitted request gets a monotonic
//! id, deterministic head sampling and slow-request tail capture retain
//! per-request traces in a bounded ring ([`TraceRing`], the `trace` verb),
//! and every counter/histogram registers in a unified
//! [`obs::MetricsRegistry`] scraped by the `metrics` verb as Prometheus
//! text exposition.
//!
//! Tracing is distributed across the router tier: `preinfer-router` mints
//! a 128-bit trace context ([`protocol::TraceContext`]), records its own
//! `route`/`upstream_rtt` spans, and injects the context into the
//! forwarded frame; a shard honors the upstream decision instead of its
//! own policy and records under the same `trace_id`, so the router's
//! `trace --trace-id X` returns one stitched multi-process trace that
//! `obs::analyze` merges into a single tree (the shard's spans nested
//! under the router's `upstream_rtt`). Sampled requests also leave their
//! `trace_id` as Prometheus exemplars on the latency histograms.

pub mod client;
pub mod eio;
pub mod json;
pub mod memo;
pub mod netcore;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod routing;
pub mod server;
pub mod service;
pub mod trace;

pub use client::{served_psis, Client, ClientError};
pub use memo::{MemoKey, MemoStats, ResponseMemo};
pub use obs::Histogram;
pub use protocol::{ErrorCode, InferRequest, Request, TraceContext, TraceSelect, MAX_FRAME_LEN};
pub use queue::BoundedQueue;
pub use router::{Router, RouterConfig, RouterHandle};
pub use routing::{canonical_method, shard_of, CanonicalMethod};
pub use server::{IoMode, Server, ServerConfig, ServerHandle, ServerLatency};
pub use service::{run_infer, IncrementalPolicy, InferOutcome, SummaryPolicy};
pub use trace::{RetainReason, SamplingPolicy, StoredTrace, TraceRing};
