//! A minimal JSON reader/writer for the wire protocol.
//!
//! The offline build environment has no `serde`, so the daemon parses
//! request payloads with this hand-rolled recursive-descent parser and
//! renders responses with the escaping helpers below. The parser accepts
//! RFC 8259 JSON with two defensive limits — a nesting-depth cap and the
//! frame-level length cap enforced before parsing — so hostile payloads
//! from the network fail with a typed error instead of exhausting the
//! stack (see the protocol robustness property tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`), which also
/// makes rendered output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: string field of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: unsigned integer field of an object.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
}

/// A parse failure with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

// ---- rendering --------------------------------------------------------------

/// Escapes a string per RFC 8259 (including the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Re-renders a parsed [`Json`] value (stable field order: object keys
/// are sorted by the `BTreeMap`).
pub fn render(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => num(*n),
        Json::Str(s) => escape(s),
        Json::Arr(items) => {
            format!("[{}]", items.iter().map(render).collect::<Vec<_>>().join(","))
        }
        Json::Obj(m) => format!(
            "{{{}}}",
            m.iter()
                .map(|(k, v)| format!("{}:{}", escape(k), render(v)))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

/// A tiny single-line JSON object builder for responses.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    fields: Vec<String>,
}

impl ObjBuilder {
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, rendered: impl Into<String>) -> Self {
        self.fields.push(format!("{}:{}", escape(key), rendered.into()));
        self
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        let v = escape(value);
        self.raw(key, v)
    }

    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = num(value);
        self.raw(key, v)
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Adds an array of already-rendered JSON values.
    pub fn arr(self, key: &str, rendered: Vec<String>) -> Self {
        let v = format!("[{}]", rendered.join(","));
        self.raw(key, v)
    }

    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\n\"y\""}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().str_field("c"), Some("x\n\"y\""));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "\u{1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate");
    }

    #[test]
    fn builder_renders_parseable_objects() {
        let s = ObjBuilder::new()
            .str("verb", "infer")
            .u64("n", 3)
            .bool("ok", true)
            .f64("x", 1.5)
            .arr("xs", vec!["1".into(), "\"two\"".into()])
            .build();
        let v = parse(&s).unwrap();
        assert_eq!(v.str_field("verb"), Some("infer"));
        assert_eq!(v.u64_field("n"), Some(3));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap()[1].as_str(), Some("two"));
    }
}
