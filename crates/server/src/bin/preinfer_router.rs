//! `preinfer-router` — key-affinity sharding front for `preinferd`.
//!
//! ```text
//! preinfer-router --shard HOST:PORT [--shard HOST:PORT ...]
//!                 [--addr HOST:PORT] [--conns-per-shard N]
//!                 [--idle-timeout-ms N]
//!                 [--trace-sample N] [--slow-trace-ms N] [--trace-buffer K]
//! ```
//!
//! Prints `listening on HOST:PORT` once bound. SIGTERM/SIGINT drains
//! downstream connections and exits 0 (shards keep running; stop them
//! separately).

use server::{Router, RouterConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: preinfer-router --shard HOST:PORT [--shard HOST:PORT ...]\n\
         \x20                      [--addr HOST:PORT] [--conns-per-shard N]\n\
         \x20                      [--idle-timeout-ms N] [--trace-sample N]\n\
         \x20                      [--slow-trace-ms N] [--trace-buffer K]\n\
         \n\
         Fronts N preinferd shard daemons with key-affinity routing: every\n\
         infer request's target method is canonicalized (α-renamed) and\n\
         hashed, so α-equivalent methods always reach the shard whose\n\
         caches already hold their verdicts. stats/metrics/trace fan out\n\
         to every shard and merge; ping answers locally. A shard with no\n\
         live connection yields a typed `upstream_unavailable` error and\n\
         is re-dialed with bounded backoff.\n\
         \n\
         Shard order is the hash space: restart the router with the same\n\
         --shard list in the same order to keep affinity.\n\
         \n\
         Distributed tracing: --trace-sample N head-samples every N-th\n\
         routed infer request (deterministic, 0 = off) — the router mints\n\
         a 128-bit trace context, records its own route/upstream spans,\n\
         and injects the context into the forwarded frame so the shard\n\
         records under the same trace_id; `trace --trace-id X` then\n\
         returns the stitched multi-process trace. --slow-trace-ms T also\n\
         retains any routed request slower than T ms end-to-end;\n\
         --trace-buffer K (default 64) bounds the retained-trace ring.\n\
         \n\
         Defaults: --addr 127.0.0.1:0 (prints the bound port),\n\
         --conns-per-shard 2, --idle-timeout-ms 60000 (0 = off)."
    );
    std::process::exit(2);
}

fn parse_args() -> RouterConfig {
    let mut cfg = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| usage()),
            "--shard" => cfg.shards.push(args.next().unwrap_or_else(|| usage())),
            "--conns-per-shard" => {
                cfg.conns_per_shard = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--trace-sample" => {
                cfg.trace_sample =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--slow-trace-ms" => {
                cfg.slow_trace_ms =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--trace-buffer" => {
                cfg.trace_buffer = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if cfg.shards.is_empty() {
        usage();
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    install_signal_handlers();
    let router = match Router::start(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("preinfer-router: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parsed by scripts; keep the format stable.
    println!("listening on {}", router.local_addr());
    let handle = router.handle();
    while !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("preinfer-router: signal received, draining …");
    handle.shutdown();
    router.join();
    eprintln!("preinfer-router: drained, bye");
    ExitCode::SUCCESS
}
