//! `preinferd` — the resident precondition-inference daemon.
//!
//! ```text
//! preinferd [--addr HOST:PORT] [--io threads|epoll] [--workers N]
//!           [--queue N] [--default-deadline-ms N] [--idle-timeout-ms N]
//!           [--incremental on|off] [--interproc inline|summary]
//!           [--memo on|off] [--memo-capacity K]
//!           [--trace-sample N] [--slow-trace-ms N] [--trace-buffer K]
//! ```
//!
//! Prints `listening on HOST:PORT` once bound (scripts parse this to learn
//! the port when binding `:0`). SIGTERM or SIGINT triggers a graceful
//! shutdown: the acceptor stops admitting, in-flight and queued requests
//! drain, then the process exits 0.

use server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set from the signal handler; polled by the main thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT via the libc `signal(2)`
/// already linked into every Rust binary (no crate dependency needed in
/// this offline environment).
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: preinferd [--addr HOST:PORT] [--io threads|epoll] [--workers N]\n\
         \x20                [--queue N] [--default-deadline-ms N]\n\
         \x20                [--idle-timeout-ms N] [--incremental on|off]\n\
         \x20                [--interproc inline|summary]\n\
         \x20                [--memo on|off] [--memo-capacity K]\n\
         \x20                [--trace-sample N] [--slow-trace-ms N]\n\
         \x20                [--trace-buffer K]\n\
         \n\
         Serves the PreInfer pipeline over the length-prefixed JSON protocol\n\
         (see PROTOCOL.md). Defaults: --addr 127.0.0.1:0 (prints the bound\n\
         port), --workers = cores, --queue 64. SIGTERM drains and exits 0.\n\
         \n\
         --io threads (default) runs the original thread-per-connection\n\
         core; --io epoll runs the event-driven core with request\n\
         pipelining. Served results are identical either way.\n\
         \n\
         --idle-timeout-ms N (default 60000, 0 = off) closes connections\n\
         that stay silent with no in-flight work, with a typed\n\
         `idle_timeout` response.\n\
         \n\
         --incremental on|off (default on) solves prefix-sharing queries\n\
         through warm push/pop solver sessions; served results are\n\
         byte-identical either way — this is a speed knob.\n\
         \n\
         --interproc inline|summary (default inline) chooses how user\n\
         calls are handled: inline unrolls callee bodies; summary applies\n\
         bottom-up callee ψ-summaries at call sites, reusing a\n\
         daemon-lifetime table across requests (α-equivalent callee\n\
         closures hit instead of re-inferring; see `stats.summaries`).\n\
         \n\
         --memo on|off (default off) answers repeat requests for an\n\
         α-equivalent method from the ψ-level response memo without\n\
         re-running inference; --memo-capacity K (default 4096) bounds it.\n\
         Memoized outcomes come only from completed (non-timed-out) runs.\n\
         \n\
         Tracing: --trace-sample N head-samples every N-th request\n\
         (deterministic, 0 = off); --slow-trace-ms T also retains any\n\
         request slower than T ms; --trace-buffer K (default 64) bounds the\n\
         retained-trace ring served by the `trace` verb."
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| usage()),
            "--io" => cfg.io = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--memo" => {
                cfg.memo = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--memo-capacity" => {
                cfg.memo_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--queue" => {
                cfg.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--default-deadline-ms" => {
                cfg.default_deadline_ms =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--interproc" => {
                cfg.interproc = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--incremental" => {
                cfg.incremental = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--trace-sample" => {
                cfg.trace_sample =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--slow-trace-ms" => {
                cfg.slow_trace_ms =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--trace-buffer" => {
                cfg.trace_buffer = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("preinferd: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parsed by scripts; keep the format stable.
    println!("listening on {}", server.local_addr());
    let handle = server.handle();
    while !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("preinferd: signal received, draining …");
    handle.shutdown();
    server.join();
    eprintln!("preinferd: drained, bye");
    ExitCode::SUCCESS
}
