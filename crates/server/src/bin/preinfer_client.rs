//! `preinfer-client` — CLI client and load generator for `preinferd`.
//!
//! ```text
//! preinfer-client --addr HOST:PORT ping
//! preinfer-client --addr HOST:PORT stats
//! preinfer-client --addr HOST:PORT metrics
//! preinfer-client --addr HOST:PORT trace [--last K | --request-id N | --trace-id X]
//! preinfer-client --addr HOST:PORT infer program.ml [--fn NAME]
//!                 [--deadline-ms N] [--tests N] [--jobs N]
//! preinfer-client --addr HOST:PORT corpus [NAME] [--check-offline]
//! preinfer-client --addr HOST:PORT load --requests N --concurrency C
//!                 [--pipeline D] [--duration-s S] [--deadline-ms N]
//!                 [--label-io NAME] [--label-shards N]
//!                 [--out BENCH_server.json]
//! ```
//!
//! * `metrics` prints the daemon's Prometheus text exposition verbatim
//!   (pipe it to a scrape file or `promtool check metrics`).
//! * `trace` prints retained request traces: a summary header per trace on
//!   stderr, the recorded events as JSON lines on stdout — so
//!   `preinfer-client trace --last 1 | preinfer-trace -` just works.
//! * `infer` submits one program and prints the served preconditions.
//! * `corpus` submits evaluation-corpus subjects by name (all of them
//!   without a NAME); with `--check-offline` it also runs the offline
//!   pipeline locally and exits non-zero unless every served ψ is
//!   byte-identical — the scriptable form of the differential test.
//! * `load` is the load generator: C connections submitting N requests
//!   total (or running for `--duration-s` seconds), each keeping
//!   `--pipeline` requests in flight, reporting throughput and latency
//!   quantiles (p50/p90/p99/p99.9) to stdout and to a
//!   `BENCH_server.json` file. `--label-io`/`--label-shards` tag the
//!   report with the server topology being measured.

use server::{served_psis, Client, Histogram, InferRequest};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: preinfer-client --addr HOST:PORT <command>\n\
         \n\
         commands:\n\
         \x20 ping                              liveness check\n\
         \x20 stats                             cache counters + latency histograms\n\
         \x20 metrics                           Prometheus text exposition\n\
         \x20 trace [--last K | --request-id N | --trace-id X]\n\
         \x20                                   retained request traces (events\n\
         \x20                                   as JSON lines on stdout);\n\
         \x20                                   --trace-id fetches a stitched\n\
         \x20                                   multi-process distributed trace\n\
         \x20 infer FILE [--fn NAME] [--deadline-ms N] [--tests N] [--jobs N]\n\
         \x20 corpus [NAME] [--check-offline]   submit corpus subject(s);\n\
         \x20                                   --check-offline diffs against the\n\
         \x20                                   local offline pipeline\n\
         \x20 load --requests N --concurrency C [--pipeline D] [--duration-s S]\n\
         \x20      [--deadline-ms N] [--label-io NAME] [--label-shards N]\n\
         \x20      [--out FILE]                 load generator: C connections,\n\
         \x20                                   D requests in flight each\n\
         \x20                                   (default 1); --duration-s runs\n\
         \x20                                   for S seconds instead of a\n\
         \x20                                   fixed request count (default\n\
         \x20                                   out: BENCH_server.json)"
    );
    std::process::exit(2);
}

struct Common {
    addr: String,
    rest: Vec<String>,
}

fn parse_common() -> Common {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next(),
            "--help" | "-h" => usage(),
            _ => rest.push(a),
        }
    }
    let Some(addr) = addr else { usage() };
    if rest.is_empty() {
        usage();
    }
    Common { addr, rest }
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1).cloned())
}

fn parse_u64_flag(rest: &[String], flag: &str) -> Option<u64> {
    flag_value(rest, flag).map(|v| v.parse().unwrap_or_else(|_| usage()))
}

fn main() -> ExitCode {
    let c = parse_common();
    match c.rest[0].as_str() {
        "ping" => simple(&c.addr, |cl| cl.ping()),
        "stats" => simple(&c.addr, |cl| cl.stats()),
        "metrics" => cmd_metrics(&c),
        "trace" => cmd_trace(&c),
        "infer" => cmd_infer(&c),
        "corpus" => cmd_corpus(&c),
        "load" => cmd_load(&c),
        _ => usage(),
    }
}

fn simple(
    addr: &str,
    f: impl FnOnce(&mut Client) -> Result<server::json::Json, server::ClientError>,
) -> ExitCode {
    let mut cl = match Client::connect(addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    match f(&mut cl) {
        Ok(resp) => {
            println!("{}", render(&resp));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            ExitCode::FAILURE
        }
    }
}

use server::json::render;

/// `metrics`: print the exposition text verbatim, not re-rendered JSON —
/// the output is meant for Prometheus tooling.
fn cmd_metrics(c: &Common) -> ExitCode {
    let mut cl = match Client::connect(&c.addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cl.metrics() {
        Ok(resp) => match resp.str_field("text") {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("preinfer-client: malformed metrics response: {}", render(&resp));
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `trace`: summary per trace on stderr, recorded events as JSON lines on
/// stdout (pipeable straight into `preinfer-trace -`).
fn cmd_trace(c: &Common) -> ExitCode {
    use server::TraceSelect;
    let select = match (
        parse_u64_flag(&c.rest, "--request-id"),
        parse_u64_flag(&c.rest, "--last"),
        flag_value(&c.rest, "--trace-id"),
    ) {
        (Some(rid), None, None) => TraceSelect::ById(rid),
        (None, k, None) => TraceSelect::Last(k.unwrap_or(1).max(1)),
        // Against a router this returns the stitched multi-process trace:
        // the router part plus every shard part sharing the trace id.
        (None, None, Some(tid)) => TraceSelect::ByTraceId(tid),
        _ => usage(),
    };
    let mut cl = match Client::connect(&c.addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    let resp = match cl.trace(select) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(traces) = resp.get("traces").and_then(|t| t.as_array()) else {
        eprintln!("preinfer-client: malformed trace response: {}", render(&resp));
        return ExitCode::FAILURE;
    };
    if traces.is_empty() {
        eprintln!("preinfer-client: no retained traces match");
        return ExitCode::FAILURE;
    }
    for t in traces {
        // The owning tier: the router tags its parts with `process`, the
        // merged shard parts carry their shard index.
        let tier = match (t.str_field("process"), t.u64_field("shard")) {
            (Some(p), _) => format!(" {p}"),
            (None, Some(s)) => format!(" shard={s}"),
            (None, None) => String::new(),
        };
        eprintln!(
            "# request {}{} func={} reason={} trace_id={} queue_us={} service_us={}",
            t.u64_field("request_id").unwrap_or(0),
            tier,
            t.str_field("func").unwrap_or("?"),
            t.str_field("reason").unwrap_or("?"),
            t.str_field("trace_id").unwrap_or("-"),
            t.u64_field("queue_us").unwrap_or(0),
            t.u64_field("service_us").unwrap_or(0),
        );
        for ev in t.get("events").and_then(|e| e.as_array()).unwrap_or(&[]) {
            println!("{}", render(ev));
        }
    }
    ExitCode::SUCCESS
}

fn infer_request_from_flags(program: String, rest: &[String]) -> InferRequest {
    InferRequest {
        program,
        func: flag_value(rest, "--fn"),
        deadline_ms: parse_u64_flag(rest, "--deadline-ms"),
        tests: parse_u64_flag(rest, "--tests").map(|v| v as usize),
        jobs: parse_u64_flag(rest, "--jobs").unwrap_or(1) as usize,
        trace: None,
    }
}

fn cmd_infer(c: &Common) -> ExitCode {
    let Some(path) = c.rest.get(1).filter(|p| !p.starts_with("--")) else { usage() };
    let program = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("preinfer-client: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let req = infer_request_from_flags(program, &c.rest);
    simple(&c.addr, move |cl| cl.infer(&req))
}

fn cmd_corpus(c: &Common) -> ExitCode {
    let check_offline = c.rest.iter().any(|a| a == "--check-offline");
    let name = c.rest.get(1).filter(|a| !a.starts_with("--")).cloned();
    let subjects: Vec<subjects::SubjectMethod> = subjects::all_subjects()
        .into_iter()
        .filter(|m| name.as_deref().map(|n| m.name == n).unwrap_or(true))
        .collect();
    if subjects.is_empty() {
        eprintln!("preinfer-client: no corpus subject named {:?}", name.unwrap_or_default());
        return ExitCode::FAILURE;
    }
    let mut cl = match Client::connect(&c.addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("preinfer-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut mismatches = 0usize;
    for m in &subjects {
        let req = InferRequest {
            program: m.source.to_string(),
            func: Some(m.name.to_string()),
            deadline_ms: None,
            tests: None,
            jobs: 1,
            trace: None,
        };
        let resp = match cl.infer(&req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("preinfer-client: {}: {e}", m.name);
                return ExitCode::FAILURE;
            }
        };
        let Some(served) = served_psis(&resp) else {
            eprintln!("preinfer-client: {}: server error: {}", m.name, render(&resp));
            return ExitCode::FAILURE;
        };
        if check_offline {
            let offline = offline_psis(m);
            if served == offline {
                println!("{}: OK ({} precondition(s) match offline)", m.name, served.len());
            } else {
                mismatches += 1;
                eprintln!(
                    "{}: MISMATCH\n  served:  {:?}\n  offline: {:?}",
                    m.name, served, offline
                );
            }
        } else {
            println!("{}: {} precondition(s): {:?}", m.name, served.len(), served);
        }
    }
    if mismatches > 0 {
        eprintln!("preinfer-client: {mismatches} subject(s) diverged from offline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The offline pipeline's rendered ψ strings for one subject, in ACL order
/// (mirrors `service::run_infer` exactly, minus the daemon).
fn offline_psis(m: &subjects::SubjectMethod) -> Vec<String> {
    let tp = m.compile();
    let suite = testgen::generate_tests(&tp, m.name, &testgen::TestGenConfig::default());
    let cfg = preinfer_core::PreInferConfig::default();
    preinfer_core::infer_all_preconditions(&tp, m.name, &suite, &cfg, 1)
        .iter()
        .map(|(_, inf)| inf.precondition.psi.to_string())
        .collect()
}

fn cmd_load(c: &Common) -> ExitCode {
    let requests = parse_u64_flag(&c.rest, "--requests").unwrap_or(50) as usize;
    let concurrency = (parse_u64_flag(&c.rest, "--concurrency").unwrap_or(4) as usize).max(1);
    let pipeline = (parse_u64_flag(&c.rest, "--pipeline").unwrap_or(1) as usize).max(1);
    let duration_s = parse_u64_flag(&c.rest, "--duration-s");
    let deadline_ms = parse_u64_flag(&c.rest, "--deadline-ms");
    let label_io = flag_value(&c.rest, "--label-io").unwrap_or_else(|| "unknown".to_string());
    let label_shards = parse_u64_flag(&c.rest, "--label-shards").unwrap_or(1);
    let out_path = flag_value(&c.rest, "--out").unwrap_or_else(|| "BENCH_server.json".to_string());
    // A small, fast subject keeps the loop tight; the warm cache makes
    // repeat submissions cheap, which is exactly what we are measuring.
    let subject = subjects::all_subjects()
        .into_iter()
        .find(|m| m.name == "guarded_div")
        .expect("corpus has guarded_div");
    let program = subject.source.to_string();
    let func = subject.name.to_string();

    let latency = Arc::new(Histogram::new());
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let stop_at = duration_s.map(|s| started + std::time::Duration::from_secs(s));
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            let (latency, ok, overloaded, timed_out, failed, next) = (
                Arc::clone(&latency),
                Arc::clone(&ok),
                Arc::clone(&overloaded),
                Arc::clone(&timed_out),
                Arc::clone(&failed),
                Arc::clone(&next),
            );
            let (addr, program, func) = (c.addr.clone(), program.clone(), func.clone());
            scope.spawn(move || {
                let Ok(mut cl) = Client::connect(&addr) else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let req = InferRequest {
                    program,
                    func: Some(func),
                    deadline_ms,
                    tests: None,
                    jobs: 1,
                    trace: None,
                };
                // In duration mode the stop condition is the clock; in
                // request mode it is the shared allocation counter.
                let may_issue = |next: &AtomicUsize| match stop_at {
                    Some(t) => Instant::now() < t,
                    None => next.fetch_add(1, Ordering::Relaxed) < requests,
                };
                // `--pipeline D` keeps D requests in flight per
                // connection; responses can complete out of order (the
                // daemon's workers finish in any order), so each carries
                // a unique id and latency is matched by id.
                let mut pending: std::collections::HashMap<String, Instant> =
                    std::collections::HashMap::new();
                let mut seq = 0u64;
                loop {
                    while pending.len() < pipeline && may_issue(&next) {
                        let id = format!("q{seq}");
                        seq += 1;
                        let frame = server::protocol::render_infer(Some(&id), &req);
                        if server::protocol::write_frame(cl.stream_mut(), &frame).is_err() {
                            failed.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        pending.insert(id, Instant::now());
                    }
                    if pending.is_empty() {
                        return;
                    }
                    let resp = match server::protocol::read_frame(cl.stream_mut())
                        .ok()
                        .and_then(|text| server::json::parse(&text).ok())
                    {
                        Some(r) => r,
                        None => {
                            // Connection gone: every in-flight request dies.
                            failed.fetch_add(pending.len() as u64, Ordering::Relaxed);
                            return;
                        }
                    };
                    if let Some(t0) = resp.str_field("id").and_then(|id| pending.remove(id)) {
                        latency.record(t0.elapsed());
                    }
                    if resp.str_field("error") == Some("overloaded") {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    } else if resp.get("ok").and_then(|v| v.as_bool()) == Some(true) {
                        ok.fetch_add(1, Ordering::Relaxed);
                        if resp.get("timed_out").and_then(|v| v.as_bool()) == Some(true) {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let (p50, p90, p99) = latency.percentiles_us();
    let p999 = latency.quantile_us(0.999);
    let completed = ok.load(Ordering::Relaxed);
    let report = server::json::ObjBuilder::new()
        .str("workload", "guarded_div infer")
        .str("io_mode", &label_io)
        .u64("shards", label_shards)
        .u64("requests", if stop_at.is_some() { completed } else { requests as u64 })
        .u64("concurrency", concurrency as u64)
        .u64("pipeline_depth", pipeline as u64)
        .u64("duration_s", duration_s.unwrap_or(0))
        .u64("completed", completed)
        .u64("overloaded", overloaded.load(Ordering::Relaxed))
        .u64("timed_out", timed_out.load(Ordering::Relaxed))
        .u64("failed", failed.load(Ordering::Relaxed))
        .f64("wall_s", elapsed)
        .f64("throughput_rps", if elapsed > 0.0 { completed as f64 / elapsed } else { 0.0 })
        .f64("p50_ms", p50 as f64 / 1e3)
        .f64("p90_ms", p90 as f64 / 1e3)
        .f64("p99_ms", p99 as f64 / 1e3)
        .f64("p999_ms", p999 as f64 / 1e3)
        .f64("mean_ms", latency.mean_us() as f64 / 1e3)
        .build();
    println!("{report}");
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("preinfer-client: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
