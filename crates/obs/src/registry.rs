//! A unified metrics registry with Prometheus text-format exposition.
//!
//! Every number a process knows — cache counters, solver-tier counters,
//! verb counters, queue depth, stage histograms — registers here once,
//! under a stable metric name with static labels, and is scraped from one
//! place ([`MetricsRegistry::render_prometheus`]) instead of being
//! hand-assembled per consumer. The registry is *pull-based*: counters and
//! gauges are closures read at scrape time (the sources keep their own
//! atomics; registration adds zero cost to any hot path), and histograms
//! are shared [`Histogram`] handles rendered as cumulative buckets.
//!
//! Exposition follows the Prometheus text format, version 0.0.4: one
//! `# HELP` and `# TYPE` header per metric family, one
//! `name{label="value"} number` line per series, and for histograms the
//! `_bucket{le="..."}` / `_sum` / `_count` triplet with cumulative bucket
//! counts ending in `le="+Inf"`. Families render in registration order;
//! series within a family in registration order too, so output is
//! deterministic.

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The kind of a metric family (drives the `# TYPE` header and which
/// sources a family accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A latency [`Histogram`] (microsecond buckets).
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Source {
    Counter(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Box<dyn Fn() -> HistogramSnapshot + Send + Sync>),
}

struct Series {
    labels: Vec<(&'static str, String)>,
    source: Source,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A process-wide registry of metric families. Share it as an `Arc`;
/// registration and scraping both take `&self`.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("metrics registry");
        f.debug_struct("MetricsRegistry").field("families", &families.len()).finish()
    }
}

/// `true` for a legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` for a legal label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value (`\`, `"` and newlines, per the text format).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers one counter series: `name{labels} = f()` at scrape time.
    /// Registering the same family name again appends a series (the kind
    /// and help of the first registration win).
    ///
    /// # Panics
    /// On an invalid metric or label name, or a kind clash with an
    /// existing family of the same name — both programmer errors.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Counter, labels, Source::Counter(Box::new(f)));
    }

    /// Registers one gauge series: `name{labels} = f()` at scrape time.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Gauge, labels, Source::Gauge(Box::new(f)));
    }

    /// Registers one histogram series. `f` snapshots the backing
    /// [`Histogram`](crate::Histogram) at scrape time (typically
    /// `move || h.snapshot()` over a captured `Arc`), and the snapshot is
    /// rendered as cumulative `_bucket` / `_sum` / `_count` lines with
    /// `le` bounds in microseconds — name your metric `*_us` accordingly.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Histogram, labels, Source::Histogram(Box::new(f)));
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
        source: Source,
    ) {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name `{k}` on `{name}`");
        }
        let series =
            Series { labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(), source };
        let mut families = self.families.lock().expect("metrics registry");
        match families.iter_mut().find(|f| f.name == name) {
            Some(fam) => {
                assert_eq!(fam.kind, kind, "metric `{name}` registered with two kinds");
                fam.series.push(series);
            }
            None => families.push(Family { name, help, kind, series: vec![series] }),
        }
    }

    /// Renders every registered family in the Prometheus text format
    /// (version 0.0.4). Sources are read at call time.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry");
        let mut out = String::with_capacity(families.len() * 128);
        for fam in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.label());
            for s in &fam.series {
                match &s.source {
                    Source::Counter(f) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, label_set(&s.labels, &[]), f());
                    }
                    Source::Gauge(f) => {
                        let _ =
                            writeln!(out, "{}{} {}", fam.name, label_set(&s.labels, &[]), num(f()));
                    }
                    Source::Histogram(f) => render_histogram(&mut out, fam.name, &s.labels, f()),
                }
            }
        }
        out
    }
}

/// Renders a `{k="v",...}` label set (empty string with no labels);
/// `extra` appends already-escaped pairs such as `le`.
fn label_set(labels: &[(&'static str, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
    format!("{{{}}}", parts.join(","))
}

/// Renders an `f64` the way Prometheus expects (no exponent surprises for
/// the integral values we mostly emit).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    snap: HistogramSnapshot,
) {
    // Self-consistent snapshot: derive `_count` and `+Inf` from the bucket
    // sum itself, so a scrape racing `record` never shows count < buckets.
    // The log-linear histogram has hundreds of fine buckets, most empty;
    // only occupied bounds get a `_bucket` line (cumulative counts stay
    // monotone over any subset of bounds, so the exposition stays legal).
    let mut cumulative = 0u64;
    for (k, (bound, count)) in snap.buckets_us.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        cumulative += count;
        let mut line = format!(
            "{name}_bucket{} {cumulative}",
            label_set(labels, &[("le", bound.to_string())])
        );
        // OpenMetrics exemplar: ` # {trace_id="..."} value` after the
        // bucket the exemplar's sample landed in.
        if let Some(ex) = snap.exemplars.iter().find(|e| e.bucket == k) {
            let _ = write!(
                line,
                " # {{trace_id=\"{}\"}} {}",
                escape_label_value(&ex.trace_id),
                ex.value_us
            );
        }
        let _ = writeln!(out, "{line}");
    }
    let _ =
        writeln!(out, "{name}_bucket{} {cumulative}", label_set(labels, &[("le", "+Inf".into())]));
    let _ = writeln!(out, "{name}_sum{} {}", label_set(labels, &[]), snap.sum_us);
    let _ = writeln!(out, "{name}_count{} {cumulative}", label_set(labels, &[]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_current_values() {
        let reg = MetricsRegistry::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        reg.counter("cache_hits_total", "Cache hits.", &[], move || h2.load(Ordering::Relaxed));
        reg.gauge("queue_depth", "Requests waiting.", &[], || 3.0);
        hits.store(7, Ordering::Relaxed);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP cache_hits_total Cache hits.\n"), "{text}");
        assert!(text.contains("# TYPE cache_hits_total counter\n"), "{text}");
        assert!(text.contains("\ncache_hits_total 7\n"), "{text}");
        assert!(text.contains("\nqueue_depth 3\n"), "{text}");
    }

    #[test]
    fn series_of_one_family_share_one_header() {
        let reg = MetricsRegistry::new();
        reg.counter("tier_answers_total", "Answers per tier.", &[("tier", "interval")], || 2);
        reg.counter("tier_answers_total", "Answers per tier.", &[("tier", "simplex")], || 5);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE tier_answers_total").count(), 1, "{text}");
        assert!(text.contains("tier_answers_total{tier=\"interval\"} 2\n"), "{text}");
        assert!(text.contains("tier_answers_total{tier=\"simplex\"} 5\n"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = Arc::new(Histogram::new());
        h.record(Duration::from_micros(100)); // sub-bucket bound 103
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(50)); // sub-bucket bound 53247
        reg.histogram("stage_duration_us", "Stage latency.", &[("stage", "prune")], move || {
            h.snapshot()
        });
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE stage_duration_us histogram\n"), "{text}");
        assert!(
            text.contains("stage_duration_us_bucket{stage=\"prune\",le=\"103\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_duration_us_bucket{stage=\"prune\",le=\"53247\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_duration_us_bucket{stage=\"prune\",le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("stage_duration_us_sum{stage=\"prune\"} 50200\n"), "{text}");
        assert!(text.contains("stage_duration_us_count{stage=\"prune\"} 3\n"), "{text}");
        // Empty fine buckets are elided — two occupied bounds, one +Inf.
        assert_eq!(text.matches("stage_duration_us_bucket").count(), 3, "{text}");
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn exemplars_render_on_their_buckets() {
        let reg = MetricsRegistry::new();
        let h = Arc::new(Histogram::new());
        h.record(Duration::from_micros(100)); // too fast for an exemplar slot
        h.record_with_exemplar(Duration::from_millis(50), "00ff00ff00ff00ff00ff00ff00ff00ff");
        reg.histogram("verb_duration_us", "Verb latency.", &[("verb", "infer")], move || {
            h.snapshot()
        });
        let text = reg.render_prometheus();
        assert!(
            text.contains(
                "verb_duration_us_bucket{verb=\"infer\",le=\"53247\"} 2 \
                 # {trace_id=\"00ff00ff00ff00ff00ff00ff00ff00ff\"} 50000\n"
            ),
            "{text}"
        );
        // The fast bucket carries no exemplar.
        assert!(text.contains("verb_duration_us_bucket{verb=\"infer\",le=\"103\"} 1\n"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge("g", "Gauge.", &[("path", "a\"b\\c\nd")], || 1.0);
        let text = reg.render_prometheus();
        assert!(text.contains("g{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_panic() {
        MetricsRegistry::new().counter("9bad", "x", &[], || 0);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "x", &[], || 0);
        reg.gauge("m", "x", &[], || 0.0);
    }

    #[test]
    fn every_line_matches_the_text_format() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "A.", &[("k", "v")], || 1);
        reg.gauge("b", "B.", &[], || 0.5);
        let h = Arc::new(Histogram::new());
        h.record(Duration::from_micros(3));
        h.record_with_exemplar(Duration::from_millis(80), "deadbeef");
        reg.histogram("c_us", "C.", &[], move || h.snapshot());
        for line in reg.render_prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            // name{labels} value [# {exemplar-labels} exemplar-value] —
            // both the sample and any exemplar value parse as floats.
            let (sample, exemplar) = match line.split_once(" # ") {
                Some((s, ex)) => (s, Some(ex)),
                None => (line, None),
            };
            let (_, value) = sample.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable value in: {line}"
            );
            if let Some(ex) = exemplar {
                let (labels, exval) = ex.rsplit_once(' ').expect("exemplar has a value");
                assert!(labels.starts_with('{') && labels.ends_with('}'), "bad exemplar: {line}");
                assert!(exval.parse::<f64>().is_ok(), "unparseable exemplar value: {line}");
            }
        }
    }
}
