//! Offline analysis of a recorded JSON-lines trace.
//!
//! [`TraceSink`](crate::TraceSink) histograms attribute *inclusive* time —
//! a `prune` span's duration contains every nested `solver` call — so any
//! question of the form "where did the time actually go" needs the span
//! tree back. This module reconstructs it from the `span_start` /
//! `span_end` parent links, attributes `solver_call` events to the span
//! they fired in, and derives:
//!
//! * per-stage **exclusive self-time** (a span's duration minus its direct
//!   children and its own solver calls),
//! * the **critical path** (the heaviest root span, descending into the
//!   heaviest child at each level),
//! * the **top-k slowest solver calls** with their tier / cache-lookup /
//!   predicate-count fields, and
//! * **folded stacks** (`stage;stage;stage exclusive_us`) consumable by
//!   standard flamegraph tooling.
//!
//! The trace format is the flat JSON-object-per-line stream the sink
//! itself writes (every value is a string, integer, boolean or null — no
//! nesting), so the parser here is a small flat-object reader rather than
//! a full JSON implementation; it is shared by `preinfer --trace-out`'s
//! stage breakdown and the `preinfer-trace` binary.
//!
//! ## Multi-process merges
//!
//! A stitched distributed trace (the router's `trace --trace-id X` verb)
//! concatenates the line streams of several processes, each headed by its
//! own `trace_meta` line. Span ids are process-local (every sink numbers
//! from 1), so [`TraceAnalysis::from_lines`] splits the input into
//! sections at `trace_meta` boundaries and offsets each section's ids by
//! a per-section base before inserting them into one tree. The first
//! populated section is the *primary* (the tier that minted the trace —
//! the router in a routed topology); every later section's `trace_meta`
//! names its parent span **in the primary's numbering** (the propagated
//! `parent_span_id`), and the section is grafted there: its `run` summary
//! becomes a synthesized `run` span holding the section's roots, so a
//! shard's service time appears as one node under the router's
//! `upstream_rtt`. A named parent that never arrived degrades to extra
//! roots (orphan sections are tolerated, not an error), duplicate span
//! ids across shards cannot alias (namespacing is positional), and no
//! arithmetic ever mixes `t_us` timestamps from different sections —
//! they are process-relative, so cross-host clock skew is moot.

use std::collections::BTreeMap;

/// One field value of a flat trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    U(u64),
    I(i64),
    F(f64),
    S(String),
    B(bool),
    Null,
}

impl Field {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Field::U(v) => Some(*v),
            Field::I(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Field::S(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line (`{"k":v,...}`, no nested arrays or
/// objects). `None` on anything malformed — callers skip such lines.
pub fn parse_flat_line(line: &str) -> Option<BTreeMap<String, Field>> {
    let bytes = line.trim().as_bytes();
    let mut p = Flat { bytes, pos: 0 };
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.ws();
    if p.peek() == Some(b'}') {
        return Some(map);
    }
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        let value = p.value()?;
        map.insert(key, value);
        p.ws();
        match p.next_byte()? {
            b',' => continue,
            b'}' => break,
            _ => return None,
        }
    }
    p.ws();
    if p.pos == p.bytes.len() {
        Some(map)
    } else {
        None
    }
}

struct Flat<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Flat<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        (self.next_byte()? == b).then_some(())
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Option<Field> {
        match self.peek()? {
            b'"' => Some(Field::S(self.string()?)),
            b't' => self.literal("true", Field::B(true)),
            b'f' => self.literal("false", Field::B(false)),
            b'n' => self.literal("null", Field::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn literal(&mut self, word: &str, v: Field) -> Option<Field> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<Field> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if !fractional {
            if let Ok(v) = s.parse::<u64>() {
                return Some(Field::U(v));
            }
            if let Ok(v) = s.parse::<i64>() {
                return Some(Field::I(v));
            }
        }
        s.parse::<f64>().ok().filter(|v| v.is_finite()).map(Field::F)
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Some(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let end = self.pos.checked_add(4)?;
                        let hex = self.bytes.get(self.pos..end)?;
                        let cp = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(cp)?);
                        self.pos = end;
                    }
                    _ => return None,
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8 scalar: copy its continuation bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).ok()?);
                    self.pos = end;
                    let _ = c;
                }
            }
        }
    }
}

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: u64,
    pub parent: Option<u64>,
    pub stage: String,
    /// Inclusive duration from `span_end`; 0 for spans never closed.
    pub dur_us: u64,
    /// Direct child span ids, in start order.
    pub children: Vec<u64>,
    /// Total duration of `solver_call` events fired inside this span
    /// (not inside a child).
    pub solver_us: u64,
    /// Number of such solver calls.
    pub solver_calls: u64,
    /// The recording process (from the section's `trace_meta`), empty for
    /// traces recorded without one.
    pub process: String,
}

/// One `solver_call` event.
#[derive(Debug, Clone)]
pub struct SolverCall {
    /// The span the call fired in, if any.
    pub span: Option<u64>,
    pub preds: u64,
    pub verdict: String,
    /// Cache-lookup label (`hit` / `miss` / `bypass`).
    pub lookup: String,
    /// Answering tier (`syntactic` / `interval` / `simplex` / `none`).
    pub tier: String,
    pub dur_us: u64,
    /// Line number in the input, for stable ordering of equal durations.
    pub seq: usize,
}

/// The trailing `run` summary event, when present.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    pub func: String,
    pub dur_us: u64,
}

/// Per-stage aggregate over the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    pub stage: String,
    /// Number of spans (for `solver`: number of calls).
    pub count: u64,
    /// Sum of span durations (contains nested work).
    pub inclusive_us: u64,
    /// Sum of span self-times (children and solver calls subtracted).
    pub exclusive_us: u64,
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    pub stage: String,
    pub id: u64,
    pub dur_us: u64,
}

/// A fully reconstructed trace — possibly merged from several processes.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    pub spans: BTreeMap<u64, Span>,
    /// Spans with no parent, in start order.
    pub roots: Vec<u64>,
    pub solver_calls: Vec<SolverCall>,
    /// The primary section's `run` summary (a shard section's `run`
    /// becomes a synthesized span instead — see the module docs).
    pub run: Option<RunInfo>,
    /// Total lines seen / lines that failed to parse as flat objects.
    pub lines: usize,
    pub skipped: usize,
    /// The shared 128-bit trace id, from the first `trace_meta` line.
    pub trace_id: Option<String>,
    /// Process labels of populated sections, in input order. Empty for a
    /// trace recorded without a `trace_meta` header.
    pub processes: Vec<String>,
}

/// One per-process section of the input stream, delimited by `trace_meta`
/// lines. Span ids inside a section are process-local; `base` namespaces
/// them in the merged tree.
struct Section {
    process: String,
    /// Parent span in the primary section's numbering, from the
    /// propagated trace context.
    parent_span: Option<u64>,
    base: u64,
    run: Option<RunInfo>,
    /// Remapped ids of this section's parentless spans, in start order.
    roots: Vec<u64>,
    /// Whether any span / solver / run event landed here.
    populated: bool,
}

impl TraceAnalysis {
    /// Builds the analysis from trace lines. `Err` when no line parsed.
    pub fn from_lines<'a>(
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<TraceAnalysis, String> {
        let mut a = TraceAnalysis::default();
        // Section 0 is the implicit pre-`trace_meta` prefix (a plain
        // `--trace-out` stream has no meta at all); every `trace_meta`
        // line opens a new section whose span ids get a fresh base.
        let mut sections = vec![Section {
            process: String::new(),
            parent_span: None,
            base: 0,
            run: None,
            roots: Vec::new(),
            populated: false,
        }];
        let mut next_id = 0u64; // highest remapped span id seen so far
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            a.lines += 1;
            let Some(fields) = parse_flat_line(line) else {
                a.skipped += 1;
                continue;
            };
            let get_u = |k: &str| fields.get(k).and_then(Field::as_u64);
            let get_s =
                |k: &str| fields.get(k).and_then(Field::as_str).unwrap_or_default().to_string();
            if fields.get("ev").and_then(Field::as_str) == Some("trace_meta") {
                if a.trace_id.is_none() {
                    let tid = get_s("trace_id");
                    if !tid.is_empty() {
                        a.trace_id = Some(tid);
                    }
                }
                sections.push(Section {
                    process: get_s("process"),
                    parent_span: get_u("parent_span"),
                    base: next_id,
                    run: None,
                    roots: Vec::new(),
                    populated: false,
                });
                continue;
            }
            let sec = sections.last_mut().expect("sections is never empty");
            match fields.get("ev").and_then(Field::as_str) {
                Some("span_start") => {
                    let Some(raw) = get_u("id") else { continue };
                    sec.populated = true;
                    let id = raw + sec.base;
                    next_id = next_id.max(id);
                    let parent = get_u("parent").map(|p| p + sec.base);
                    if let Some(p) = parent.and_then(|p| a.spans.get_mut(&p)) {
                        p.children.push(id);
                    }
                    if parent.is_none() {
                        sec.roots.push(id);
                    }
                    a.spans.insert(
                        id,
                        Span {
                            id,
                            parent,
                            stage: get_s("stage"),
                            dur_us: 0,
                            children: Vec::new(),
                            solver_us: 0,
                            solver_calls: 0,
                            process: sec.process.clone(),
                        },
                    );
                }
                Some("span_end") => {
                    sec.populated = true;
                    if let Some(span) =
                        get_u("id").map(|id| id + sec.base).and_then(|id| a.spans.get_mut(&id))
                    {
                        span.dur_us = get_u("dur_us").unwrap_or(0);
                    }
                }
                Some("solver_call") => {
                    sec.populated = true;
                    let call = SolverCall {
                        span: get_u("span").map(|s| s + sec.base),
                        preds: get_u("preds").unwrap_or(0),
                        verdict: get_s("verdict"),
                        lookup: get_s("lookup"),
                        tier: get_s("tier"),
                        dur_us: get_u("dur_us").unwrap_or(0),
                        seq: a.lines,
                    };
                    if let Some(span) = call.span.and_then(|id| a.spans.get_mut(&id)) {
                        span.solver_us += call.dur_us;
                        span.solver_calls += 1;
                    }
                    a.solver_calls.push(call);
                }
                Some("run") => {
                    sec.populated = true;
                    sec.run =
                        Some(RunInfo { func: get_s("func"), dur_us: get_u("dur_us").unwrap_or(0) })
                }
                _ => {}
            }
        }
        if a.lines == a.skipped {
            return Err("no parseable trace lines".to_string());
        }

        // Stitch: the first populated section is the primary tree; every
        // later populated section grafts under the primary span its
        // `trace_meta` named. A section with a `run` summary gets a
        // synthesized `run` span holding its roots (the shard's service
        // time as one node); one without grafts its roots directly. A
        // parent id that resolves to no recorded span leaves the section
        // as extra roots — orphans are tolerated, not an error.
        let populated: Vec<usize> =
            (0..sections.len()).filter(|&i| sections[i].populated).collect();
        let Some(&pi) = populated.first() else { return Ok(a) };
        let primary_base = sections[pi].base;
        a.run = sections[pi].run.take();
        a.roots = std::mem::take(&mut sections[pi].roots);
        if !sections[pi].process.is_empty() {
            a.processes.push(sections[pi].process.clone());
        }
        for &i in &populated[1..] {
            let sec = &mut sections[i];
            let run = sec.run.take();
            let roots = std::mem::take(&mut sec.roots);
            let process = sec.process.clone();
            let parent =
                sec.parent_span.map(|p| p + primary_base).filter(|p| a.spans.contains_key(p));
            if !process.is_empty() {
                a.processes.push(process.clone());
            }
            match run {
                Some(run) => {
                    next_id += 1;
                    let id = next_id;
                    for r in &roots {
                        if let Some(sp) = a.spans.get_mut(r) {
                            sp.parent = Some(id);
                        }
                    }
                    match parent {
                        Some(p) => a.spans.get_mut(&p).expect("filtered above").children.push(id),
                        None => a.roots.push(id),
                    }
                    a.spans.insert(
                        id,
                        Span {
                            id,
                            parent,
                            stage: "run".to_string(),
                            dur_us: run.dur_us,
                            children: roots,
                            solver_us: 0,
                            solver_calls: 0,
                            process,
                        },
                    );
                }
                None => match parent {
                    Some(p) => {
                        for r in &roots {
                            if let Some(sp) = a.spans.get_mut(r) {
                                sp.parent = Some(p);
                            }
                        }
                        a.spans.get_mut(&p).expect("filtered above").children.extend(roots);
                    }
                    None => a.roots.extend(roots),
                },
            }
        }
        Ok(a)
    }

    /// A span's exclusive self-time: inclusive duration minus direct
    /// children and its own solver calls (saturating — clock jitter can
    /// make nested sums exceed the parent by a few µs).
    pub fn exclusive_us(&self, id: u64) -> u64 {
        let Some(span) = self.spans.get(&id) else { return 0 };
        let children: u64 =
            span.children.iter().filter_map(|c| self.spans.get(c)).map(|c| c.dur_us).sum();
        span.dur_us.saturating_sub(children + span.solver_us)
    }

    /// Per-stage totals, pipeline-stage order first, then any unknown
    /// stages alphabetically. `solver` aggregates the solver-call events
    /// (its time is exclusive by definition).
    pub fn stage_totals(&self) -> Vec<StageTotal> {
        let mut by_stage: BTreeMap<&str, StageTotal> = BTreeMap::new();
        for span in self.spans.values() {
            let agg = by_stage.entry(span.stage.as_str()).or_insert_with(|| StageTotal {
                stage: span.stage.clone(),
                count: 0,
                inclusive_us: 0,
                exclusive_us: 0,
            });
            agg.count += 1;
            agg.inclusive_us += span.dur_us;
            agg.exclusive_us += self.exclusive_us(span.id);
        }
        let solver_us: u64 = self.solver_calls.iter().map(|c| c.dur_us).sum();
        if !self.solver_calls.is_empty() {
            let agg = by_stage.entry("solver").or_insert_with(|| StageTotal {
                stage: "solver".to_string(),
                count: 0,
                inclusive_us: 0,
                exclusive_us: 0,
            });
            agg.count += self.solver_calls.len() as u64;
            agg.inclusive_us += solver_us;
            agg.exclusive_us += solver_us;
        }
        let rank = |stage: &str| {
            crate::Stage::ALL
                .iter()
                .position(|s| s.label() == stage)
                .unwrap_or(crate::Stage::ALL.len())
        };
        let mut out: Vec<StageTotal> = by_stage.into_values().collect();
        out.sort_by(|a, b| rank(&a.stage).cmp(&rank(&b.stage)).then(a.stage.cmp(&b.stage)));
        out
    }

    /// Sum of exclusive self-times across all spans plus all solver calls
    /// — the "where did the time go" total, ≤ wall clock for a single-
    /// threaded trace.
    pub fn exclusive_total_us(&self) -> u64 {
        self.spans.keys().map(|&id| self.exclusive_us(id)).sum::<u64>()
            + self.solver_calls.iter().map(|c| c.dur_us).sum::<u64>()
    }

    /// Exclusive self-time per process, in [`Self::processes`] order —
    /// the cross-tier "where did the time go" split of a merged trace.
    /// Solver calls attribute to their enclosing span's process; calls
    /// outside any span fall to the first process. Empty for a trace
    /// recorded without a `trace_meta` header.
    pub fn process_totals(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for p in &self.processes {
            // Several shard sections share one process label; merge them.
            if !out.iter().any(|(q, _)| q == p) {
                out.push((p.clone(), 0));
            }
        }
        for span in self.spans.values() {
            if let Some(i) = out.iter().position(|(p, _)| p == &span.process) {
                out[i].1 += self.exclusive_us(span.id) + span.solver_us;
            }
        }
        let orphan_solver: u64 =
            self.solver_calls.iter().filter(|c| c.span.is_none()).map(|c| c.dur_us).sum();
        if let Some(first) = out.first_mut() {
            first.1 += orphan_solver;
        }
        out
    }

    /// The critical path: starting from the heaviest root span, descend
    /// into the heaviest direct child until a leaf. Empty without spans.
    pub fn critical_path(&self) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = self
            .roots
            .iter()
            .filter_map(|id| self.spans.get(id))
            .max_by_key(|s| (s.dur_us, std::cmp::Reverse(s.id)));
        while let Some(span) = cur {
            path.push(PathStep { stage: span.stage.clone(), id: span.id, dur_us: span.dur_us });
            cur = span
                .children
                .iter()
                .filter_map(|id| self.spans.get(id))
                .max_by_key(|s| (s.dur_us, std::cmp::Reverse(s.id)));
        }
        path
    }

    /// The `k` slowest solver calls, slowest first (ties: input order).
    pub fn top_solver_calls(&self, k: usize) -> Vec<&SolverCall> {
        let mut calls: Vec<&SolverCall> = self.solver_calls.iter().collect();
        calls.sort_by_key(|c| (std::cmp::Reverse(c.dur_us), c.seq));
        calls.truncate(k);
        calls
    }

    /// Folded stacks: `stage;stage;… exclusive_us`, one entry per distinct
    /// stack, sorted by stack string — the input format of flamegraph
    /// tooling. Solver calls fold one level deeper than their span.
    pub fn folded_stacks(&self) -> Vec<(String, u64)> {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for span in self.spans.values() {
            let stack = self.stack_of(span.id);
            let excl = self.exclusive_us(span.id);
            if excl > 0 {
                *folded.entry(stack.clone()).or_insert(0) += excl;
            }
            if span.solver_us > 0 {
                *folded.entry(format!("{stack};solver")).or_insert(0) += span.solver_us;
            }
        }
        // Solver calls outside any span still deserve a frame.
        let orphan_solver: u64 =
            self.solver_calls.iter().filter(|c| c.span.is_none()).map(|c| c.dur_us).sum();
        if orphan_solver > 0 {
            *folded.entry("solver".to_string()).or_insert(0) += orphan_solver;
        }
        folded.into_iter().collect()
    }

    /// Wall clock: the `run` event when present, else the summed duration
    /// of root spans.
    pub fn wall_us(&self) -> u64 {
        match &self.run {
            Some(run) if run.dur_us > 0 => run.dur_us,
            _ => self.roots.iter().filter_map(|id| self.spans.get(id)).map(|s| s.dur_us).sum(),
        }
    }

    fn stack_of(&self, id: u64) -> String {
        let mut stages = Vec::new();
        let mut cur = self.spans.get(&id);
        while let Some(span) = cur {
            stages.push(span.stage.as_str());
            cur = span.parent.and_then(|p| self.spans.get(&p));
        }
        stages.reverse();
        stages.join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stage, TraceSink, Val};
    use std::time::Duration;

    #[test]
    fn flat_parser_reads_sink_lines() {
        let m = parse_flat_line(
            r#"{"ev":"solver_call","seq":3,"span":2,"preds":4,"verdict":"unsat","lookup":"miss","tier":"interval","dur_us":17}"#,
        )
        .unwrap();
        assert_eq!(m["ev"], Field::S("solver_call".into()));
        assert_eq!(m["span"].as_u64(), Some(2));
        assert_eq!(m["dur_us"].as_u64(), Some(17));
        assert_eq!(m["verdict"].as_str(), Some("unsat"));
        let esc =
            parse_flat_line(r#"{"pred":"s[\"x\"] != null\\p\n","ok":true,"p":null}"#).unwrap();
        assert_eq!(esc["pred"].as_str(), Some("s[\"x\"] != null\\p\n"));
        assert_eq!(esc["ok"], Field::B(true));
        assert_eq!(esc["p"], Field::Null);
        assert!(parse_flat_line("not json").is_none());
        assert!(parse_flat_line(r#"{"a":[1]}"#).is_none(), "nested values are not flat");
    }

    /// Builds a real recorded trace through the sink, then checks the
    /// reconstruction subtracts children and solver calls correctly.
    #[test]
    fn exclusive_time_subtracts_children_and_solver_calls() {
        let sink = TraceSink::recording();
        {
            let _prune = sink.span(Stage::Prune);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _guard = sink.span(Stage::PassingGuard);
                std::thread::sleep(Duration::from_millis(2));
            }
            sink.solver_call(3, "sat", "miss", "simplex", Duration::from_millis(3));
        }
        let lines = sink.lines();
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.roots.len(), 1);
        let root = a.roots[0];
        let prune = &a.spans[&root];
        assert_eq!(prune.stage, "prune");
        assert_eq!(prune.solver_calls, 1);
        let guard_id = prune.children[0];
        let excl = a.exclusive_us(root);
        let guard_dur = a.spans[&guard_id].dur_us;
        assert_eq!(excl, prune.dur_us - guard_dur - prune.solver_us);
        // The 4 ms self-sleep is split between exclusive time and the
        // (synthetic, unslept) 3 ms solver event that gets subtracted.
        assert!(
            excl + prune.solver_us >= 3_500,
            "prune slept ≥4ms outside its child, got excl {excl} + solver {} µs",
            prune.solver_us
        );
        assert!(excl < prune.dur_us, "exclusive must subtract nested work");

        let totals = a.stage_totals();
        let by_name = |n: &str| totals.iter().find(|t| t.stage == n).unwrap();
        assert_eq!(by_name("prune").exclusive_us, excl);
        assert_eq!(by_name("passing_guard").exclusive_us, guard_dur);
        assert_eq!(by_name("solver").count, 1);
        assert_eq!(by_name("solver").exclusive_us, 3_000);
        // Stage order follows the pipeline.
        assert_eq!(
            totals.iter().map(|t| t.stage.as_str()).collect::<Vec<_>>(),
            vec!["prune", "passing_guard", "solver"]
        );

        let path = a.critical_path();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].stage, "prune");
        assert_eq!(path[1].stage, "passing_guard");

        let folded = a.folded_stacks();
        assert!(folded.iter().any(|(s, _)| s == "prune"));
        assert!(folded.iter().any(|(s, _)| s == "prune;passing_guard"));
        assert!(folded.iter().any(|(s, v)| s == "prune;solver" && *v == 3_000));
        // Folded exclusive values sum to the exclusive total.
        assert_eq!(folded.iter().map(|(_, v)| v).sum::<u64>(), a.exclusive_total_us());
    }

    #[test]
    fn top_solver_calls_sorts_by_duration() {
        let sink = TraceSink::recording();
        sink.solver_call(1, "sat", "miss", "interval", Duration::from_micros(5));
        sink.solver_call(9, "unsat", "miss", "simplex", Duration::from_micros(500));
        sink.solver_call(2, "sat", "hit", "syntactic", Duration::from_micros(50));
        let lines = sink.lines();
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();
        let top = a.top_solver_calls(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].preds, 9);
        assert_eq!(top[0].tier, "simplex");
        assert_eq!(top[1].preds, 2);
        assert_eq!(top[1].lookup, "hit");
    }

    #[test]
    fn run_event_supplies_wall_clock() {
        let sink = TraceSink::recording();
        {
            let _s = sink.span(Stage::TestGen);
        }
        sink.event("run", &[("func", Val::S("f")), ("dur_us", Val::U(1234))]);
        let lines = sink.lines();
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.wall_us(), 1234);
        assert_eq!(a.run.as_ref().unwrap().func, "f");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(TraceAnalysis::from_lines([]).is_err());
        assert!(TraceAnalysis::from_lines(["garbage", "more garbage"]).is_err());
    }

    const TID: &str = "00112233445566778899aabbccddeeff";

    /// A router section (flat spans) followed by a shard section whose
    /// `trace_meta` names the router's `upstream_rtt` span: builds real
    /// sinks, merges their lines, and checks the shard's work lands as a
    /// synthesized `run` node under the rtt span.
    #[test]
    fn merged_sections_nest_shard_spans_under_router_rtt() {
        let router = TraceSink::recording_in_trace("preinfer-router", TID, None);
        let route = router.begin_span("route", None);
        let decide = router.begin_span("route_decide", Some(route));
        router.end_span(decide, "route_decide", Duration::from_micros(40));
        let rtt = router.begin_span("upstream_rtt", Some(route));
        router.end_span(rtt, "upstream_rtt", Duration::from_micros(5_000));
        router.end_span(route, "route", Duration::from_micros(5_200));

        let shard = TraceSink::recording_in_trace("preinferd", TID, Some(rtt));
        {
            let _t = shard.span(Stage::TestGen);
            std::thread::sleep(Duration::from_millis(1));
            shard.solver_call(2, "unsat", "miss", "interval", Duration::from_micros(300));
        }
        shard.event("run", &[("func", Val::S("m")), ("dur_us", Val::U(4_000))]);

        let mut lines = router.lines();
        lines.extend(shard.lines());
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();

        assert_eq!(a.trace_id.as_deref(), Some(TID));
        assert_eq!(a.processes, vec!["preinfer-router", "preinferd"]);
        // route + route_decide + upstream_rtt + shard testgen + synthesized run.
        assert_eq!(a.spans.len(), 5);
        assert_eq!(a.roots.len(), 1, "one merged tree, root = route");
        assert!(a.run.is_none(), "shard run becomes a span, not the primary summary");
        assert_eq!(a.wall_us(), 5_200, "wall clock is the router root");

        let rtt_span = &a.spans[&rtt];
        assert_eq!(rtt_span.children.len(), 1);
        let run_id = rtt_span.children[0];
        let run_span = &a.spans[&run_id];
        assert_eq!(run_span.stage, "run");
        assert_eq!(run_span.dur_us, 4_000);
        assert_eq!(run_span.process, "preinferd");
        assert_eq!(run_span.parent, Some(rtt));
        // The shard's testgen span was renumbered past the router ids and
        // reparented under the synthesized run node.
        let testgen_id = run_span.children[0];
        assert!(testgen_id > route && testgen_id > rtt);
        assert_eq!(a.spans[&testgen_id].stage, "testgen");
        assert_eq!(a.spans[&testgen_id].parent, Some(run_id));

        // Critical path descends across the process boundary.
        let path: Vec<String> = a.critical_path().into_iter().map(|s| s.stage).collect();
        assert_eq!(path, vec!["route", "upstream_rtt", "run", "testgen"]);

        // Cross-tier exclusive split: both tiers present, sums match the
        // global exclusive total, and the total stays within wall clock.
        let per = a.process_totals();
        assert_eq!(per.len(), 2);
        assert!(per.iter().all(|(_, us)| *us > 0));
        assert_eq!(per.iter().map(|(_, us)| us).sum::<u64>(), a.exclusive_total_us());
        assert!(a.exclusive_total_us() <= a.wall_us());
    }

    /// A section naming a parent span that never arrived must degrade to
    /// extra roots, never an error or a dropped span.
    #[test]
    fn orphan_section_becomes_extra_roots() {
        let router = TraceSink::recording_in_trace("preinfer-router", TID, None);
        let route = router.begin_span("route", None);
        router.end_span(route, "route", Duration::from_micros(900));

        let shard = TraceSink::recording_in_trace("preinferd", TID, Some(77));
        {
            let _t = shard.span(Stage::Partition);
        }
        shard.event("run", &[("func", Val::S("m")), ("dur_us", Val::U(500))]);

        let mut lines = router.lines();
        lines.extend(shard.lines());
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(a.roots.len(), 2, "router root + orphaned shard run");
        let orphan = a.spans[a.roots.last().unwrap()].clone();
        assert_eq!(orphan.stage, "run");
        assert_eq!(orphan.parent, None);
        assert_eq!(a.spans[&orphan.children[0]].stage, "partition");
        // Without a primary `run` summary the wall clock sums the roots.
        assert_eq!(a.wall_us(), 900 + 500);
    }

    /// Two shard sections reusing the same local span ids (every sink
    /// numbers from 1) and the same trace id must not alias: namespacing
    /// is positional, not id- or trace-id-keyed.
    #[test]
    fn duplicate_span_ids_across_shards_do_not_alias() {
        let router = TraceSink::recording_in_trace("preinfer-router", TID, None);
        let route = router.begin_span("route", None);
        let rtt_a = router.begin_span("upstream_rtt", Some(route));
        router.end_span(rtt_a, "upstream_rtt", Duration::from_micros(2_000));
        let rtt_b = router.begin_span("upstream_rtt", Some(route));
        router.end_span(rtt_b, "upstream_rtt", Duration::from_micros(3_000));
        router.end_span(route, "route", Duration::from_micros(6_000));

        let mut lines = router.lines();
        for (parent, stage) in [(rtt_a, Stage::TestGen), (rtt_b, Stage::Prune)] {
            let shard = TraceSink::recording_in_trace("preinferd", TID, Some(parent));
            {
                let _s = shard.span(stage);
            }
            shard.event("run", &[("func", Val::S("m")), ("dur_us", Val::U(1_000))]);
            lines.extend(shard.lines());
        }
        let a = TraceAnalysis::from_lines(lines.iter().map(String::as_str)).unwrap();
        // 3 router spans + 2 × (shard stage span + synthesized run).
        assert_eq!(a.spans.len(), 7);
        assert_eq!(a.processes, vec!["preinfer-router", "preinferd", "preinferd"]);
        let run_a = a.spans[&rtt_a].children[0];
        let run_b = a.spans[&rtt_b].children[0];
        assert_ne!(run_a, run_b);
        assert_eq!(a.spans[&a.spans[&run_a].children[0]].stage, "testgen");
        assert_eq!(a.spans[&a.spans[&run_b].children[0]].stage, "prune");
    }

    /// Per-line `t_us` timestamps are process-relative and never enter
    /// any duration arithmetic, so wildly skewed clocks across sections
    /// change nothing in the merged analysis.
    #[test]
    fn cross_process_clock_skew_is_irrelevant() {
        let merged = [
            format!(r#"{{"ev":"trace_meta","seq":0,"t_us":0,"trace_id":"{TID}","process":"preinfer-router","parent_span":null}}"#),
            r#"{"ev":"span_start","seq":1,"t_us":10,"id":1,"parent":null,"stage":"route"}"#.into(),
            r#"{"ev":"span_start","seq":2,"t_us":20,"id":2,"parent":1,"stage":"upstream_rtt"}"#.into(),
            r#"{"ev":"span_end","seq":3,"t_us":5020,"id":2,"stage":"upstream_rtt","dur_us":5000}"#.into(),
            r#"{"ev":"span_end","seq":4,"t_us":5100,"id":1,"stage":"route","dur_us":5090}"#.into(),
            // The shard clock is hours ahead — its t_us values dwarf the
            // router's, which must not matter.
            format!(r#"{{"ev":"trace_meta","seq":0,"t_us":7200000000,"trace_id":"{TID}","process":"preinferd","parent_span":2}}"#),
            r#"{"ev":"span_start","seq":1,"t_us":7200000100,"id":1,"parent":null,"stage":"testgen"}"#.into(),
            r#"{"ev":"span_end","seq":2,"t_us":7200003100,"id":1,"stage":"testgen","dur_us":3000}"#.into(),
            r#"{"ev":"run","seq":3,"t_us":7200004000,"func":"m","dur_us":4100}"#.into(),
        ];
        let a = TraceAnalysis::from_lines(merged.iter().map(String::as_str)).unwrap();
        assert_eq!(a.wall_us(), 5_090);
        let rtt = &a.spans[&2];
        let run_id = rtt.children[0];
        assert_eq!(a.spans[&run_id].dur_us, 4_100);
        // Durations come from dur_us fields alone: rtt exclusive is its
        // duration minus the nested shard run, regardless of skew.
        assert_eq!(a.exclusive_us(2), 5_000 - 4_100);
        assert!(a.exclusive_total_us() <= a.wall_us());
    }
}
