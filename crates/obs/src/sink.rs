//! Structured spans and events for the PreInfer pipeline.
//!
//! A [`TraceSink`] comes in two modes:
//!
//! * **aggregate** ([`TraceSink::aggregate`]) — per-[`Stage`] latency
//!   [`Histogram`]s only. Recording a span is a few relaxed atomic adds;
//!   no line is ever allocated. This is what `report::evaluate_method` and
//!   `preinferd` run with.
//! * **recording** ([`TraceSink::recording`]) — additionally buffers one
//!   JSON-lines event per span start/end, solver call, and pipeline
//!   decision, for `preinfer --trace-out FILE`.
//!
//! Pipeline code holds an `Option<Arc<TraceSink>>`; the helpers
//! [`maybe_span`] and [`recording_sink`] keep the disabled path free of
//! clock reads, allocation and locking, and the recording-only event
//! plumbing (which renders predicates to strings) free even in aggregate
//! mode. The trace-neutrality differential tests assert the stronger
//! end-to-end property: inferred ψ is byte-identical with tracing on or
//! off.
//!
//! Span nesting is tracked per thread: a span started while another is
//! open on the same thread records that span as its parent. Stage
//! histograms therefore attribute *inclusive* time (a `prune` span's
//! duration contains its nested `solver` calls); the JSON-lines output
//! carries the parent links needed to subtract.

use crate::histogram::Histogram;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The pipeline stages the sink attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Pex-like branch-flipping test generation.
    TestGen,
    /// Per-ACL suite partition into passing/failing runs.
    Partition,
    /// Per-failing-path dynamic predicate pruning.
    Prune,
    /// Collection-element template generalization.
    Generalize,
    /// ψ assembly (dedup, subsumption, negation).
    Assemble,
    /// §III-A passing-guard checks (pruning and template validation).
    PassingGuard,
    /// Individual solver calls (always nested in another stage).
    Solver,
}

const STAGES: usize = 7;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::TestGen,
        Stage::Partition,
        Stage::Prune,
        Stage::Generalize,
        Stage::Assemble,
        Stage::PassingGuard,
        Stage::Solver,
    ];

    /// The stable snake_case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Stage::TestGen => "testgen",
            Stage::Partition => "partition",
            Stage::Prune => "prune",
            Stage::Generalize => "generalize",
            Stage::Assemble => "assemble",
            Stage::PassingGuard => "passing_guard",
            Stage::Solver => "solver",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One event field value. Strings are borrowed so callers only build them
/// inside a [`recording_sink`] guard.
#[derive(Debug, Clone, Copy)]
pub enum Val<'a> {
    /// Unsigned integer.
    U(u64),
    /// String (JSON-escaped on render).
    S(&'a str),
    /// Boolean.
    B(bool),
}

/// Aggregated timings for one stage, as observed at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    pub count: u64,
    pub total_us: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
}

/// A sink for pipeline spans and events. See the module docs for the two
/// modes; share it as an `Arc` (configs hold `Option<Arc<TraceSink>>`).
///
/// A recording sink can additionally be *joined to a distributed trace*
/// ([`TraceSink::recording_in_trace`]): its first buffered line is then a
/// `trace_meta` event carrying the 128-bit `trace_id`, a `process` label,
/// and (when another process minted the context) the parent span id this
/// process's root spans hang under. Span ids stay process-local — every
/// process numbers its spans from 1 — and every recorded line carries a
/// `t_us` timestamp relative to the sink's creation, so merging traces
/// from different machines needs no clock agreement at all: the analyzer
/// namespaces ids per process and aligns times per process.
#[derive(Debug)]
pub struct TraceSink {
    record: bool,
    stages: [Histogram; STAGES],
    next_span: std::sync::atomic::AtomicU64,
    lines: Mutex<Vec<String>>,
    /// Creation instant; recorded lines carry `t_us` relative to it.
    epoch: Instant,
    /// The distributed trace this per-request sink belongs to, if any.
    trace_id: Mutex<Option<String>>,
}

thread_local! {
    /// Open span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl TraceSink {
    /// An aggregate-only sink: per-stage histograms, no event lines.
    pub fn aggregate() -> TraceSink {
        TraceSink {
            record: false,
            stages: std::array::from_fn(|_| Histogram::new()),
            next_span: std::sync::atomic::AtomicU64::new(0),
            lines: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            trace_id: Mutex::new(None),
        }
    }

    /// A recording sink: histograms plus buffered JSON-lines events.
    pub fn recording() -> TraceSink {
        TraceSink { record: true, ..TraceSink::aggregate() }
    }

    /// A recording sink joined to the distributed trace `trace_id`: the
    /// first buffered line is a `trace_meta` event naming this `process`
    /// and, when a remote tier minted the context, the `parent_span` id
    /// (in the *minting* process's numbering) this process's root spans
    /// belong under.
    pub fn recording_in_trace(
        process: &str,
        trace_id: &str,
        parent_span: Option<u64>,
    ) -> TraceSink {
        let sink = TraceSink::recording();
        *sink.trace_id.lock().expect("sink trace id") = Some(trace_id.to_string());
        let mut body = String::with_capacity(64);
        body.push_str("\"trace_id\":");
        push_json_str(&mut body, trace_id);
        body.push_str(",\"process\":");
        push_json_str(&mut body, process);
        match parent_span {
            Some(p) => {
                let _ = write!(body, ",\"parent_span\":{p}");
            }
            None => body.push_str(",\"parent_span\":null"),
        }
        sink.push_line("trace_meta", &body);
        sink
    }

    /// The distributed trace id this sink records under, if it was created
    /// with [`TraceSink::recording_in_trace`].
    pub fn trace_id(&self) -> Option<String> {
        self.trace_id.lock().expect("sink trace id").clone()
    }

    /// Whether this sink buffers JSON-lines events. Callers must check
    /// this (via [`recording_sink`]) before building event field strings,
    /// so aggregate mode never pays for rendering.
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Opens a span for `stage`; the returned guard records the duration
    /// into the stage histogram (and emits `span_start`/`span_end` events
    /// when recording) on drop.
    pub fn span(&self, stage: Stage) -> SpanGuard<'_> {
        let id = self.next_span.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        if self.record {
            let mut body = format!("\"id\":{id},");
            match parent {
                Some(p) => {
                    let _ = write!(body, "\"parent\":{p},");
                }
                None => body.push_str("\"parent\":null,"),
            }
            let _ = write!(body, "\"stage\":\"{}\"", stage.label());
            self.push_line("span_start", &body);
        }
        SpanGuard { sink: self, stage, id, start: Instant::now() }
    }

    /// Opens a span with a free-form stage label and an explicit parent,
    /// bypassing the thread-local nesting stack — for event-driven callers
    /// (the router's epoll loop) whose spans outlive one call frame and
    /// interleave across many requests on a single thread, where implicit
    /// innermost-open nesting would attribute parents wrongly. Returns the
    /// span id; close it with [`TraceSink::end_span`]. Ids come from the
    /// same sink-wide counter as scoped spans, so the two kinds never
    /// collide in one trace.
    pub fn begin_span(&self, stage: &str, parent: Option<u64>) -> u64 {
        let id = self.next_span.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if self.record {
            let mut body = format!("\"id\":{id},");
            match parent {
                Some(p) => {
                    let _ = write!(body, "\"parent\":{p},");
                }
                None => body.push_str("\"parent\":null,"),
            }
            body.push_str("\"stage\":");
            push_json_str(&mut body, stage);
            self.push_line("span_start", &body);
        }
        id
    }

    /// Closes a span opened with [`TraceSink::begin_span`], recording its
    /// inclusive duration. Stage histograms are untouched — the label is
    /// free-form, not a pipeline [`Stage`] — so event-driven callers keep
    /// their own latency metrics.
    pub fn end_span(&self, id: u64, stage: &str, dur: Duration) {
        if self.record {
            let mut body = format!("\"id\":{id},\"stage\":");
            push_json_str(&mut body, stage);
            let _ = write!(body, ",\"dur_us\":{}", dur.as_micros().min(u64::MAX as u128) as u64);
            self.push_line("span_end", &body);
        }
    }

    /// Records one recording-mode event. A no-op in aggregate mode (but
    /// prefer guarding with [`recording_sink`] so field strings are not
    /// even built). The event is stamped with the innermost open span on
    /// this thread, if any.
    pub fn event(&self, ev: &str, fields: &[(&str, Val<'_>)]) {
        if !self.record {
            return;
        }
        let span = SPAN_STACK.with(|s| s.borrow().last().copied());
        let mut body = String::with_capacity(64);
        match span {
            Some(id) => {
                let _ = write!(body, "\"span\":{id}");
            }
            None => body.push_str("\"span\":null"),
        }
        for (name, val) in fields {
            body.push(',');
            push_json_str(&mut body, name);
            body.push(':');
            match val {
                Val::U(v) => {
                    let _ = write!(body, "{v}");
                }
                Val::B(v) => {
                    let _ = write!(body, "{v}");
                }
                Val::S(v) => push_json_str(&mut body, v),
            }
        }
        self.push_line(ev, &body);
    }

    /// Records one solver call: duration into the solver-stage histogram,
    /// plus (when recording) a `solver_call` event carrying the predicate
    /// count, verdict, cache-lookup and answering-tier labels. `tier` is
    /// `"none"` for calls that never reached a backend (expired deadline).
    pub fn solver_call(
        &self,
        preds: usize,
        verdict: &'static str,
        lookup: &'static str,
        tier: &'static str,
        dur: Duration,
    ) {
        self.stages[Stage::Solver.index()].record(dur);
        if self.record {
            self.event(
                "solver_call",
                &[
                    ("preds", Val::U(preds as u64)),
                    ("verdict", Val::S(verdict)),
                    ("lookup", Val::S(lookup)),
                    ("tier", Val::S(tier)),
                    ("dur_us", Val::U(dur.as_micros().min(u64::MAX as u128) as u64)),
                ],
            );
        }
    }

    /// [`TraceSink::solver_call`] for calls answered through an incremental
    /// (warm prefix-sharing) solver session: the event additionally carries
    /// `reused_depth`, the number of stacked predicates the session reused
    /// from its previous query. Analyzers that predate the field ignore it.
    #[allow(clippy::too_many_arguments)]
    pub fn solver_call_reused(
        &self,
        preds: usize,
        verdict: &'static str,
        lookup: &'static str,
        tier: &'static str,
        reused_depth: u64,
        dur: Duration,
    ) {
        self.stages[Stage::Solver.index()].record(dur);
        if self.record {
            self.event(
                "solver_call",
                &[
                    ("preds", Val::U(preds as u64)),
                    ("verdict", Val::S(verdict)),
                    ("lookup", Val::S(lookup)),
                    ("tier", Val::S(tier)),
                    ("reused_depth", Val::U(reused_depth)),
                    ("dur_us", Val::U(dur.as_micros().min(u64::MAX as u128) as u64)),
                ],
            );
        }
    }

    /// The latency histogram for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Folds `other`'s per-stage histograms into this sink's (bucket-wise
    /// merge; `other`'s buffered lines are untouched). `preinferd` uses
    /// this so a request traced with its own recording sink still
    /// contributes to the daemon-lifetime aggregate histograms.
    pub fn absorb(&self, other: &TraceSink) {
        for stage in Stage::ALL {
            self.stages[stage.index()].merge_from(&other.stages[stage.index()]);
        }
    }

    /// An aggregated snapshot for one stage.
    pub fn snapshot(&self, stage: Stage) -> StageSnapshot {
        let h = &self.stages[stage.index()];
        let (p50_us, p90_us, p99_us) = h.percentiles_us();
        StageSnapshot {
            count: h.count(),
            total_us: h.sum_us(),
            mean_us: h.mean_us(),
            p50_us,
            p90_us,
            p99_us,
        }
    }

    /// Snapshots for every stage, in pipeline order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, StageSnapshot)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.snapshot(s)))
    }

    /// A copy of the buffered JSON-lines events (empty in aggregate mode).
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("trace lines").clone()
    }

    /// Writes the buffered events as JSON lines.
    pub fn write_jsonl(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        for line in self.lines.lock().expect("trace lines").iter() {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Appends one line; `seq` is the line's position, assigned under the
    /// buffer lock so it is strictly increasing in output order even when
    /// several worker threads record concurrently. `t_us` is the offset
    /// from this sink's creation — a per-process relative clock, so traces
    /// recorded on different machines merge without clock agreement.
    fn push_line(&self, ev: &str, body: &str) {
        let t_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut lines = self.lines.lock().expect("trace lines");
        let seq = lines.len();
        let mut line = String::with_capacity(body.len() + ev.len() + 40);
        let _ = write!(line, "{{\"ev\":");
        push_json_str(&mut line, ev);
        let _ = write!(line, ",\"seq\":{seq},\"t_us\":{t_us},");
        line.push_str(body);
        line.push('}');
        lines.push(line);
    }
}

/// A RAII span handle from [`TraceSink::span`]; dropping it closes the
/// span and records the elapsed time against the stage.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    stage: Stage,
    id: u64,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards are scoped, so the innermost entry is ours; tolerate
            // out-of-order drops (e.g. via std::mem::drop) defensively.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        self.sink.stages[self.stage.index()].record(dur);
        if self.sink.record {
            let mut body = format!("\"id\":{},", self.id);
            let _ = write!(
                body,
                "\"stage\":\"{}\",\"dur_us\":{}",
                self.stage.label(),
                dur.as_micros().min(u64::MAX as u128) as u64
            );
            self.sink.push_line("span_end", &body);
        }
    }
}

/// Opens a span when a sink is present; the `None` path costs nothing
/// (no clock read, no allocation, no locking).
pub fn maybe_span<'a>(sink: &'a Option<Arc<TraceSink>>, stage: Stage) -> Option<SpanGuard<'a>> {
    sink.as_ref().map(|s| s.span(stage))
}

/// The sink, only when present *and* recording — the guard callers use
/// before building event field strings, so neither the disabled path nor
/// aggregate mode pays for rendering.
pub fn recording_sink(sink: &Option<Arc<TraceSink>>) -> Option<&TraceSink> {
    match sink {
        Some(s) if s.is_recording() => Some(s),
        _ => None,
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_mode_buffers_no_lines() {
        let sink = TraceSink::aggregate();
        {
            let _s = sink.span(Stage::Prune);
            sink.event("prune_decision", &[("decision", Val::S("removed"))]);
            sink.solver_call(3, "unsat", "miss", "syntactic", Duration::from_micros(5));
        }
        assert!(sink.lines().is_empty(), "aggregate mode must not buffer events");
        assert_eq!(sink.snapshot(Stage::Prune).count, 1);
        assert_eq!(sink.snapshot(Stage::Solver).count, 1);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let sink = TraceSink::recording();
        {
            let _outer = sink.span(Stage::Prune);
            {
                let _inner = sink.span(Stage::PassingGuard);
                sink.event("probe", &[("n", Val::U(1))]);
            }
            let _sibling = sink.span(Stage::PassingGuard);
        }
        let lines = sink.lines();
        // span_start(1,parent=null), span_start(2,parent=1), event(span=2),
        // span_end(2), span_start(3,parent=1), span_end(3), span_end(1).
        assert_eq!(lines.len(), 7, "{lines:#?}");
        assert!(lines[0].contains("\"ev\":\"span_start\"") && lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains("\"parent\":1"), "{}", lines[1]);
        assert!(lines[2].contains("\"ev\":\"probe\"") && lines[2].contains("\"span\":2"));
        assert!(lines[3].contains("\"ev\":\"span_end\"") && lines[3].contains("\"id\":2"));
        assert!(lines[4].contains("\"parent\":1"), "nesting must pop on drop: {}", lines[4]);
        assert!(lines[6].contains("\"id\":1"));
        // Sequence numbers match buffer order.
        for (i, l) in lines.iter().enumerate() {
            assert!(l.contains(&format!("\"seq\":{i},")), "{l}");
        }
    }

    #[test]
    fn stage_time_lands_in_the_right_histogram() {
        let sink = TraceSink::aggregate();
        {
            let _s = sink.span(Stage::TestGen);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = sink.snapshot(Stage::TestGen);
        assert_eq!(snap.count, 1);
        assert!(snap.total_us >= 2_000, "slept 2ms, recorded {} µs", snap.total_us);
        assert_eq!(sink.snapshot(Stage::Generalize), StageSnapshot::default());
    }

    #[test]
    fn event_strings_are_json_escaped() {
        let sink = TraceSink::recording();
        sink.event("note", &[("pred", Val::S("s[\"x\"] != null\\path\n"))]);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(r#""pred":"s[\"x\"] != null\\path\n""#),
            "escaping failed: {}",
            lines[0]
        );
    }

    #[test]
    fn absorb_folds_stage_histograms_not_lines() {
        let agg = TraceSink::aggregate();
        let per_request = TraceSink::recording();
        {
            let _s = per_request.span(Stage::Prune);
            per_request.solver_call(2, "sat", "miss", "interval", Duration::from_micros(9));
        }
        agg.absorb(&per_request);
        assert_eq!(agg.snapshot(Stage::Prune).count, 1);
        assert_eq!(agg.snapshot(Stage::Solver).count, 1);
        assert!(agg.lines().is_empty(), "absorb must not copy event lines");
    }

    #[test]
    fn recording_in_trace_stamps_a_meta_line_and_relative_times() {
        let sink =
            TraceSink::recording_in_trace("shard", "0123456789abcdef0123456789abcdef", Some(7));
        assert_eq!(sink.trace_id().as_deref(), Some("0123456789abcdef0123456789abcdef"));
        {
            let _s = sink.span(Stage::Prune);
        }
        let lines = sink.lines();
        assert!(lines[0].contains("\"ev\":\"trace_meta\""), "{}", lines[0]);
        assert!(lines[0].contains("\"trace_id\":\"0123456789abcdef0123456789abcdef\""));
        assert!(lines[0].contains("\"process\":\"shard\""));
        assert!(lines[0].contains("\"parent_span\":7"));
        // Every line carries a per-process relative timestamp.
        for l in &lines {
            assert!(l.contains("\"t_us\":"), "{l}");
        }
        // A plain recording sink has no meta line and no trace id.
        let plain = TraceSink::recording();
        assert!(plain.trace_id().is_none());
        plain.event("x", &[]);
        assert!(!plain.lines()[0].contains("trace_meta"));
    }

    #[test]
    fn flat_spans_carry_explicit_parents_and_skip_the_stack() {
        let sink = TraceSink::recording();
        let root = sink.begin_span("route", None);
        let rtt = sink.begin_span("upstream_rtt", Some(root));
        {
            // A scoped span on the same thread must not adopt the flat
            // spans as parents: the flat API bypasses the stack entirely.
            let _scoped = sink.span(Stage::Solver);
        }
        sink.end_span(rtt, "upstream_rtt", Duration::from_micros(70));
        sink.end_span(root, "route", Duration::from_micros(100));
        let lines = sink.lines();
        assert!(lines[0].contains("\"stage\":\"route\"") && lines[0].contains("\"parent\":null"));
        assert!(
            lines[1].contains("\"stage\":\"upstream_rtt\"")
                && lines[1].contains(&format!("\"parent\":{root}")),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"parent\":null"),
            "scoped span saw a clean stack: {}",
            lines[2]
        );
        assert!(lines[4].contains("\"ev\":\"span_end\"") && lines[4].contains("\"dur_us\":70"));
        // Ids are distinct across the two span kinds.
        assert_ne!(root, rtt);
        let agg = TraceSink::aggregate();
        let id = agg.begin_span("route", None);
        agg.end_span(id, "route", Duration::from_micros(1));
        assert!(agg.lines().is_empty(), "aggregate mode still buffers nothing");
    }

    #[test]
    fn maybe_span_and_recording_sink_are_none_when_disabled() {
        let none: Option<Arc<TraceSink>> = None;
        assert!(maybe_span(&none, Stage::Solver).is_none());
        assert!(recording_sink(&none).is_none());
        let agg = Some(Arc::new(TraceSink::aggregate()));
        assert!(maybe_span(&agg, Stage::Solver).is_some());
        assert!(recording_sink(&agg).is_none(), "aggregate sinks must not trigger rendering");
        let rec = Some(Arc::new(TraceSink::recording()));
        assert!(recording_sink(&rec).is_some());
    }
}
