//! Hand-rolled latency histograms, shared by the CLI's stage-timing
//! breakdown and `preinferd`'s `stats` verb.
//!
//! Latencies are recorded in microseconds into *log-linear* buckets:
//! values below 8 µs get one exact bucket each, and every power-of-two
//! octave `[2^h, 2^(h+1))` above that is split into 8 linear sub-buckets
//! of width `2^(h-3)`. That bounds the relative quantile error at 12.5%
//! (versus 2× for plain power-of-two buckets, which collapsed p50/p90/p99
//! to one shared bound under pipelined load) while staying lock-free on
//! the record path — the top octave `[2^45, 2^46)` µs caps the range at
//! about two years, far beyond any latency a serving tier can produce.
//!
//! High buckets additionally carry bounded *exemplar* slots: when a
//! sample belongs to a sampled request, `record_with_exemplar` remembers
//! the last `(trace_id, value)` per octave at or above 1.024 ms, and the
//! metrics registry renders those as Prometheus exemplars so a fat p99
//! bucket links directly to a retained distributed trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Linear sub-buckets per power-of-two octave (3 sub-bits).
const SUBS: usize = 8;

/// Highest octave: bucketed values top out at `2^(H_MAX+1) − 1` µs.
const H_MAX: usize = 45;

/// Number of buckets: 8 exact low buckets plus 8 per octave for
/// `h = 3..=H_MAX`.
pub const BUCKETS: usize = SUBS * (H_MAX - 1);

/// Octave floor for exemplar slots: only samples ≥ 2^10 µs (1.024 ms)
/// are worth linking to a trace.
const EXEMPLAR_MIN_OCTAVE: usize = 10;

/// Bounded exemplar storage: one slot per octave in
/// `EXEMPLAR_MIN_OCTAVE..=H_MAX`.
pub const EXEMPLAR_SLOTS: usize = H_MAX - EXEMPLAR_MIN_OCTAVE + 1;

/// A lock-free fixed-bucket latency histogram (microsecond samples).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
    /// Last exemplar per high octave; locked only on the (rare) sampled
    /// path and at scrape time, never on plain `record`.
    exemplars: Mutex<[Option<Exemplar>; EXEMPLAR_SLOTS]>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            exemplars: Mutex::new(std::array::from_fn(|_| None)),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let h = (63 - us.leading_zeros()) as usize; // floor log2, >= 3
    if h > H_MAX {
        return BUCKETS - 1;
    }
    let sub = ((us >> (h - 3)) & (SUBS as u64 - 1)) as usize;
    SUBS * (h - 2) + sub
}

/// Upper bound (inclusive) of a bucket, in µs. The low buckets hold one
/// exact value each (`bound(k) = k`); sub-bucket `s` of octave `h` tops
/// out at `2^h + (s+1)·2^(h-3) − 1`.
fn bucket_bound(k: usize) -> u64 {
    if k < SUBS {
        return k as u64;
    }
    let h = k / SUBS + 2;
    let sub = (k % SUBS) as u64;
    (1u64 << h) + (sub + 1) * (1u64 << (h - 3)) - 1
}

/// Exemplar slot for a value, if it is high enough to carry one.
fn exemplar_slot(us: u64) -> Option<usize> {
    if us < (1u64 << EXEMPLAR_MIN_OCTAVE) {
        return None;
    }
    let h = ((63 - us.leading_zeros()) as usize).min(H_MAX);
    Some(h - EXEMPLAR_MIN_OCTAVE)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency sample.
    pub fn record(&self, d: std::time::Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one sample that belongs to a sampled request, remembering
    /// `(trace_id, value)` as the exemplar for the sample's octave if the
    /// sample is slow enough to have a slot. Last write wins — the slots
    /// are a bounded "most recent culprit" map, not a reservoir.
    pub fn record_with_exemplar(&self, d: std::time::Duration, trace_id: &str) {
        self.record(d);
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        if let Some(slot) = exemplar_slot(us) {
            let ex =
                Exemplar { bucket: bucket_of(us), value_us: us, trace_id: trace_id.to_string() };
            self.exemplars.lock().expect("exemplar slots")[slot] = Some(ex);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 with no samples).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the *inclusive* upper bound of
    /// the bucket containing that rank, in µs — so the reported quantile
    /// never exceeds every recorded sample. Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(k);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// `(p50, p90, p99)` in µs.
    pub fn percentiles_us(&self) -> (u64, u64, u64) {
        (self.quantile_us(0.50), self.quantile_us(0.90), self.quantile_us(0.99))
    }

    /// Per-bucket `(inclusive upper bound µs, count)` pairs, in bucket
    /// order. The registry renders the non-empty ones as cumulative
    /// Prometheus buckets.
    pub fn buckets_us(&self) -> [(u64, u64); BUCKETS] {
        std::array::from_fn(|k| (bucket_bound(k), self.counts[k].load(Ordering::Relaxed)))
    }

    /// A point-in-time copy for exposition (buckets, sample sum, and the
    /// current exemplar per occupied high-octave slot).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let exemplars =
            self.exemplars.lock().expect("exemplar slots").iter().flatten().cloned().collect();
        HistogramSnapshot { buckets_us: self.buckets_us(), sum_us: self.sum_us(), exemplars }
    }

    /// Adds every sample recorded in `other` into `self` (bucket-wise),
    /// and adopts `other`'s exemplars (the per-request sink's samples are
    /// newer than whatever a slot already holds). Used to fold a
    /// per-request sink's histograms back into a daemon aggregate once
    /// the request completes.
    pub fn merge_from(&self, other: &Histogram) {
        for (k, c) in other.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                self.counts[k].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us.fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        let theirs = other.exemplars.lock().expect("exemplar slots");
        let mut ours = self.exemplars.lock().expect("exemplar slots");
        for (slot, ex) in theirs.iter().enumerate() {
            if let Some(ex) = ex {
                ours[slot] = Some(ex.clone());
            }
        }
    }
}

/// The last sampled-request observation for one high bucket: enough to
/// render an OpenMetrics exemplar (`# {trace_id="..."} value`) that links
/// a latency bucket to a retained trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Fine bucket index the sample landed in (its `le` line carries the
    /// exemplar).
    pub bucket: usize,
    /// The observed value, µs.
    pub value_us: u64,
    /// The distributed trace id of the request that produced it.
    pub trace_id: String,
}

/// A scrape-time copy of a [`Histogram`], consumed by the metrics
/// registry's Prometheus renderer.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound µs, count)` per bucket, in bucket order.
    pub buckets_us: [(u64, u64); BUCKETS],
    /// Sum of all recorded samples, µs.
    pub sum_us: u64,
    /// Current exemplars, at most one per high octave, bucket-ordered.
    pub exemplars: Vec<Exemplar>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_are_log_linear_ranges() {
        // Low values get exact buckets…
        for us in 0..8 {
            assert_eq!(bucket_of(us), us as usize);
            assert_eq!(bucket_bound(us as usize), us);
        }
        // …then 8 sub-buckets per octave, contiguous with the low region.
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16); // octave h=4 starts at bucket 16
                                       // 100 µs sits in octave h=6 (64..127), sub-bucket 4 (96..103).
        assert_eq!(bucket_bound(bucket_of(100)), 103);
        // 1023 µs is the top of octave h=9 — the bound is exact.
        assert_eq!(bucket_bound(bucket_of(1023)), 1023);
        assert_eq!(bucket_of(1024), bucket_of(1023) + 1);
        // 50 ms lands in a sub-bucket of octave h=15, not at the octave cap:
        // the log-linear split is what keeps distinct tail quantiles.
        assert_eq!(bucket_bound(bucket_of(50_000)), 53_247);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Bucket bounds are strictly increasing (sanity over the whole map).
        for k in 1..BUCKETS {
            assert!(bucket_bound(k) > bucket_bound(k - 1), "bound not monotone at {k}");
        }
        // Every value maps into the bucket whose bound covers it.
        for us in [0, 1, 7, 8, 100, 1023, 4096, 50_000, 1 << 20, (1 << 30) + 12345] {
            let k = bucket_of(us);
            assert!(us <= bucket_bound(k), "{us} above its bucket bound");
            assert!(k == 0 || us > bucket_bound(k - 1), "{us} below its bucket");
        }
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~100 µs), 10 slow (~50 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let (p50, p90, p99) = h.percentiles_us();
        assert_eq!(p50, 103, "p50 = {p50}");
        assert_eq!(p90, 103, "p90 = {p90}");
        assert_eq!(p99, 53_247, "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
    }

    /// Regression for the saturated-tail bug: under 64-conn pipelined load
    /// every sample fell in one power-of-two bucket (32.8–65.5 ms), so
    /// p50/p90/p99/p999 all collapsed to the shared bound 65 535 µs. With
    /// log-linear sub-buckets a bimodal distribution inside that same
    /// octave reports distinct quantiles.
    #[test]
    fn bimodal_distribution_reports_distinct_quantiles() {
        let h = Histogram::new();
        // Both modes live inside the old 32 768..65 535 µs bucket.
        for _ in 0..90 {
            h.record(Duration::from_micros(35_000));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(60_000));
        }
        let (p50, _, p99) = h.percentiles_us();
        assert!(p50 < p99, "bimodal modes collapsed: p50 = {p50}, p99 = {p99}");
        assert!((35_000..36_864).contains(&p50), "p50 = {p50}");
        assert!((60_000..65_536).contains(&p99), "p99 = {p99}");
        // Neither quantile is a bucket-cap clamp.
        assert_ne!(p99, 65_535);
    }

    #[test]
    fn quantile_is_an_inclusive_bound() {
        // Regression: a constant 100 µs stream used to report p50 = 128 µs
        // — the bucket's *exclusive* bound, above every recorded sample.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        assert_eq!(h.quantile_us(0.50), 103);
        assert_eq!(h.quantile_us(0.99), 103);
        // Low buckets hold one exact value; their inclusive bound is it.
        let z = Histogram::new();
        z.record(Duration::ZERO);
        assert_eq!(z.quantile_us(0.50), 0);
    }

    #[test]
    fn merge_from_adds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(100));
        b.record(Duration::from_micros(100));
        b.record(Duration::from_millis(50));
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 100 + 100 + 50_000);
        let buckets = a.buckets_us();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 3);
        // The two 100 µs samples share a sub-bucket.
        assert!(buckets.iter().any(|&(bound, c)| bound == 103 && c == 2));
    }

    #[test]
    fn exemplars_are_bounded_and_last_write_wins() {
        let h = Histogram::new();
        // Below the exemplar floor: recorded, but no slot.
        h.record_with_exemplar(Duration::from_micros(100), "tiny");
        assert!(h.snapshot().exemplars.is_empty());
        // Two samples in the same octave: the later one owns the slot.
        h.record_with_exemplar(Duration::from_millis(40), "first");
        h.record_with_exemplar(Duration::from_millis(50), "second");
        // A different octave gets its own slot.
        h.record_with_exemplar(Duration::from_millis(200), "slowest");
        let snap = h.snapshot();
        assert_eq!(snap.exemplars.len(), 2);
        let ids: Vec<&str> = snap.exemplars.iter().map(|e| e.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["second", "slowest"]);
        for ex in &snap.exemplars {
            // The exemplar's bucket really contains its value.
            assert_eq!(ex.bucket, bucket_of(ex.value_us));
        }
        // merge_from adopts the per-request sink's exemplars.
        let agg = Histogram::new();
        agg.record_with_exemplar(Duration::from_millis(33), "stale");
        agg.merge_from(&h);
        let merged = agg.snapshot();
        assert!(merged.exemplars.iter().any(|e| e.trace_id == "second"));
        assert!(!merged.exemplars.iter().any(|e| e.trace_id == "stale"));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentiles_us(), (0, 0, 0));
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.sum_us(), 0);
        assert!(h.snapshot().exemplars.is_empty());
    }
}
