//! Hand-rolled latency histograms, shared by the CLI's stage-timing
//! breakdown and `preinferd`'s `stats` verb.
//!
//! Latencies are recorded in microseconds into power-of-two buckets
//! (bucket `k` holds samples in `[2^(k-1), 2^k)` µs, bucket 0 holds
//! `[0, 1)`), which gives ≤ 2× quantile error over nine decades for 40
//! atomic counters — plenty for p50/p90/p99 service dashboards and free of
//! locks on the record path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: `2^39` µs ≈ 6.4 days caps the top bucket.
pub const BUCKETS: usize = 40;

/// A lock-free fixed-bucket latency histogram (microsecond samples).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound (inclusive) of a bucket, in µs: bucket 0 holds only the
/// zero-microsecond samples (its bound is 0), bucket `k` tops out at
/// `2^k − 1`.
fn bucket_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        (1u64 << k) - 1
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency sample.
    pub fn record(&self, d: std::time::Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 with no samples).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the *inclusive* upper bound of
    /// the bucket containing that rank, in µs — so the reported quantile
    /// never exceeds every recorded sample. Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(k);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// `(p50, p90, p99)` in µs.
    pub fn percentiles_us(&self) -> (u64, u64, u64) {
        (self.quantile_us(0.50), self.quantile_us(0.90), self.quantile_us(0.99))
    }

    /// Per-bucket `(inclusive upper bound µs, count)` pairs, in bucket
    /// order. The registry renders these as cumulative Prometheus buckets.
    pub fn buckets_us(&self) -> [(u64, u64); BUCKETS] {
        std::array::from_fn(|k| (bucket_bound(k), self.counts[k].load(Ordering::Relaxed)))
    }

    /// A point-in-time copy for exposition (buckets plus the sample sum).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { buckets_us: self.buckets_us(), sum_us: self.sum_us() }
    }

    /// Adds every sample recorded in `other` into `self` (bucket-wise).
    /// Used to fold a per-request sink's histograms back into a daemon
    /// aggregate once the request completes.
    pub fn merge_from(&self, other: &Histogram) {
        for (k, c) in other.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                self.counts[k].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us.fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A scrape-time copy of a [`Histogram`], consumed by the metrics
/// registry's Prometheus renderer.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound µs, count)` per bucket, in bucket order.
    pub buckets_us: [(u64, u64); BUCKETS],
    /// Sum of all recorded samples, µs.
    pub sum_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~100 µs), 10 slow (~50 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let (p50, p90, p99) = h.percentiles_us();
        assert!((64..=256).contains(&p50), "p50 = {p50}");
        assert!((64..=256).contains(&p90), "p90 = {p90}");
        assert!((32_768..=131_072).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn quantile_is_an_inclusive_bound() {
        // Regression: a constant 100 µs stream used to report p50 = 128 µs
        // — the bucket's *exclusive* bound, above every recorded sample.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        assert_eq!(h.quantile_us(0.50), 127);
        assert_eq!(h.quantile_us(0.99), 127);
        // Bucket 0 holds only zero-µs samples; its inclusive bound is 0.
        let z = Histogram::new();
        z.record(Duration::ZERO);
        assert_eq!(z.quantile_us(0.50), 0);
    }

    #[test]
    fn merge_from_adds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(100));
        b.record(Duration::from_micros(100));
        b.record(Duration::from_millis(50));
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 100 + 100 + 50_000);
        let buckets = a.buckets_us();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 3);
        // The two 100 µs samples share a bucket.
        assert!(buckets.iter().any(|&(bound, c)| bound == 127 && c == 2));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentiles_us(), (0, 0, 0));
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.sum_us(), 0);
    }
}
