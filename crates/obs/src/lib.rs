//! # obs
//!
//! Std-only observability for the PreInfer pipeline: structured spans and
//! events ([`TraceSink`], [`SpanGuard`]) attributing wall-clock to the
//! pipeline stages ([`Stage`]), and the lock-free power-of-two latency
//! [`Histogram`] shared by the CLI trace footer and `preinferd`'s `stats`
//! verb.
//!
//! The crate depends on nothing but `std`, so every layer of the pipeline
//! (solver, testgen, preinfer-core, report, server) can thread an
//! `Option<Arc<TraceSink>>` through its config without dependency cycles.
//! The central invariant — locked in by the trace-neutrality differential
//! tests — is **zero cost when disabled**: a `None` sink means no
//! allocation, no locking, and not even a clock read on any hot path (see
//! [`maybe_span`] and [`recording_sink`]).

pub mod histogram;
pub mod sink;

pub use histogram::Histogram;
pub use sink::{maybe_span, recording_sink, SpanGuard, Stage, StageSnapshot, TraceSink, Val};
