//! # obs
//!
//! Std-only observability for the PreInfer pipeline: structured spans and
//! events ([`TraceSink`], [`SpanGuard`]) attributing wall-clock to the
//! pipeline stages ([`Stage`]), and the lock-free power-of-two latency
//! [`Histogram`] shared by the CLI trace footer and `preinferd`'s `stats`
//! verb.
//!
//! Two offline companions complete the layer: the unified
//! [`MetricsRegistry`] (named counters/gauges/histograms with static
//! labels, scraped as Prometheus text-format exposition — `preinferd`'s
//! `metrics` verb), and [`TraceAnalysis`] (span-tree reconstruction of a
//! recorded JSON-lines trace: exclusive self-time, critical path, top-k
//! solver calls, folded stacks — shared by `preinfer --trace-out`'s
//! breakdown and the `preinfer-trace` binary).
//!
//! The crate depends on nothing but `std`, so every layer of the pipeline
//! (solver, testgen, preinfer-core, report, server) can thread an
//! `Option<Arc<TraceSink>>` through its config without dependency cycles.
//! The central invariant — locked in by the trace-neutrality differential
//! tests — is **zero cost when disabled**: a `None` sink means no
//! allocation, no locking, and not even a clock read on any hot path (see
//! [`maybe_span`] and [`recording_sink`]).

pub mod analyze;
pub mod histogram;
pub mod registry;
pub mod sink;

pub use analyze::TraceAnalysis;
pub use histogram::{Exemplar, Histogram, HistogramSnapshot};
pub use registry::{MetricKind, MetricsRegistry};
pub use sink::{maybe_span, recording_sink, SpanGuard, Stage, StageSnapshot, TraceSink, Val};
