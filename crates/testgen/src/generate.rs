//! Pex-like generational test generation.
//!
//! Starting from the all-defaults seed (plus a few random fuzz seeds), the
//! engine repeatedly *flips* a branch of an explored path: it asks the
//! solver for inputs satisfying `φ₁ ∧ … ∧ φ_{j-1} ∧ ¬φ_j`, executes the
//! model concolically, and enqueues the new path's suffix for further
//! flipping. Implicit-check branches are flipped too — that is exactly how
//! the engine discovers failing tests (inputs violating a check).

use crate::suite::{Suite, TestRun};
use concolic::{run_concolic, ConcolicConfig};
use minilang::{InputValue, MethodEntryState, Ty, TypedProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use solver::{
    solve_preds_with, FuncSig, IncrementalSession, SolveResult, SolverCache, SolverConfig,
};
use std::collections::HashSet;
use std::sync::Arc;
use symbolic::{canon_pred, CanonPred, Pred};

/// Test-generation configuration.
#[derive(Debug, Clone)]
pub struct TestGenConfig {
    /// Maximum number of executed tests per method.
    pub max_runs: usize,
    /// Maximum branch-flip attempts (solver calls).
    pub max_flips: usize,
    /// Maximum flips attempted per branch site (bounds loop unrolling, like
    /// Pex's per-branch fairness bounds).
    pub max_flips_per_site: usize,
    /// Deepest path position considered for flipping.
    pub max_flip_depth: usize,
    /// Extra random fuzz seeds beside the defaults seed.
    pub random_seeds: usize,
    /// RNG seed (the whole pipeline is deterministic given this).
    pub rng_seed: u64,
    /// Concolic executor budget.
    pub concolic: ConcolicConfig,
    /// Solver budget.
    pub solver: SolverConfig,
    /// Canonicalizing memo table fronting branch-flip solver calls; safe to
    /// share with the inference pipeline (entries are pure functions of the
    /// canonical query, so sharing never changes generated suites).
    pub solver_cache: Option<Arc<SolverCache>>,
    /// Observation-only trace sink: wraps the whole generation in a
    /// `test_gen` span and emits one `flip` event per branch-flip attempt
    /// when recording. Never influences which tests are generated.
    pub trace: Option<Arc<obs::TraceSink>>,
}

impl Default for TestGenConfig {
    fn default() -> Self {
        TestGenConfig {
            max_runs: 140,
            max_flips: 600,
            max_flips_per_site: 8,
            max_flip_depth: 48,
            random_seeds: 6,
            rng_seed: 0x5EED,
            concolic: ConcolicConfig::default(),
            solver: SolverConfig::default(),
            solver_cache: None,
            trace: None,
        }
    }
}

/// Generates a test suite for `func_name` by generational exploration.
///
/// # Panics
///
/// Panics if the function does not exist in the program.
pub fn generate_tests(program: &TypedProgram, func_name: &str, cfg: &TestGenConfig) -> Suite {
    let func = program.func(func_name).unwrap_or_else(|| panic!("unknown function {func_name}"));
    let _span = obs::maybe_span(&cfg.trace, obs::Stage::TestGen);
    let sig = FuncSig::of(func);
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);

    let mut suite = Suite::default();
    let mut seen_states: HashSet<MethodEntryState> = HashSet::new();
    let mut seen_paths: HashSet<Vec<CanonPred>> = HashSet::new();
    let mut attempted_flips: HashSet<Vec<CanonPred>> = HashSet::new();
    let mut site_flips: std::collections::HashMap<minilang::NodeId, usize> = Default::default();
    // Work queue of (run index, entry index to flip).
    let mut queue: std::collections::VecDeque<(usize, usize)> = Default::default();

    let execute = |state: MethodEntryState,
                   suite: &mut Suite,
                   seen_states: &mut HashSet<MethodEntryState>,
                   seen_paths: &mut HashSet<Vec<CanonPred>>|
     -> Option<usize> {
        if !seen_states.insert(state.clone()) {
            return None;
        }
        let outcome = run_concolic(program, func_name, &state, &cfg.concolic);
        let signature: Vec<CanonPred> = outcome.path.entries.iter().map(|e| e.canon()).collect();
        let fresh_path = seen_paths.insert(signature);
        let run = TestRun::new(state, outcome);
        suite.runs.push(run);
        if fresh_path {
            Some(suite.runs.len() - 1)
        } else {
            None
        }
    };

    // Seeds: all-defaults plus random fuzz.
    let mut seeds = vec![MethodEntryState::seed_for(func)];
    for _ in 0..cfg.random_seeds {
        seeds.push(random_state(func, &mut rng));
    }
    for seed in seeds {
        if suite.len() >= cfg.max_runs {
            break;
        }
        if let Some(idx) = execute(seed, &mut suite, &mut seen_states, &mut seen_paths) {
            for j in 0..suite.runs[idx].path.entries.len() {
                queue.push_back((idx, j));
            }
        }
    }

    let mut flips = 0usize;
    // Flip queries are prefixes of already-explored paths with one negated
    // tail, so consecutive flips share long prefixes; under
    // `cfg.solver.incremental` they all run through one warm session (the
    // longest-common-prefix diff in `solve_preds` does the sharing).
    // Verdicts and models are byte-identical to per-call scratch solves.
    let mut session = cfg
        .solver
        .incremental
        .then(|| IncrementalSession::new(&sig, &cfg.solver, cfg.solver_cache.clone()));
    while let Some((run_idx, j)) = queue.pop_front() {
        if suite.len() >= cfg.max_runs || flips >= cfg.max_flips {
            break;
        }
        if cfg.solver.deadline.expired() {
            // Out of wall-clock budget: the suite so far is a valid (if
            // smaller) suite — stop exploring instead of burning the queue.
            break;
        }
        if j >= cfg.max_flip_depth {
            continue;
        }
        let entries = &suite.runs[run_idx].path.entries;
        let Some(entry) = entries.get(j) else { continue };
        if !entry.kind.is_branch() {
            continue; // pins are not decisions
        }
        let site_count = site_flips.entry(entry.site).or_insert(0);
        if *site_count >= cfg.max_flips_per_site {
            continue;
        }
        *site_count += 1;
        // Constraint: prefix (including pins) plus the negated predicate.
        let mut preds: Vec<Pred> = entries[..j].iter().map(|e| e.pred.clone()).collect();
        preds.push(entry.pred.negated());
        let flip_sig: Vec<CanonPred> = preds.iter().map(canon_pred).collect();
        if !attempted_flips.insert(flip_sig) {
            continue;
        }
        flips += 1;
        let verdict = match &mut session {
            Some(s) => s.solve_preds(&preds).0,
            None => solve_preds_with(&preds, &sig, &cfg.solver, cfg.solver_cache.as_deref()).0,
        };
        if let Some(sink) = obs::recording_sink(&cfg.trace) {
            let site = format!("{:?}", entry.site);
            sink.event(
                "flip",
                &[
                    ("site", obs::Val::S(&site)),
                    ("depth", obs::Val::U(j as u64)),
                    ("verdict", obs::Val::S(verdict.label())),
                ],
            );
        }
        match verdict {
            SolveResult::Sat(model) => {
                if let Some(idx) = execute(model, &mut suite, &mut seen_states, &mut seen_paths) {
                    // Expand only the suffix the new path discovered.
                    let new_len = suite.runs[idx].path.entries.len();
                    for k in j..new_len {
                        queue.push_back((idx, k));
                    }
                }
            }
            SolveResult::Unsat | SolveResult::Unknown => {}
        }
    }
    if let Some(sink) = obs::recording_sink(&cfg.trace) {
        sink.event(
            "testgen_done",
            &[("runs", obs::Val::U(suite.len() as u64)), ("flips", obs::Val::U(flips as u64))],
        );
    }
    suite
}

/// A random input state for fuzz seeding.
fn random_state(func: &minilang::Func, rng: &mut StdRng) -> MethodEntryState {
    let mut state = MethodEntryState::new();
    for p in &func.params {
        state.set(&p.name, random_value(p.ty, rng));
    }
    state
}

fn random_value(ty: Ty, rng: &mut StdRng) -> InputValue {
    match ty {
        Ty::Int => InputValue::Int(rng.gen_range(-8..=8)),
        Ty::Bool => InputValue::Bool(rng.gen_bool(0.5)),
        Ty::Str => {
            if rng.gen_bool(0.25) {
                InputValue::Str(None)
            } else {
                InputValue::Str(Some(random_chars(rng)))
            }
        }
        Ty::ArrayInt => {
            if rng.gen_bool(0.25) {
                InputValue::ArrayInt(None)
            } else {
                let len = rng.gen_range(0..=4);
                InputValue::ArrayInt(Some((0..len).map(|_| rng.gen_range(-5..=5)).collect()))
            }
        }
        Ty::ArrayStr => {
            if rng.gen_bool(0.25) {
                InputValue::ArrayStr(None)
            } else {
                let len = rng.gen_range(0..=4);
                InputValue::ArrayStr(Some(
                    (0..len)
                        .map(|_| if rng.gen_bool(0.3) { None } else { Some(random_chars(rng)) })
                        .collect(),
                ))
            }
        }
        Ty::Void => unreachable!("void parameter"),
    }
}

fn random_chars(rng: &mut StdRng) -> Vec<i64> {
    let len = rng.gen_range(0..=4);
    (0..len).map(|_| if rng.gen_bool(0.3) { 32 } else { rng.gen_range(97..=99) }).collect()
}
