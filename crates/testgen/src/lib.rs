//! # testgen
//!
//! A Pex-like dynamic-symbolic-execution test generator for MiniLang. This
//! is the harness the paper's Section V-B uses: it produces the shared test
//! suite `T` for each method under test, partitioned per assertion-
//! containing location into `T_pass` / `T_fail`, and reports the block
//! coverage of Table IV.
//!
//! ```
//! use testgen::{generate_tests, TestGenConfig};
//! use minilang::compile;
//!
//! # fn main() {
//! let tp = compile("fn f(a [int], i int) -> int { return a[i]; }").unwrap();
//! let suite = generate_tests(&tp, "f", &TestGenConfig::default());
//! // The generator discovers both the null-dereference and the
//! // out-of-bounds failures.
//! assert!(suite.triggered_acls().len() >= 2);
//! # }
//! ```

pub mod generate;
pub mod suite;

pub use generate::{generate_tests, TestGenConfig};
pub use suite::{Suite, TestRun};
