//! Generated test suites and their per-ACL partitions.

use concolic::ConcolicOutcome;
use minilang::{CheckId, Func, MethodEntryState, NodeId};
use std::collections::HashSet;
use symbolic::{PathCondition, PathOutcome};

/// One executed test: the input state and the observed path.
#[derive(Debug, Clone)]
pub struct TestRun {
    pub state: MethodEntryState,
    pub path: PathCondition,
    pub visited_blocks: HashSet<NodeId>,
}

impl TestRun {
    /// Builds a run from a concolic outcome.
    pub fn new(state: MethodEntryState, outcome: ConcolicOutcome) -> TestRun {
        TestRun { state, path: outcome.path, visited_blocks: outcome.visited_blocks }
    }

    /// Whether this run failed (at any check).
    pub fn failed(&self) -> bool {
        self.path.outcome.failed_check().is_some()
    }
}

/// A generated suite for one method under test.
#[derive(Debug, Clone, Default)]
pub struct Suite {
    pub runs: Vec<TestRun>,
}

impl Suite {
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no tests were generated.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All assertion-containing locations triggered (violated) by at least
    /// one run, in first-trigger order — the paper's *exception-throwing
    /// locations* for this method.
    pub fn triggered_acls(&self) -> Vec<CheckId> {
        let mut out = Vec::new();
        for r in &self.runs {
            if let Some(id) = r.path.outcome.failed_check() {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Partitions the suite for one ACL `e` per Section V-B: a test is
    /// failing iff its execution reaches `e` *and* violates it; passing iff
    /// it does not reach `e`, or reaches without violating. Out-of-fuel runs
    /// are excluded from both sets.
    pub fn partition(&self, acl: CheckId) -> (Vec<&TestRun>, Vec<&TestRun>) {
        let mut pass = Vec::new();
        let mut fail = Vec::new();
        for r in &self.runs {
            match r.path.outcome {
                PathOutcome::OutOfFuel | PathOutcome::CallDepthExceeded => continue,
                PathOutcome::Failed(f) if f == acl => fail.push(r),
                // A run that failed at a *different* location still passed
                // this one (it either reached-without-violating or never
                // reached it).
                PathOutcome::Failed(_) | PathOutcome::Completed => pass.push(r),
            }
        }
        (pass, fail)
    }

    /// Block coverage (percent) of the union of runs against `func`'s
    /// blocks — the Table IV metric.
    pub fn coverage_percent(&self, func: &Func) -> f64 {
        let blocks = minilang::block_ids(func);
        let mut visited = HashSet::new();
        for r in &self.runs {
            visited.extend(r.visited_blocks.iter().copied());
        }
        minilang::coverage_percent(&blocks, &visited)
    }
}
