//! End-to-end tests of the generational test generator.

use minilang::{compile, CheckKind, LoopPos};
use testgen::{generate_tests, TestGenConfig};

const FIG1: &str = "
fn example(s [str], a int, b int, c int, d int) -> int {
    let sum = 0;
    if (a > 0) { b = b + 1; }
    if (c > 0) { d = d + 1; }
    if (b > 0) { sum = sum + 1; }
    if (d > 0) {
        for (let i = 0; i < len(s); i = i + 1) {
            sum = sum + strlen(s[i]);
        }
        return sum;
    }
    return sum;
}";

#[test]
fn discovers_both_fig1_failures() {
    let tp = compile(FIG1).unwrap();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    let acls = suite.triggered_acls();
    let kinds: Vec<CheckKind> = acls.iter().map(|a| a.kind).collect();
    // The Line-14 analogue (null `s` dereferenced by len) and the Line-16
    // analogue (null element dereferenced by strlen) must both be found.
    assert!(
        kinds.iter().filter(|k| **k == CheckKind::NullDeref).count() >= 2,
        "expected both NullDeref ACLs, got {acls:?}"
    );
    // Partition sanity for the element ACL: failing tests exist, passing
    // tests exist, and no run is in both sets.
    let elem_acl = *acls
        .iter()
        .find(|a| {
            let (_, fail) = suite.partition(**a);
            fail.iter().any(|r| {
                r.path.last_branch().map(|e| e.pred.to_string().contains("[")).unwrap_or(false)
            })
        })
        .expect("element ACL triggered");
    let (pass, fail) = suite.partition(elem_acl);
    assert!(!pass.is_empty());
    assert!(!fail.is_empty());
    assert_eq!(pass.len() + fail.len(), suite.runs.len());
}

#[test]
fn coverage_reaches_all_blocks_of_fig1() {
    let tp = compile(FIG1).unwrap();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    let cov = suite.coverage_percent(tp.func("example").unwrap());
    assert!(cov > 99.0, "expected full block coverage, got {cov:.2}%");
}

#[test]
fn finds_division_by_zero() {
    let tp =
        compile("fn f(x int, y int) -> int { if (x > 2) { return x / y; } return 0; }").unwrap();
    let suite = generate_tests(&tp, "f", &TestGenConfig::default());
    let acls = suite.triggered_acls();
    assert!(acls.iter().any(|a| a.kind == CheckKind::DivByZero), "{acls:?}");
    // The failing test must satisfy the guard x > 2.
    let acl = *acls.iter().find(|a| a.kind == CheckKind::DivByZero).unwrap();
    let (_, fail) = suite.partition(acl);
    for run in fail {
        let Some(minilang::InputValue::Int(x)) = run.state.get("x") else { panic!() };
        let Some(minilang::InputValue::Int(y)) = run.state.get("y") else { panic!() };
        assert!(*x > 2 && *y == 0, "bad failing input {}", run.state);
    }
}

#[test]
fn finds_assert_violation_behind_arithmetic() {
    let tp = compile("fn f(x int) { let y = x * 3 + 1; assert(y != 13); }").unwrap();
    let suite = generate_tests(&tp, "f", &TestGenConfig::default());
    let acls = suite.triggered_acls();
    assert!(
        acls.iter().any(|a| a.kind == CheckKind::AssertFail),
        "solver should find x = 4: {acls:?}"
    );
}

#[test]
fn deterministic_given_seed() {
    let tp = compile(FIG1).unwrap();
    let a = generate_tests(&tp, "example", &TestGenConfig::default());
    let b = generate_tests(&tp, "example", &TestGenConfig::default());
    let sa: Vec<String> = a.runs.iter().map(|r| r.state.to_string()).collect();
    let sb: Vec<String> = b.runs.iter().map(|r| r.state.to_string()).collect();
    assert_eq!(sa, sb);
}

#[test]
fn loop_exit_paths_explored() {
    // Quantified-precondition shape: failure only when all elements are even.
    let src = "
        fn all_even_fails(a [int]) -> int {
            if (a == null) { return 0; }
            let i = 0;
            while (i < len(a)) {
                if (a[i] % 2 != 0) { return i; }
                i = i + 1;
            }
            if (len(a) > 0) { assert(false); }
            return -1;
        }";
    let tp = compile(src).unwrap();
    let suite = generate_tests(&tp, "all_even_fails", &TestGenConfig::default());
    let acls = suite.triggered_acls();
    assert!(acls.iter().any(|a| a.kind == CheckKind::AssertFail), "{acls:?}");
}

#[test]
fn acl_loop_positions_available_for_table5() {
    let tp = compile(FIG1).unwrap();
    let sites = minilang::check_sites(tp.func("example").unwrap());
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    for acl in suite.triggered_acls() {
        let site = sites.iter().find(|s| s.id == acl).expect("triggered ACL is a static site");
        assert_eq!(site.loop_pos, LoopPos::InsideLoop);
    }
}
