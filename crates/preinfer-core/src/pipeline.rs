//! The end-to-end PreInfer pipeline (Section IV): collect path conditions
//! from the shared test suite, prune, generalize, assemble.

use crate::generalize::{default_templates, generalize_path_traced, GeneralizedPath, Template};
use crate::precondition::{assemble, InferredPrecondition};
use crate::pruning::{prune_failing_paths, PruneConfig, PruneStats};
use minilang::{CheckId, MethodEntryState, TypedProgram};
use testgen::Suite;

/// PreInfer configuration.
pub struct PreInferConfig {
    pub prune: PruneConfig,
    pub templates: Vec<Box<dyn Template>>,
    /// §V-C mitigation: when the suite has *no passing tests* for the ACL,
    /// `false` (the default) reproduces the paper's reported behaviour —
    /// PreInfer "cannot infer anything" beyond the raw disjunction of the
    /// failing path conditions; `true` skips the passing-path-dependent
    /// steps and still prunes/generalizes using the dynamic machinery only.
    pub skip_passing_steps: bool,
}

impl Default for PreInferConfig {
    fn default() -> Self {
        PreInferConfig {
            prune: PruneConfig::default(),
            templates: default_templates(),
            skip_passing_steps: false,
        }
    }
}

/// Inference outcome for one ACL.
pub struct Inference {
    pub precondition: InferredPrecondition,
    pub prune_stats: PruneStats,
    /// The generalized reduced disjuncts, for inspection/debugging.
    pub disjuncts: Vec<GeneralizedPath>,
}

/// Runs PreInfer for one assertion-containing location against a shared
/// suite. Returns `None` when the suite contains no failing test for `acl`
/// (there is nothing to infer from).
pub fn infer_precondition(
    program: &TypedProgram,
    func_name: &str,
    acl: CheckId,
    suite: &Suite,
    cfg: &PreInferConfig,
) -> Option<Inference> {
    let trace = &cfg.prune.trace;
    let (passing, failing) = {
        let _span = obs::maybe_span(trace, obs::Stage::Partition);
        suite.partition(acl)
    };
    if let Some(sink) = obs::recording_sink(trace) {
        let acl_str = format!("{acl}");
        sink.event(
            "partition",
            &[
                ("acl", obs::Val::S(&acl_str)),
                ("passing", obs::Val::U(passing.len() as u64)),
                ("failing", obs::Val::U(failing.len() as u64)),
            ],
        );
    }
    if failing.is_empty() {
        return None;
    }
    if passing.is_empty() && !cfg.skip_passing_steps {
        // The paper's reported weakness: with no passing paths, PreInfer
        // falls back to the raw disjunction of the failing path conditions.
        let disjuncts: Vec<GeneralizedPath> = failing
            .iter()
            .map(|r| GeneralizedPath {
                parts: r
                    .path
                    .entries
                    .iter()
                    .map(|e| symbolic::Formula::pred(e.pred.clone()))
                    .collect(),
                quantified: false,
            })
            .collect();
        let precondition = {
            let _span = obs::maybe_span(trace, obs::Stage::Assemble);
            assemble(&disjuncts)
        };
        emit_psi(trace, &precondition, disjuncts.len());
        return Some(Inference { precondition, prune_stats: Default::default(), disjuncts });
    }
    let (reduced, prune_stats) =
        prune_failing_paths(program, func_name, acl, &passing, &failing, &cfg.prune);
    let passing_states: Vec<&MethodEntryState> = passing.iter().map(|r| &r.state).collect();
    let disjuncts: Vec<GeneralizedPath> = reduced
        .iter()
        .map(|r| {
            let _span = obs::maybe_span(trace, obs::Stage::Generalize);
            generalize_path_traced(r, &cfg.templates, &passing_states, trace)
        })
        .collect();
    let precondition = {
        let _span = obs::maybe_span(trace, obs::Stage::Assemble);
        assemble(&disjuncts)
    };
    emit_psi(trace, &precondition, disjuncts.len());
    Some(Inference { precondition, prune_stats, disjuncts })
}

/// Emits the final `psi` event (recording sinks only).
fn emit_psi(
    trace: &Option<std::sync::Arc<obs::TraceSink>>,
    precondition: &InferredPrecondition,
    disjuncts: usize,
) {
    if let Some(sink) = obs::recording_sink(trace) {
        let psi = precondition.psi.to_string();
        sink.event(
            "psi",
            &[
                ("psi", obs::Val::S(&psi)),
                ("quantified", obs::Val::B(precondition.quantified)),
                ("disjuncts", obs::Val::U(disjuncts as u64)),
            ],
        );
    }
}

/// Runs PreInfer for *every* ACL the suite triggers, fanning the per-ACL
/// [`infer_precondition`] calls across `jobs` worker threads.
///
/// Results are returned sorted by ACL id, regardless of which worker
/// finished first, and each inference is independent of scheduling:
/// per-path pruning uses private witness pools, and any shared
/// [`solver::SolverCache`] in `cfg.prune` stores only values that are pure
/// functions of their canonical keys. `jobs = 1` and `jobs = N` therefore
/// produce identical output (the determinism tests lock this in).
pub fn infer_all_preconditions(
    program: &TypedProgram,
    func_name: &str,
    suite: &Suite,
    cfg: &PreInferConfig,
    jobs: usize,
) -> Vec<(CheckId, Inference)> {
    let mut acls = suite.triggered_acls();
    acls.sort();
    let results: Vec<Option<Inference>> = crate::par::map_parallel(&acls, jobs, |acl| {
        infer_precondition(program, func_name, *acl, suite, cfg)
    });
    acls.into_iter().zip(results).filter_map(|(acl, inf)| inf.map(|inf| (acl, inf))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use testgen::{generate_tests, TestGenConfig};

    const FIG1: &str = "
        fn example(s [str], a int, b int, c int, d int) -> int {
            let sum = 0;
            if (a > 0) { b = b + 1; }
            if (c > 0) { d = d + 1; }
            if (b > 0) { sum = sum + 1; }
            if (d > 0) {
                for (let i = 0; i < len(s); i = i + 1) {
                    sum = sum + strlen(s[i]);
                }
                return sum;
            }
            return sum;
        }";

    /// The motivating example end to end: the inferred α for the element ACL
    /// matches the paper's ground truth at Fig. 1 Line 5 (semantically).
    #[test]
    fn fig1_element_acl_full_inference() {
        let tp = minilang::compile(FIG1).unwrap();
        let func = tp.func("example").unwrap().clone();
        let suite = generate_tests(&tp, "example", &TestGenConfig::default());
        let acl = suite
            .triggered_acls()
            .into_iter()
            .find(|a| {
                let (_, fail) = suite.partition(*a);
                fail.iter().any(|r| {
                    r.path
                        .last_branch()
                        .map(|e| e.pred.to_string().starts_with("s["))
                        .unwrap_or(false)
                })
            })
            .expect("element ACL triggered");
        let inf = infer_precondition(&tp, "example", acl, &suite, &PreInferConfig::default())
            .expect("failing tests exist");
        // The inferred precondition must be quantified, sufficient, and
        // necessary; and must agree with the ground truth everywhere.
        assert!(inf.precondition.quantified, "alpha: {}", inf.precondition.alpha);
        let truth_alpha = symbolic::parse_spec(
            "((c > 0 && d + 1 > 0) || (c <= 0 && d > 0)) && s != null \
             && exists i. i < len(s) && s[i] == null",
            &func,
        )
        .unwrap();
        let truth_psi = truth_alpha.negated();
        let (pass, fail) = suite.partition(acl);
        let pass_states: Vec<_> = pass.iter().map(|r| &r.state).collect();
        let fail_states: Vec<_> = fail.iter().map(|r| &r.state).collect();
        let q = crate::metrics::evaluate_precondition(
            &inf.precondition.psi,
            &func,
            &pass_states,
            &fail_states,
            Some(&truth_psi),
            &crate::metrics::ProbeConfig::default(),
        );
        assert!(q.sufficient, "not sufficient: alpha = {}", inf.precondition.alpha);
        assert!(q.necessary, "not necessary: alpha = {}", inf.precondition.alpha);
        assert_eq!(q.correct, Some(true), "alpha = {}", inf.precondition.alpha);
    }

    /// The Line-14 analogue ACL (null `s`): ground truth
    /// `((c>0 ∧ d+1>0) ∨ (c≤0 ∧ d>0)) ∧ s == null`.
    #[test]
    fn fig1_null_s_acl_full_inference() {
        let tp = minilang::compile(FIG1).unwrap();
        let func = tp.func("example").unwrap().clone();
        let suite = generate_tests(&tp, "example", &TestGenConfig::default());
        let acl = suite
            .triggered_acls()
            .into_iter()
            .find(|a| {
                let (_, fail) = suite.partition(*a);
                fail.iter().any(|r| {
                    r.path.last_branch().map(|e| e.pred.to_string() == "s == null").unwrap_or(false)
                })
            })
            .expect("null-s ACL triggered");
        let inf = infer_precondition(&tp, "example", acl, &suite, &PreInferConfig::default())
            .expect("failing tests exist");
        let truth_alpha =
            symbolic::parse_spec("((c > 0 && d + 1 > 0) || (c <= 0 && d > 0)) && s == null", &func)
                .unwrap();
        let (pass, fail) = suite.partition(acl);
        let pass_states: Vec<_> = pass.iter().map(|r| &r.state).collect();
        let fail_states: Vec<_> = fail.iter().map(|r| &r.state).collect();
        let q = crate::metrics::evaluate_precondition(
            &inf.precondition.psi,
            &func,
            &pass_states,
            &fail_states,
            Some(&truth_alpha.negated()),
            &crate::metrics::ProbeConfig::default(),
        );
        assert!(q.both(), "alpha = {}", inf.precondition.alpha);
        assert_eq!(q.correct, Some(true), "alpha = {}", inf.precondition.alpha);
    }

    /// §V-C: with no passing paths, the default config returns the raw
    /// disjunction; with `skip_passing_steps`, pruning still runs (using
    /// the dynamic machinery) and produces something simpler.
    #[test]
    fn no_passing_paths_fallback_and_mitigation() {
        let tp = minilang::compile("fn f(x int) { let zero = x - x; let y = 1 / zero; }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let (pass, _) = suite.partition(acl);
        assert!(pass.is_empty(), "every input fails");
        let plain = infer_precondition(&tp, "f", acl, &suite, &PreInferConfig::default()).unwrap();
        assert_eq!(plain.prune_stats, crate::PruneStats::default(), "no pruning ran");
        let cfg = PreInferConfig { skip_passing_steps: true, ..Default::default() };
        let mitigated = infer_precondition(&tp, "f", acl, &suite, &cfg).unwrap();
        assert!(
            mitigated.precondition.psi.complexity() <= plain.precondition.psi.complexity(),
            "mitigation should not be more complex: {} vs {}",
            mitigated.precondition.psi,
            plain.precondition.psi
        );
    }

    /// The even-index step template (in the default registry) fires end to
    /// end on an every-other-element loop: the failing family `a[0] == 0,
    /// a[2] == 0, …` has no witnesses at odd indices, so the plain
    /// Universal cannot generalize it, and `StepTemplate { step: 2,
    /// offset: 0 }` produces `∀i. (0 ≤ i ∧ i < len(a) ∧ i % 2 == 0) ⟹
    /// a[i] == 0`.
    #[test]
    fn step_template_fires_on_every_other_element_loop() {
        const SRC: &str = "
            fn even_elems_zero(a [int]) -> int {
                let nonzero = 0;
                for (let i = 0; i < len(a); i = i + 2) {
                    if (a[i] != 0) { nonzero = nonzero + 1; }
                }
                return 100 / nonzero;
            }";
        let tp = minilang::compile(SRC).unwrap();
        let suite = generate_tests(&tp, "even_elems_zero", &TestGenConfig::default());
        let acl = suite
            .triggered_acls()
            .into_iter()
            .find(|a| a.kind == minilang::CheckKind::DivByZero)
            .expect("division ACL triggered");
        let inf =
            infer_precondition(&tp, "even_elems_zero", acl, &suite, &PreInferConfig::default())
                .expect("failing tests exist");
        assert!(inf.precondition.quantified, "alpha: {}", inf.precondition.alpha);
        let alpha = inf.precondition.alpha.to_string();
        assert!(
            alpha.contains("(i % 2) == 0") && alpha.contains("a[i] == 0"),
            "step template did not fire: alpha = {alpha}"
        );
        // The suite cannot fool the quantified disjunct: every failing test
        // is blocked, and no passing test is.
        let (pass, fail) = suite.partition(acl);
        assert!(fail.iter().all(|r| !crate::metrics::validates(&inf.precondition.psi, &r.state)));
        assert!(pass.iter().all(|r| crate::metrics::validates(&inf.precondition.psi, &r.state)));
    }

    #[test]
    fn no_failing_tests_means_no_inference() {
        let tp = minilang::compile("fn f(x int) -> int { return x + 1; }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        assert!(suite.triggered_acls().is_empty());
    }
}
