//! Assembly of the inferred precondition from generalized reduced paths.
//!
//! `α` is the disjunction of the (pruned, generalized) failing path
//! conditions — the summary of the witnessed unsafe states; the inferred
//! precondition is `ψ = ¬α` (Section III-A). Duplicate predicates within a
//! disjunct and duplicate/subsumed disjuncts are removed, further
//! simplifying `α` exactly as the paper describes.

use crate::generalize::GeneralizedPath;
use symbolic::Formula;

/// An inferred precondition for one assertion-containing location.
#[derive(Debug, Clone)]
pub struct InferredPrecondition {
    /// The failure condition: a generalization of the witnessed unsafe
    /// states.
    pub alpha: Formula,
    /// The precondition guarding the method: `ψ = ¬α`.
    pub psi: Formula,
    /// Whether `α` contains a quantified condition (a Table VI
    /// collection-element inference).
    pub quantified: bool,
    /// Number of disjuncts of `α` after simplification.
    pub disjuncts: usize,
}

impl InferredPrecondition {
    /// The paper's complexity metric `|ψ|`.
    pub fn complexity(&self) -> usize {
        self.psi.complexity()
    }
}

/// Builds the precondition from per-failing-path conjunctions.
pub fn assemble(paths: &[GeneralizedPath]) -> InferredPrecondition {
    let quantified = paths.iter().any(|p| p.quantified);
    // Each disjunct: de-duplicate parts (by display form, which is canonical
    // enough after smart-constructor folding).
    let mut disjuncts: Vec<Vec<Formula>> = Vec::new();
    for p in paths {
        let mut parts: Vec<Formula> = Vec::new();
        let mut seen: Vec<String> = Vec::new();
        for part in &p.parts {
            // Canonical-level simplification: `t >= t`, `len + 1 >= 0` after
            // constant folding, and similar tautologies add nothing; a
            // canonically false part makes the whole disjunct vacuous.
            if let Formula::Pred(q) = part {
                match symbolic::canon_pred(q) {
                    symbolic::CanonPred::Const(true) => continue,
                    symbolic::CanonPred::Const(false) => {
                        parts.clear();
                        parts.push(Formula::f());
                        break;
                    }
                    _ => {}
                }
            }
            let key = match part {
                Formula::Pred(q) => format!("{}", symbolic::canon_pred(q)),
                other => other.to_string(),
            };
            if !seen.contains(&key) {
                seen.push(key);
                parts.push(part.clone());
            }
        }
        if parts.iter().any(|f| matches!(f, Formula::Pred(q) if q.is_trivially_false())) {
            continue; // vacuous disjunct
        }
        disjuncts.push(parts);
    }
    // Drop duplicate and subsumed disjuncts: if D2's parts are a subset of
    // D1's, then D1 ⇒ D2 and D1 is redundant in the disjunction.
    let keys: Vec<std::collections::BTreeSet<String>> =
        disjuncts.iter().map(|d| d.iter().map(|f| f.to_string()).collect()).collect();
    let mut keep = vec![true; disjuncts.len()];
    for i in 0..disjuncts.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..disjuncts.len() {
            if i == j || !keep[j] || !keep[i] {
                continue;
            }
            if keys[j].is_subset(&keys[i]) && (keys[j].len() < keys[i].len() || j < i) {
                keep[i] = false;
            }
        }
    }
    let kept: Vec<Formula> = disjuncts
        .into_iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(parts, _)| Formula::and(parts))
        .collect();
    let count = kept.len();
    let alpha = Formula::or(kept);
    let psi = alpha.negated();
    InferredPrecondition { alpha, psi, quantified, disjuncts: count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbolic::{CmpOp, Pred, Term};

    fn lt(name: &str, k: i64) -> Formula {
        Formula::pred(Pred::cmp(CmpOp::Lt, Term::var(name), Term::int(k)))
    }

    fn gp(parts: Vec<Formula>, quantified: bool) -> GeneralizedPath {
        GeneralizedPath { parts, quantified }
    }

    #[test]
    fn deduplicates_parts_within_disjunct() {
        let p = gp(vec![lt("x", 1), lt("x", 1), lt("y", 2)], false);
        let out = assemble(&[p]);
        assert_eq!(out.alpha.to_string(), "x < 1 && y < 2");
        assert_eq!(out.psi.to_string(), "x >= 1 || y >= 2");
    }

    #[test]
    fn deduplicates_identical_disjuncts() {
        let a = gp(vec![lt("x", 1)], false);
        let b = gp(vec![lt("x", 1)], false);
        let out = assemble(&[a, b]);
        assert_eq!(out.disjuncts, 1);
        assert_eq!(out.alpha.to_string(), "x < 1");
    }

    #[test]
    fn subsumed_disjunct_is_dropped() {
        // (x<1 ∧ y<2) ∨ (x<1) ≡ x<1
        let strong = gp(vec![lt("x", 1), lt("y", 2)], false);
        let weak = gp(vec![lt("x", 1)], false);
        let out = assemble(&[strong, weak]);
        assert_eq!(out.disjuncts, 1);
        assert_eq!(out.alpha.to_string(), "x < 1");
    }

    #[test]
    fn trivial_parts_are_dropped() {
        let p = gp(vec![Formula::t(), lt("x", 1)], false);
        let out = assemble(&[p]);
        assert_eq!(out.alpha.to_string(), "x < 1");
    }

    #[test]
    fn quantified_flag_propagates() {
        let q = gp(vec![Formula::exists("i", lt("i", 3))], true);
        let out = assemble(&[q]);
        assert!(out.quantified);
        assert_eq!(out.psi.to_string(), "forall i. i >= 3");
    }

    #[test]
    fn complexity_counts_psi() {
        let p = gp(vec![lt("x", 1), lt("y", 2)], false);
        let out = assemble(&[p]);
        assert_eq!(out.complexity(), 1);
    }
}
