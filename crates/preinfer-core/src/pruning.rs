//! Dynamic predicate pruning (Section IV-A, Algorithm 1).
//!
//! For each failing path condition, predicates are examined backward from
//! the last-branch predicate and removed when they are *irrelevant*: neither
//! **c-depend** (needed for location reachability, Definition 5) nor
//! **d-impact** (needed for expression preservation, Definition 6), and —
//! the §III-A safety condition — removal must not make the reduced path
//! condition admit any observed passing state (`ρ_p ∧ ρ'_f` must stay
//! unsatisfiable; checked dynamically by evaluating the candidate reduction
//! over the passing tests' method-entry states).
//!
//! Witnesses for the two relations are searched among all collected paths;
//! in *dynamic* mode the engine additionally manufactures candidate
//! witnesses the way the underlying DSE tool would: solve
//! `prefix ∧ ¬φ_j`, execute the model, and add the observed path to the
//! pool.

use concolic::{run_concolic, ConcolicConfig};
use minilang::{CheckId, MethodEntryState, TypedProgram};
use solver::{
    solve_preds_with, CacheLookup, FuncSig, IncrementalSession, SolveResult, SolverCache,
    SolverConfig,
};
use std::sync::Arc;
use symbolic::eval::{eval_pred, Env};
use symbolic::{canon_pred, EntryKind, PathCondition, PathEntry, Pred};
use testgen::TestRun;

/// Pruning configuration.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// Manufacture deviation witnesses with the solver + one execution when
    /// the suite has none (the "dynamic" in dynamic predicate pruning).
    pub dynamic_witnesses: bool,
    /// Budget for manufactured witnesses per failing path. (Per *path*, not
    /// per ACL: each path prunes against its own private witness extension,
    /// which is what makes per-path pruning order-independent and therefore
    /// parallelizable — see DESIGN.md, "Parallelism & caching".)
    pub max_dynamic_runs: usize,
    /// Enforce the §III-A guard (reject removals admitting a passing state).
    pub passing_guard: bool,
    /// Verify each removal dynamically: solve `candidate ∧ ¬φ_j` and
    /// execute the model; if that input does *not* fail at the ACL, the
    /// reduced path would capture passing behaviour, so the removal is
    /// rejected. (An `Unsat` answer proves the removal lossless; `Unknown`
    /// conservatively keeps the predicate.)
    pub verify_removals: bool,
    /// Solver budget for witness generation.
    pub solver: SolverConfig,
    /// Executor budget for witness runs.
    pub concolic: ConcolicConfig,
    /// Shared canonicalizing memo table fronting every solver call. Cached
    /// verdicts are pure functions of the canonical query, so sharing the
    /// cache across paths, ACLs, and threads never changes any result.
    pub solver_cache: Option<Arc<SolverCache>>,
    /// Worker threads for per-failing-path pruning. `0` or `1` is serial;
    /// any value produces identical output (paths are pruned independently).
    pub jobs: usize,
    /// Observation-only trace sink: wraps each failing path's pruning in a
    /// `prune` span and, when recording, emits one `prune_decision` event
    /// per kept/removed predicate. Never influences what is pruned.
    pub trace: Option<Arc<obs::TraceSink>>,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            dynamic_witnesses: true,
            max_dynamic_runs: 64,
            passing_guard: true,
            verify_removals: true,
            solver: SolverConfig::default(),
            concolic: ConcolicConfig::default(),
            solver_cache: None,
            jobs: 1,
            trace: None,
        }
    }
}

/// A failing path after pruning: the kept entries, in original order.
#[derive(Debug, Clone)]
pub struct ReducedPath {
    /// Kept entries (branch entries that survived plus still-relevant pins).
    pub entries: Vec<PathEntry>,
    /// The method-entry state of the originating failing test.
    pub state: MethodEntryState,
}

/// Statistics from one pruning invocation (reported by the benches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    pub examined: usize,
    pub kept_c_depend: usize,
    pub kept_d_impact: usize,
    pub kept_guard: usize,
    pub removed: usize,
    pub dynamic_runs: usize,
    /// Solver-cache hits observed by this invocation's own solver calls.
    /// Whether a given call hits depends on what earlier traffic (possibly
    /// from other threads) populated, so these are diagnostics, not part of
    /// the deterministic output contract.
    pub solver_cache_hits: usize,
    /// Solver-cache misses observed by this invocation's own solver calls.
    pub solver_cache_misses: usize,
}

impl PruneStats {
    /// Accumulates another invocation's counters into `self`.
    pub fn merge(&mut self, other: &PruneStats) {
        self.examined += other.examined;
        self.kept_c_depend += other.kept_c_depend;
        self.kept_d_impact += other.kept_d_impact;
        self.kept_guard += other.kept_guard;
        self.removed += other.removed;
        self.dynamic_runs += other.dynamic_runs;
        self.solver_cache_hits += other.solver_cache_hits;
        self.solver_cache_misses += other.solver_cache_misses;
    }

    fn count_lookup(&mut self, lookup: CacheLookup) {
        match lookup {
            CacheLookup::Hit => self.solver_cache_hits += 1,
            CacheLookup::Miss => self.solver_cache_misses += 1,
            CacheLookup::Bypass => {}
        }
    }
}

/// Prunes every failing path of `acl`.
///
/// `passing` and `failing` are the suite partition for this ACL (Section
/// V-B); the returned reductions are in the same order as `failing`.
///
/// Each failing path is pruned against the same immutable *base* witness
/// pool (every collected path) plus a private extension of manufactured
/// witnesses, so the result for a path does not depend on which other paths
/// were pruned before it. That independence makes the per-path fan-out
/// (`cfg.jobs > 1`) produce byte-identical output to the serial run.
pub fn prune_failing_paths(
    program: &TypedProgram,
    func_name: &str,
    acl: CheckId,
    passing: &[&TestRun],
    failing: &[&TestRun],
    cfg: &PruneConfig,
) -> (Vec<ReducedPath>, PruneStats) {
    let func = program.func(func_name).expect("known function");
    let sig = FuncSig::of(func);
    // Base witness pool: all collected paths (passing and failing).
    let base_pool: Vec<PathCondition> =
        passing.iter().chain(failing.iter()).map(|r| r.path.clone()).collect();
    let passing_states: Vec<&MethodEntryState> = passing.iter().map(|r| &r.state).collect();

    let prune_run = |run: &TestRun| -> (ReducedPath, PruneStats) {
        let _span = obs::maybe_span(&cfg.trace, obs::Stage::Prune);
        let mut stats = PruneStats::default();
        let reduced = prune_one(
            program,
            func_name,
            &sig,
            acl,
            &run.path,
            &passing_states,
            &base_pool,
            cfg,
            &mut stats,
        );
        if let Some(sink) = obs::recording_sink(&cfg.trace) {
            sink.event(
                "path_pruned",
                &[
                    ("entries", obs::Val::U(run.path.entries.len() as u64)),
                    ("kept", obs::Val::U(reduced.len() as u64)),
                    ("removed", obs::Val::U(stats.removed as u64)),
                ],
            );
        }
        (ReducedPath { entries: reduced, state: run.state.clone() }, stats)
    };

    let results: Vec<(ReducedPath, PruneStats)> =
        crate::par::map_parallel(failing, cfg.jobs, |run| prune_run(run));

    let mut stats = PruneStats::default();
    let mut out = Vec::with_capacity(results.len());
    for (reduced, s) in results {
        stats.merge(&s);
        out.push(reduced);
    }
    (out, stats)
}

#[allow(clippy::too_many_arguments)]
fn prune_one(
    program: &TypedProgram,
    func_name: &str,
    sig: &FuncSig,
    acl: CheckId,
    path: &PathCondition,
    passing_states: &[&MethodEntryState],
    base_pool: &[PathCondition],
    cfg: &PruneConfig,
    stats: &mut PruneStats,
) -> Vec<PathEntry> {
    let n = path.entries.len();
    if n == 0 {
        return Vec::new();
    }
    // Witnesses manufactured while pruning *this* path. Kept private so the
    // reduction is a function of (path, base pool) alone.
    let mut local_pool: Vec<PathCondition> = Vec::new();
    // All solver queries below conjoin prefixes of this one path, so under
    // `cfg.solver.incremental` they share a single warm session; answers are
    // byte-identical to per-call scratch solves.
    let mut session = cfg
        .solver
        .incremental
        .then(|| IncrementalSession::new(sig, &cfg.solver, cfg.solver_cache.clone()));
    // One `prune_decision` event per examined predicate when recording.
    let decision = |kind: &'static str, j: usize| {
        if let Some(sink) = obs::recording_sink(&cfg.trace) {
            let pred = path.entries[j].pred.to_string();
            sink.event(
                "prune_decision",
                &[
                    ("decision", obs::Val::S(kind)),
                    ("idx", obs::Val::U(j as u64)),
                    ("pred", obs::Val::S(&pred)),
                ],
            );
        }
    };
    // kept[j] - whether entry j survives. The last branch entry (the
    // assertion-violating condition) is always kept; pins are resolved last.
    let mut kept = vec![true; n];
    let last_branch_idx = path
        .entries
        .iter()
        .rposition(|e| e.kind.is_branch())
        .expect("failing path has a last branch");
    // Compare violating conditions up to collection-element position: the
    // same violated property at a different iteration is *not* an expression
    // change (otherwise any loop program defeats pruning).
    let last_canon = canon_pred(&crate::generalize::abstract_all_indices(
        &path.entries[last_branch_idx].pred,
        "_ix",
    ));

    for j in (0..n).rev() {
        if j == last_branch_idx {
            continue;
        }
        if cfg.solver.deadline.expired() {
            // Deadline passed: keep every remaining predicate (sound, just
            // less reduced) rather than issuing further solver calls.
            break;
        }
        let is_pin = path.entries[j].kind == EntryKind::Pin;
        stats.examined += 1;
        // --- implied predicates: if `prefix ∧ ¬φ_j` is unsatisfiable, φ_j
        // is entailed by the preceding predicates and dropping it loses
        // nothing (the deviation the relations would probe does not exist).
        if cfg.dynamic_witnesses && stats.dynamic_runs < cfg.max_dynamic_runs {
            let mut preds: Vec<Pred> = path.entries[..j].iter().map(|e| e.pred.clone()).collect();
            preds.push(path.entries[j].pred.negated());
            if session_solve(&preds, sig, cfg, &mut session, stats) == SolveResult::Unsat {
                kept[j] = false;
                if std::env::var_os("PREINFER_DEBUG").is_some() {
                    eprintln!("  IMPLIED-REMOVED [{j}] {}", path.entries[j].pred);
                }
                stats.removed += 1;
                decision("implied", j);
                continue;
            }
        }
        // Concretization pins are not branch decisions: the relations have
        // no deviating paths to probe, so pins go straight to the removal
        // guard/verification below (and fall back to "keep" without it).
        if !is_pin {
            // --- c-depend: does some deviation at j still reach the ACL? ------
            let mut reaches_witness =
                find_deviation(base_pool, &local_pool, path, j, |q| q.reaches_check(acl));
            if !reaches_witness
                && cfg.dynamic_witnesses
                && stats.dynamic_runs < cfg.max_dynamic_runs
            {
                if let Some(newly) =
                    manufacture(program, func_name, sig, acl, path, j, cfg, &mut session, stats)
                {
                    let reaches = newly.reaches_check(acl);
                    local_pool.push(newly);
                    reaches_witness = reaches_witness || reaches;
                }
            }
            if !reaches_witness {
                // No deviation reaches the location: c-depend holds — keep.
                stats.kept_c_depend += 1;
                decision("c_depend", j);
                continue;
            }
            // --- d-impact: does some deviation change the violating expression?
            // Element-family predicates (those dereferencing a collection at a
            // constant index) compare violating conditions *positionally*: a
            // deviation failing at a different element is an expression change,
            // which is what keeps the overly specific families alive for the
            // generalization step (Section IV-B's premise). Scalar predicates
            // compare up to element position, so loop-length diversity in the
            // suite cannot block their pruning.
            let positional =
                !crate::generalize::index_occurrences(&path.entries[j].pred).is_empty();
            let d_impact = find_deviation(base_pool, &local_pool, path, j, |q| {
                q.outcome.failed_check() == Some(acl)
                    && q.last_branch()
                        .map(|e| {
                            if positional {
                                canon_pred(&e.pred)
                                    != canon_pred(&path.entries[last_branch_idx].pred)
                            } else {
                                canon_pred(&crate::generalize::abstract_all_indices(&e.pred, "_ix"))
                                    != last_canon
                            }
                        })
                        .unwrap_or(false)
            });
            if d_impact {
                stats.kept_d_impact += 1;
                decision("d_impact", j);
                continue;
            }
        } else if !cfg.verify_removals && !cfg.passing_guard {
            // Without the dynamic machinery pins stay (soundness default).
            continue;
        }
        // --- §III-A guard: removal must not admit a passing state. ---------
        kept[j] = false;
        if cfg.passing_guard {
            let admits = {
                let _guard_span = obs::maybe_span(&cfg.trace, obs::Stage::PassingGuard);
                passing_states.iter().any(|state| satisfied_by(&path.entries, &kept, state))
            };
            if admits {
                kept[j] = true;
                stats.kept_guard += 1;
                decision("guard", j);
                continue;
            }
        }
        // --- removal verification: would `candidate ∧ ¬φ_j` pass at e? -----
        if cfg.verify_removals {
            let mut preds: Vec<Pred> = path
                .entries
                .iter()
                .enumerate()
                .filter(|(k, _)| kept[*k])
                .map(|(_, e)| e.pred.clone())
                .collect();
            preds.push(path.entries[j].pred.negated());
            let verdict = match session_solve(&preds, sig, cfg, &mut session, stats) {
                SolveResult::Unsat => Removal::Lossless,
                SolveResult::Unknown => Removal::Rejected,
                SolveResult::Sat(model) => {
                    stats.dynamic_runs += 1;
                    let out = run_concolic(program, func_name, &model, &cfg.concolic);
                    let fails_here = out.path.outcome.failed_check() == Some(acl);
                    local_pool.push(out.path);
                    if fails_here {
                        Removal::Accepted
                    } else {
                        Removal::Rejected
                    }
                }
            };
            if let Some(sink) = obs::recording_sink(&cfg.trace) {
                let label = match verdict {
                    Removal::Lossless => "lossless",
                    Removal::Accepted => "accepted",
                    Removal::Rejected => "rejected",
                };
                sink.event(
                    "verify",
                    &[("idx", obs::Val::U(j as u64)), ("verdict", obs::Val::S(label))],
                );
            }
            if verdict == Removal::Rejected {
                kept[j] = true;
                stats.kept_guard += 1;
                decision("guard", j);
                continue;
            }
        }
        if std::env::var_os("PREINFER_DEBUG").is_some() {
            eprintln!("  REMOVED [{j}] {}", path.entries[j].pred);
        }
        stats.removed += 1;
        decision("removed", j);
    }

    // Pins that survive the loop are load-bearing: the removal
    // verification (or, without it, conservatism) decided they must stay —
    // other removals may lean on them as logical support, so no post-hoc
    // relevance filtering is applied.
    path.entries.iter().enumerate().filter(|(j, _)| kept[*j]).map(|(_, e)| e.clone()).collect()
}

/// One pruning solver call: through the path's warm [`IncrementalSession`]
/// when one is open, through the scratch entry point otherwise. The two
/// routes return identical verdicts and models (see `solver::incremental`);
/// cache-lookup accounting lands in `stats` either way.
fn session_solve(
    preds: &[Pred],
    sig: &FuncSig,
    cfg: &PruneConfig,
    session: &mut Option<IncrementalSession>,
    stats: &mut PruneStats,
) -> SolveResult {
    let (result, lookup) = match session {
        Some(s) => s.solve_preds(preds),
        None => solve_preds_with(preds, sig, &cfg.solver, cfg.solver_cache.as_deref()),
    };
    stats.count_lookup(lookup);
    result
}

/// Verdict of the removal-verification step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Removal {
    /// `candidate ∧ ¬φ_j` is unsatisfiable: dropping φ_j loses nothing.
    Lossless,
    /// The deviating witness fails at the ACL: the widened disjunct still
    /// only covers failing behaviour.
    Accepted,
    /// The deviating witness passes (or the solver is unsure): keep φ_j.
    Rejected,
}

/// Whether the conjunction of the kept entries' predicates holds on `state`.
/// Evaluation errors (guarded dereferences) count as "not satisfied".
fn satisfied_by(entries: &[PathEntry], kept: &[bool], state: &MethodEntryState) -> bool {
    let env = Env::new(state);
    entries.iter().zip(kept).filter(|(_, &k)| k).all(|(e, _)| eval_pred(&e.pred, &env) == Ok(true))
}

/// Searches the base pool and this path's local extension for a path
/// deviating from `path` at `j` satisfying `f`.
fn find_deviation(
    base_pool: &[PathCondition],
    local_pool: &[PathCondition],
    path: &PathCondition,
    j: usize,
    f: impl Fn(&PathCondition) -> bool,
) -> bool {
    base_pool.iter().chain(local_pool).any(|q| path.deviates_at(q, j) && f(q))
}

/// Manufactures a deviation witness for position `j`: solves
/// `prefix ∧ ¬φ_j ∧ suffix` (steering the witness toward the
/// assertion-containing location — the paper's location-reachability
/// concern) and, if that is unsatisfiable or the run does not reach the
/// target, falls back to `prefix ∧ ¬φ_j` alone. Executes each model and
/// returns the first observed path that reaches `acl` (or the last observed
/// path otherwise, still useful for the pool).
#[allow(clippy::too_many_arguments)]
fn manufacture(
    program: &TypedProgram,
    func_name: &str,
    sig: &FuncSig,
    acl: CheckId,
    path: &PathCondition,
    j: usize,
    cfg: &PruneConfig,
    session: &mut Option<IncrementalSession>,
    stats: &mut PruneStats,
) -> Option<PathCondition> {
    let prefix_neg = |with_suffix: bool| -> Vec<Pred> {
        let mut preds: Vec<Pred> = path.entries[..j].iter().map(|e| e.pred.clone()).collect();
        preds.push(path.entries[j].pred.negated());
        if with_suffix {
            preds.extend(path.entries[j + 1..].iter().map(|e| e.pred.clone()));
        }
        preds
    };
    let mut last = None;
    for with_suffix in [true, false] {
        stats.dynamic_runs += 1;
        let solved = session_solve(&prefix_neg(with_suffix), sig, cfg, session, stats);
        if let SolveResult::Sat(model) = solved {
            let out = run_concolic(program, func_name, &model, &cfg.concolic);
            let reaches = out.path.reaches_check(acl);
            last = Some(out.path);
            if reaches {
                return last;
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use testgen::{generate_tests, TestGenConfig};

    const FIG1: &str = "
        fn example(s [str], a int, b int, c int, d int) -> int {
            let sum = 0;
            if (a > 0) { b = b + 1; }
            if (c > 0) { d = d + 1; }
            if (b > 0) { sum = sum + 1; }
            if (d > 0) {
                for (let i = 0; i < len(s); i = i + 1) {
                    sum = sum + strlen(s[i]);
                }
                return sum;
            }
            return sum;
        }";

    /// The central pruning example of the paper: on the t_f1-style failing
    /// path, `a > 0` and `b + 1 > 0` are pruned while `c > 0`, `d + 1 > 0`,
    /// `s != null`, `0 < len(s)` and `s[0] == null` are kept.
    #[test]
    fn fig1_table1_pruning() {
        let tp = minilang::compile(FIG1).unwrap();
        let suite = generate_tests(&tp, "example", &TestGenConfig::default());
        // The element ACL: a failing run whose last branch mentions s[0].
        let acl = suite
            .triggered_acls()
            .into_iter()
            .find(|a| {
                let (_, fail) = suite.partition(*a);
                fail.iter().any(|r| {
                    r.path
                        .last_branch()
                        .map(|e| e.pred.to_string().starts_with("s["))
                        .unwrap_or(false)
                })
            })
            .expect("element ACL");
        let (pass, _fail) = suite.partition(acl);
        // Execute the paper's exact t_f1: (s: {null}, a: 1, b: 0, c: 1, d: 0).
        let tf1_state = minilang::MethodEntryState::from_pairs([
            ("s".to_string(), minilang::InputValue::ArrayStr(Some(vec![None]))),
            ("a".to_string(), minilang::InputValue::Int(1)),
            ("b".to_string(), minilang::InputValue::Int(0)),
            ("c".to_string(), minilang::InputValue::Int(1)),
            ("d".to_string(), minilang::InputValue::Int(0)),
        ]);
        let tf1_out = run_concolic(&tp, "example", &tf1_state, &ConcolicConfig::default());
        assert_eq!(tf1_out.path.outcome.failed_check(), Some(acl), "t_f1 fails at the element ACL");
        let tf1 = TestRun::new(tf1_state, tf1_out);
        let (reduced, _stats) =
            prune_failing_paths(&tp, "example", acl, &pass, &[&tf1], &PruneConfig::default());
        let kept: Vec<String> = reduced[0].entries.iter().map(|e| e.pred.to_string()).collect();
        assert!(!kept.contains(&"a > 0".to_string()), "a > 0 must be pruned: {kept:?}");
        assert!(!kept.contains(&"(b + 1) > 0".to_string()), "b + 1 > 0 must be pruned: {kept:?}");
        for want in ["c > 0", "(d + 1) > 0", "s != null", "0 < len(s)", "s[0] == null"] {
            assert!(kept.contains(&want.to_string()), "{want} must be kept: {kept:?}");
        }
    }

    #[test]
    fn reduced_paths_never_admit_passing_states() {
        let tp = minilang::compile(FIG1).unwrap();
        let suite = generate_tests(&tp, "example", &TestGenConfig::default());
        for acl in suite.triggered_acls() {
            let (pass, fail) = suite.partition(acl);
            let (reduced, _) =
                prune_failing_paths(&tp, "example", acl, &pass, &fail, &PruneConfig::default());
            for r in &reduced {
                let kept = vec![true; r.entries.len()];
                for p in &pass {
                    assert!(
                        !satisfied_by(&r.entries, &kept, &p.state),
                        "passing state {} satisfies reduced path {:?}",
                        p.state,
                        r.entries.iter().map(|e| e.pred.to_string()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn last_branch_is_always_kept() {
        let tp = minilang::compile(
            "fn f(x int, y int) -> int { if (x > 0) { assert(y != 3); } return 0; }",
        )
        .unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let (pass, fail) = suite.partition(acl);
        let (reduced, _) =
            prune_failing_paths(&tp, "f", acl, &pass, &fail, &PruneConfig::default());
        for r in &reduced {
            let last = r.entries.last().expect("non-empty reduction");
            assert_eq!(last.pred.to_string(), "y == 3");
        }
    }

    #[test]
    fn guard_can_be_disabled() {
        // Without the guard (and without witnesses) behaviour should still
        // terminate and keep the last branch.
        let tp = minilang::compile("fn f(x int) { assert(x != 1); }").unwrap();
        let suite = generate_tests(&tp, "f", &TestGenConfig::default());
        let acl = suite.triggered_acls()[0];
        let (pass, fail) = suite.partition(acl);
        let cfg =
            PruneConfig { passing_guard: false, dynamic_witnesses: false, ..Default::default() };
        let (reduced, _) = prune_failing_paths(&tp, "f", acl, &pass, &fail, &cfg);
        assert!(!reduced.is_empty());
        assert_eq!(reduced[0].entries.last().unwrap().pred.to_string(), "x == 1");
    }
}
