//! Interprocedural inference: callee ψ-summaries instead of inlining.
//!
//! Given an entry method, the builder walks the program's [`CallGraph`]
//! bottom-up (reverse topological over SCCs), runs the intraprocedural
//! PreInfer pipeline once per reachable callee, and stores each callee's
//! per-check ψ — renamed to the canonical positional parameters
//! `%0, %1, …` — in a [`SummaryTable`] keyed by the α-canonical rendering
//! of the callee *and its transitive callees* (so a table shared across
//! programs hits exactly when the callee closure is α-equivalent). The
//! resolved per-program view ([`ResolvedSummaries`]) is what the concolic
//! executor consumes to apply `ψ(actuals)` / `¬ψ(actuals)` at call sites.
//!
//! Recursive callees (self-loops or SCCs of size > 1) are never
//! summarized: calls to them inline as before, with a typed
//! [`FallbackReason`] surfaced in the build report.

use crate::pipeline::{infer_all_preconditions, PreInferConfig};
use crate::pruning::PruneConfig;
use concolic::ResolvedSummaries;
use minilang::{canonical_func_string, check_sites, CallGraph, CheckId, TypedProgram};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use symbolic::{rename_formula, Formula};
use testgen::{generate_tests, TestGenConfig};

/// Why a reachable callee was left to inline instead of being summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The callee is self-recursive or sits in a call-graph SCC with other
    /// functions: its path space cannot be collapsed bottom-up.
    Recursive,
    /// Inference produced nothing storable: no check ever failed under the
    /// generated suite, or every inferred ψ was quantified (quantified
    /// formulas do not survive actual-substitution at call sites).
    NoUsableSummary,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FallbackReason::Recursive => "recursive",
            FallbackReason::NoUsableSummary => "no-usable-summary",
        })
    }
}

/// One function's stored summaries: ψ per check site, keyed by the check's
/// *position* in the callee's closure site order ([`closure_sites`]: own
/// sites first, then each reachable callee's, in lexicographic name order —
/// stable across α-equivalent copies of the closure, unlike node ids), in
/// the canonical `%i` parameter naming. Checks living in transitive callees
/// are included: a caller's ψ guards everything reachable from it.
#[derive(Debug, Clone, Default)]
pub struct StoredFuncSummary {
    pub checks: HashMap<usize, Formula>,
}

impl StoredFuncSummary {
    /// Whether inference produced no storable check summary.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }
}

/// A process-lifetime table of callee summaries, shared across methods,
/// worker threads, and (in the daemon) requests. Keys are
/// [`solver::affinity_hash`] values of the α-canonical closure rendering —
/// see [`closure_key`] — so two programs whose callee closures differ only
/// in identifier naming share entries.
#[derive(Debug, Default)]
pub struct SummaryTable {
    entries: Mutex<HashMap<u64, StoredFuncSummary>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl SummaryTable {
    pub fn new() -> SummaryTable {
        SummaryTable::default()
    }

    /// Looks up a callee by closure key, counting a hit or miss.
    pub fn lookup(&self, key: u64) -> Option<StoredFuncSummary> {
        let found = self.entries.lock().unwrap().get(&key).cloned();
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a callee's summary (empty summaries are stored too — they
    /// cache the negative result so α-equivalent callees are not
    /// re-inferred).
    pub fn insert(&self, key: u64, summary: StoredFuncSummary) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().unwrap().insert(key, summary);
    }

    /// Number of stored callees.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Inserts so far.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }
}

/// Budgets for the bottom-up builder. The testgen config carries the
/// concolic, solver, cache, and trace plumbing exactly as in the
/// intraprocedural pipeline.
#[derive(Debug, Clone, Default)]
pub struct SummaryBuildConfig {
    pub testgen: TestGenConfig,
    pub prune: PruneConfig,
    /// Worker threads for the per-ACL inference fan-out within one callee.
    pub jobs: usize,
    /// Apply/fallback counters installed into the resolved view — pass a
    /// shared handle to aggregate across builds (the daemon does, for its
    /// lifetime `summaries` stats); the default is a fresh per-build one.
    pub stats: Arc<concolic::SummaryApplyStats>,
}

/// The outcome of one bottom-up build: the per-program resolved view plus
/// a report of which callees were summarized and which fell back.
#[derive(Debug)]
pub struct SummaryBuild {
    /// Per-program summaries for the executor ([`concolic::ConcolicConfig`]'s
    /// `summaries` slot).
    pub resolved: Arc<ResolvedSummaries>,
    /// Callees with at least one stored check summary, bottom-up order.
    pub summarized: Vec<String>,
    /// Callees left to inline, with the typed reason.
    pub fallbacks: Vec<(String, FallbackReason)>,
    /// Table hits observed by this build (α-equivalent closure reuse).
    pub table_hits: u64,
}

/// The α-canonical closure key for `name`: the canonical rendering of the
/// function followed by the canonical renderings of every function
/// reachable from it, in lexicographic name order. Two callees collide
/// exactly when their whole reachable closure is α-equivalent modulo
/// parameter naming, which is what makes a stored summary safe to reuse.
pub fn closure_key(program: &TypedProgram, cg: &CallGraph, name: &str) -> Option<u64> {
    let func = program.func(name)?;
    let mut rendering = canonical_func_string(func);
    let mut reachable = cg.bottom_up_from(name);
    reachable.retain(|f| f != name);
    reachable.sort();
    for f in reachable {
        let callee = program.func(&f)?;
        rendering.push('\n');
        rendering.push_str(&canonical_func_string(callee));
    }
    Some(solver::affinity_hash(&rendering))
}

/// The check sites visible through `name`, in the same deterministic order
/// the closure key renders functions: `name`'s own sites first, then the
/// sites of each reachable function in lexicographic name order. Positions
/// in this list are the [`StoredFuncSummary`] keys — any two callees with
/// equal closure keys have identical closure site shapes, so a position
/// stored under one resolves correctly under the other.
pub fn closure_sites(
    program: &TypedProgram,
    cg: &CallGraph,
    name: &str,
) -> Vec<minilang::CheckSite> {
    let Some(func) = program.func(name) else { return Vec::new() };
    let mut sites = check_sites(func);
    let mut reachable = cg.bottom_up_from(name);
    reachable.retain(|f| f != name);
    reachable.sort();
    for f in reachable {
        if let Some(callee) = program.func(&f) {
            sites.extend(check_sites(callee));
        }
    }
    sites
}

/// Builds ψ-summaries for every non-recursive callee reachable from
/// `entry`, bottom-up, reusing `table` entries where the closure key hits.
/// Callees deeper in the graph are summarized first, and each callee's own
/// inference already runs in summary mode over the summaries built so far —
/// the composition the paper's inlining avoids by construction.
pub fn build_summaries(
    program: &TypedProgram,
    entry: &str,
    table: &SummaryTable,
    cfg: &SummaryBuildConfig,
) -> SummaryBuild {
    let cg = CallGraph::of(program.program());
    let order = cg.bottom_up_from(entry);
    let hits_before = table.hits();

    let mut by_func: HashMap<String, HashMap<CheckId, Formula>> = HashMap::new();
    let mut summarized = Vec::new();
    let mut fallbacks = Vec::new();

    for name in order {
        if cg.is_recursive(&name) {
            fallbacks.push((name, FallbackReason::Recursive));
            continue;
        }
        let Some(key) = closure_key(program, &cg, &name) else { continue };
        let stored = match table.lookup(key) {
            Some(stored) => {
                if let Some(sink) = obs::recording_sink(&cfg.testgen.trace) {
                    sink.event(
                        "summary_hit",
                        &[
                            ("func", obs::Val::S(&name)),
                            ("checks", obs::Val::U(stored.checks.len() as u64)),
                        ],
                    );
                }
                stored
            }
            None => {
                let stored = infer_func_summary(program, &cg, &name, &by_func, cfg);
                table.insert(key, stored.clone());
                stored
            }
        };
        if stored.is_empty() {
            fallbacks.push((name, FallbackReason::NoUsableSummary));
            continue;
        }
        // Resolve stored positional indices back to this program's ids.
        let sites = closure_sites(program, &cg, &name);
        let resolved: HashMap<CheckId, Formula> = stored
            .checks
            .iter()
            .filter_map(|(&idx, psi)| sites.get(idx).map(|s| (s.id, psi.clone())))
            .collect();
        if resolved.is_empty() {
            fallbacks.push((name, FallbackReason::NoUsableSummary));
            continue;
        }
        by_func.insert(name.clone(), resolved);
        summarized.push(name);
    }

    let resolved = Arc::new(ResolvedSummaries { by_func, stats: cfg.stats.clone() });
    SummaryBuild { resolved, summarized, fallbacks, table_hits: table.hits() - hits_before }
}

/// Runs the intraprocedural pipeline on one callee and converts the
/// inferred ψ per triggered check into stored (positional, `%i`-renamed)
/// form. Quantified ψ are skipped: the call-site decomposition cannot
/// evaluate them soundly against substituted actuals.
fn infer_func_summary(
    program: &TypedProgram,
    cg: &CallGraph,
    name: &str,
    built_so_far: &HashMap<String, HashMap<CheckId, Formula>>,
    cfg: &SummaryBuildConfig,
) -> StoredFuncSummary {
    let func = program.func(name).expect("callee exists");
    // Nested calls inside this callee use the summaries already built for
    // deeper functions (bottom-up composition).
    let nested =
        Arc::new(ResolvedSummaries { by_func: built_so_far.clone(), stats: Default::default() });
    let mut tg = cfg.testgen.clone();
    let mut prune = cfg.prune.clone();
    if !nested.is_empty() {
        tg.concolic.summaries = Some(nested.clone());
        prune.concolic.summaries = Some(nested);
    }
    let suite = generate_tests(program, name, &tg);
    let precfg = PreInferConfig { prune, ..Default::default() };
    let inferences = infer_all_preconditions(program, name, &suite, &precfg, cfg.jobs.max(1));

    let sites = closure_sites(program, cg, name);
    let renames: Vec<(String, String)> =
        func.params.iter().enumerate().map(|(i, p)| (p.name.clone(), format!("%{i}"))).collect();
    let mut checks = HashMap::new();
    for (acl, inf) in inferences {
        if inf.precondition.quantified {
            continue;
        }
        let Some(idx) = sites.iter().position(|s| s.id == acl) else { continue };
        checks.insert(idx, rename_formula(&inf.precondition.psi, &renames));
    }
    StoredFuncSummary { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HELPER: &str = "
        fn half(d int) -> int { return 100 / d; }
        fn main(x int) -> int { return half(x - 1); }";

    #[test]
    fn builds_summary_for_simple_callee() {
        let tp = minilang::compile(HELPER).unwrap();
        let table = SummaryTable::new();
        let build = build_summaries(&tp, "main", &table, &SummaryBuildConfig::default());
        assert_eq!(build.summarized, vec!["half".to_string()]);
        assert!(build.fallbacks.is_empty());
        assert_eq!(table.inserts(), 1);
        let psi = build.resolved.by_func["half"].values().next().unwrap().to_string();
        // ψ over the canonical parameter: the divisor must be nonzero.
        assert!(psi.contains("%0"), "psi not canonical: {psi}");
    }

    #[test]
    fn alpha_equivalent_callee_hits_the_table() {
        let renamed = "
            fn half(divisor int) -> int { return 100 / divisor; }
            fn main(y int) -> int { return half(y - 1); }";
        let table = SummaryTable::new();
        let a = build_summaries(
            &minilang::compile(HELPER).unwrap(),
            "main",
            &table,
            &SummaryBuildConfig::default(),
        );
        assert_eq!(a.table_hits, 0);
        let b = build_summaries(
            &minilang::compile(renamed).unwrap(),
            "main",
            &table,
            &SummaryBuildConfig::default(),
        );
        assert_eq!(b.table_hits, 1, "α-equivalent closure should hit");
        assert_eq!(table.inserts(), 1, "no re-inference");
        assert_eq!(
            a.resolved.by_func["half"].values().next().unwrap(),
            b.resolved.by_func["half"].values().next().unwrap()
        );
    }

    #[test]
    fn recursive_callee_falls_back_typed() {
        let src = "
            fn down(n int) -> int {
                if (n <= 0) { return 0; }
                return down(n - 1);
            }
            fn main(n int) -> int { return down(n); }";
        let tp = minilang::compile(src).unwrap();
        let table = SummaryTable::new();
        let build = build_summaries(&tp, "main", &table, &SummaryBuildConfig::default());
        assert!(build.summarized.is_empty());
        assert_eq!(build.fallbacks, vec![("down".to_string(), FallbackReason::Recursive)]);
        assert_eq!(table.inserts(), 0, "recursive callees are never stored");
    }

    #[test]
    fn checkless_callee_reports_no_usable_summary() {
        let src = "
            fn bump(x int) -> int { return x + 1; }
            fn main(x int) -> int { return bump(x); }";
        let tp = minilang::compile(src).unwrap();
        let table = SummaryTable::new();
        let build = build_summaries(&tp, "main", &table, &SummaryBuildConfig::default());
        assert!(build.summarized.is_empty());
        assert_eq!(build.fallbacks, vec![("bump".to_string(), FallbackReason::NoUsableSummary)]);
        // The negative result is cached: a second build hits.
        let again = build_summaries(&tp, "main", &table, &SummaryBuildConfig::default());
        assert_eq!(again.table_hits, 1);
    }

    #[test]
    fn bottom_up_chain_summarizes_both_levels() {
        let src = "
            fn leaf(d int) -> int { return 10 / d; }
            fn mid(a int) -> int { return leaf(a) + 1; }
            fn main(x int) -> int { return mid(x); }";
        let tp = minilang::compile(src).unwrap();
        let table = SummaryTable::new();
        let build = build_summaries(&tp, "main", &table, &SummaryBuildConfig::default());
        assert_eq!(build.summarized, vec!["leaf".to_string(), "mid".to_string()]);
        // mid's ψ must guard leaf's division through the summary chain.
        let psi = build.resolved.by_func["mid"].values().next().unwrap().to_string();
        assert!(psi.contains("%0"), "mid psi not canonical: {psi}");
    }
}
