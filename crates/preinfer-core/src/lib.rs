//! # preinfer-core
//!
//! The paper's primary contribution: automatic inference of preconditions
//! via symbolic analysis. Given a method under test, an assertion-containing
//! location, and a shared suite of passing and failing tests with collected
//! path conditions, PreInfer
//!
//! 1. applies **dynamic predicate pruning** ([`pruning`], Algorithm 1 with
//!    the c-depend / d-impact relations of Definitions 5 and 6),
//! 2. applies **collection-element generalization** ([`generalize`], the
//!    Existential and Universal templates of Section IV-B with an open
//!    template registry), and
//! 3. assembles the precondition `ψ = ¬α` ([`precondition`]).
//!
//! Quality metrics (sufficient / necessary / correct / relative complexity,
//! Section V-B) live in [`metrics`]; the end-to-end driver in [`pipeline`].

pub mod generalize;
pub mod interproc;
pub mod metrics;
pub mod par;
pub mod pipeline;
pub mod precondition;
pub mod pruning;

pub use generalize::{
    abstract_all_indices, abstract_index, default_templates, generalize_path, index_occurrences,
    ExistentialTemplate, GeneralizedPath, StepTemplate, Template, TemplateMatch, UniversalTemplate,
};
pub use interproc::{
    build_summaries, closure_key, closure_sites, FallbackReason, StoredFuncSummary, SummaryBuild,
    SummaryBuildConfig, SummaryTable,
};
pub use metrics::{evaluate_precondition, random_probe, validates, PrecondQuality, ProbeConfig};
pub use par::map_parallel;
pub use pipeline::{infer_all_preconditions, infer_precondition, Inference, PreInferConfig};
pub use precondition::{assemble, InferredPrecondition};
pub use pruning::{prune_failing_paths, PruneConfig, PruneStats, ReducedPath};
