//! Quality metrics for inferred preconditions (Section V-B).
//!
//! * **Sufficient** — the precondition invalidates every failing test of the
//!   shared generated suite (blocks all illegal inputs seen).
//! * **Necessary** — it validates every passing test (blocks only illegal
//!   inputs).
//! * **Correct** — semantically equivalent to the hand-written ground truth,
//!   decided by agreement on a probe set: every suite state plus a seeded
//!   batch of random states. (The paper used manual inspection backed by
//!   Pex runs; the probe protocol automates the same judgement.)
//! * **Relative complexity** — `(|ψ| − |ψ*|) / |ψ*|`, Figure 3's metric.

use minilang::{Func, InputValue, MethodEntryState, Ty};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symbolic::eval::eval_on_state;
use symbolic::Formula;

/// Evaluation verdict for one inferred precondition at one ACL.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecondQuality {
    pub sufficient: bool,
    pub necessary: bool,
    /// `None` when no ground truth was provided.
    pub correct: Option<bool>,
    /// `|ψ|`.
    pub complexity: usize,
    /// `(|ψ| − |ψ*|) / max(1, |ψ*|)`; `None` without a ground truth.
    pub relative_complexity: Option<f64>,
}

impl PrecondQuality {
    /// Both sufficient and necessary (the paper's `#Both` column).
    pub fn both(&self) -> bool {
        self.sufficient && self.necessary
    }
}

/// Whether `psi` validates the method execution started from `state`
/// (Definition 4). Evaluation errors count as *invalidated* — an undefined
/// guard cannot admit the input.
pub fn validates(psi: &Formula, state: &MethodEntryState) -> bool {
    eval_on_state(psi, state) == Ok(true)
}

/// Configuration for the probe-based correctness check.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    pub random_probes: usize,
    pub rng_seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig { random_probes: 300, rng_seed: 0xC0FFEE }
    }
}

/// Evaluates an inferred precondition `psi` for one ACL.
///
/// `passing` / `failing` are method-entry states classified for this ACL —
/// the shared suite partition (Section V-B), optionally extended with
/// execution-classified probe states (the paper re-ran Pex against the
/// inserted precondition; the probe extension plays that role).
/// `ground_truth` is the hand-written `ψ*` if available.
pub fn evaluate_precondition(
    psi: &Formula,
    func: &Func,
    passing: &[&MethodEntryState],
    failing: &[&MethodEntryState],
    ground_truth: Option<&Formula>,
    probes: &ProbeConfig,
) -> PrecondQuality {
    let sufficient = failing.iter().all(|state| !validates(psi, state));
    let necessary = passing.iter().all(|state| validates(psi, state));
    let complexity = psi.complexity();
    let (correct, relative_complexity) = match ground_truth {
        None => (None, None),
        Some(truth) => {
            let mut agree = true;
            for state in passing.iter().chain(failing.iter()) {
                if !formulas_agree(psi, truth, state) {
                    agree = false;
                    break;
                }
            }
            if agree {
                let mut rng = StdRng::seed_from_u64(probes.rng_seed);
                for _ in 0..probes.random_probes {
                    let state = random_probe(func, &mut rng);
                    if !formulas_agree(psi, truth, &state) {
                        agree = false;
                        break;
                    }
                }
            }
            let denom = truth.complexity().max(1) as f64;
            let rel = (complexity as f64 - truth.complexity() as f64) / denom;
            (Some(agree), Some(rel))
        }
    };
    PrecondQuality { sufficient, necessary, correct, complexity, relative_complexity }
}

/// Agreement of two formulas on a state: equal `Result`-truth (both true,
/// both false, or both undefined).
fn formulas_agree(a: &Formula, b: &Formula, state: &MethodEntryState) -> bool {
    let va = eval_on_state(a, state).ok();
    let vb = eval_on_state(b, state).ok();
    va == vb
}

/// A random probe state biased toward the boundary shapes that matter
/// (nulls, empty and short collections, small ints, whitespace chars).
pub fn random_probe(func: &Func, rng: &mut StdRng) -> MethodEntryState {
    let mut state = MethodEntryState::new();
    for p in &func.params {
        state.set(&p.name, random_probe_value(p.ty, rng));
    }
    state
}

fn random_probe_value(ty: Ty, rng: &mut StdRng) -> InputValue {
    match ty {
        Ty::Int => InputValue::Int(
            *[-7, -2, -1, 0, 1, 2, 3, 5, 11].get(rng.gen_range(0..9usize)).expect("in range"),
        ),
        Ty::Bool => InputValue::Bool(rng.gen_bool(0.5)),
        Ty::Str => match rng.gen_range(0..5) {
            0 => InputValue::Str(None),
            1 => InputValue::Str(Some(vec![])),
            _ => InputValue::Str(Some(probe_chars(rng))),
        },
        Ty::ArrayInt => match rng.gen_range(0..5) {
            0 => InputValue::ArrayInt(None),
            1 => InputValue::ArrayInt(Some(vec![])),
            _ => {
                let len = rng.gen_range(1..=4);
                InputValue::ArrayInt(Some((0..len).map(|_| rng.gen_range(-3..=3)).collect()))
            }
        },
        Ty::ArrayStr => match rng.gen_range(0..5) {
            0 => InputValue::ArrayStr(None),
            1 => InputValue::ArrayStr(Some(vec![])),
            _ => {
                let len = rng.gen_range(1..=4);
                InputValue::ArrayStr(Some(
                    (0..len)
                        .map(|_| if rng.gen_bool(0.35) { None } else { Some(probe_chars(rng)) })
                        .collect(),
                ))
            }
        },
        Ty::Void => unreachable!("void parameter"),
    }
}

fn probe_chars(rng: &mut StdRng) -> Vec<i64> {
    let len = rng.gen_range(1..=4);
    (0..len).map(|_| if rng.gen_bool(0.4) { 32 } else { rng.gen_range(97..=99) }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::compile;
    use symbolic::parse_spec;

    #[test]
    fn suite_based_sufficiency_and_necessity() {
        let tp = compile("fn f(x int) { assert(x != 3); }").unwrap();
        let func = tp.func("f").unwrap().clone();
        let mk = |x: i64| MethodEntryState::from_pairs([("x", InputValue::Int(x))]);
        let passing = [mk(0), mk(5)];
        let failing = [mk(3)];
        let pass_refs: Vec<&MethodEntryState> = passing.iter().collect();
        let fail_refs: Vec<&MethodEntryState> = failing.iter().collect();
        let truth = parse_spec("x != 3", &func).unwrap();
        let q = evaluate_precondition(
            &truth,
            &func,
            &pass_refs,
            &fail_refs,
            Some(&truth),
            &ProbeConfig::default(),
        );
        assert!(q.sufficient && q.necessary);
        assert_eq!(q.correct, Some(true));
        assert_eq!(q.relative_complexity, Some(0.0));
        // A too-strong precondition: sufficient but not necessary.
        let strong = parse_spec("x > 10", &func).unwrap();
        let q = evaluate_precondition(
            &strong,
            &func,
            &pass_refs,
            &fail_refs,
            Some(&truth),
            &ProbeConfig::default(),
        );
        assert!(q.sufficient && !q.necessary);
        assert_eq!(q.correct, Some(false));
        // A too-weak precondition: necessary but not sufficient.
        let weak = parse_spec("true", &func).unwrap();
        let q = evaluate_precondition(
            &weak,
            &func,
            &pass_refs,
            &fail_refs,
            Some(&truth),
            &ProbeConfig::default(),
        );
        assert!(!q.sufficient && q.necessary);
    }

    #[test]
    fn probe_correctness_distinguishes_suite_equivalent_formulas() {
        // On the suite below, `x >= 0` and `x != -1` agree; random probes
        // must tell them apart.
        let tp = compile("fn f(x int) { assert(x >= 0); }").unwrap();
        let func = tp.func("f").unwrap().clone();
        let mk = |x: i64| MethodEntryState::from_pairs([("x", InputValue::Int(x))]);
        let passing = [mk(0)];
        let failing = [mk(-1)];
        let pass_refs: Vec<&MethodEntryState> = passing.iter().collect();
        let fail_refs: Vec<&MethodEntryState> = failing.iter().collect();
        let truth = parse_spec("x >= 0", &func).unwrap();
        let candidate = parse_spec("x != -1", &func).unwrap();
        let q = evaluate_precondition(
            &candidate,
            &func,
            &pass_refs,
            &fail_refs,
            Some(&truth),
            &ProbeConfig::default(),
        );
        assert!(q.both(), "agrees on the tiny suite");
        assert_eq!(q.correct, Some(false), "probes expose the difference");
    }

    #[test]
    fn quantified_ground_truth_agreement() {
        let tp = compile(
            "fn f(s [str]) -> int {
                let n = 0;
                for (let i = 0; i < len(s); i = i + 1) { n = n + strlen(s[i]); }
                return n;
            }",
        )
        .unwrap();
        let func = tp.func("f").unwrap().clone();
        let truth =
            parse_spec("s == null || !(exists i. i < len(s) && s[i] == null)", &func).unwrap();
        let q =
            evaluate_precondition(&truth, &func, &[], &[], Some(&truth), &ProbeConfig::default());
        assert_eq!(q.correct, Some(true));
    }
}
