//! A minimal scoped-thread fan-out used by the parallel inference driver.
//!
//! The standard library only (no rayon): workers claim items through an
//! atomic index and write each result into its input's slot, so the output
//! order equals the input order no matter which worker finishes first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results in input order. With `workers <= 1` (or one item) the map runs
/// on the calling thread. `f` must be freely callable from any worker;
/// item-to-worker assignment is scheduling-dependent, so any observable
/// output of `f` beyond its return value must not depend on which worker
/// runs it.
pub fn map_parallel<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot").expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = map_parallel(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<usize> = (0..37).collect();
        let serial = map_parallel(&items, 1, |&x| x * x + 1);
        let parallel = map_parallel(&items, 5, |&x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = map_parallel(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = map_parallel(&[1, 2], 16, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
