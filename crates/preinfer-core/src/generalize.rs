//! Collection-element generalization (Section IV-B).
//!
//! Overly specific predicates — families like `s[0] != null`, `1 < len(s)`,
//! `s[1] != null`, …, `s[2] == null` produced by loops over collections —
//! are matched against quantifier templates and replaced by a single
//! quantified condition. Two templates ship by default (the paper's
//! Existential and Universal); the registry is open, and the even-index
//! step template sketched in the paper is provided as [`StepTemplate`].
//!
//! A template instantiation is accepted only if it is *validated*: the
//! generalized disjunct must not hold on any observed passing state
//! (the dynamic approximation of `ρ_p ∧ α_gen` unsatisfiability, §III-A).

use crate::pruning::ReducedPath;
use minilang::MethodEntryState;
use symbolic::eval::{eval_on_state, eval_term, Env};
use symbolic::linform::canon_pred;
use symbolic::{
    CanonPred, CmpOp, Formula, Place, PlaceNode, Pred, SymVar, SymVarNode, Term, TermNode,
};

/// The bound-variable name used by all shipped templates.
pub const BOUND_VAR: &str = "i";

/// A successful template instantiation.
#[derive(Debug, Clone)]
pub struct TemplateMatch {
    /// The quantified condition replacing the subsumed entries.
    pub formula: Formula,
    /// Indices (into the reduced path's entries) replaced by the formula.
    pub subsumed: Vec<usize>,
}

/// A generalization template over reduced failing path conditions.
///
/// `Send + Sync` so a template registry can be shared by the parallel
/// inference driver's worker threads (templates are stateless matchers).
pub trait Template: Send + Sync {
    /// A short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Attempts to instantiate on a reduced path. Implementations should
    /// return the match subsuming as many overly specific predicates as
    /// possible; the engine picks the template with the largest subsumption.
    fn instantiate(&self, path: &ReducedPath) -> Option<TemplateMatch>;
}

/// The default template registry: Existential, Universal, then the paper's
/// sketched even/odd-index step instances. The engine picks the validating
/// match with the largest subsumption, and ties keep the earlier template,
/// so the step instances only fire where the plain Universal cannot (an
/// every-other-element family has no witnesses at the skipped indices).
pub fn default_templates() -> Vec<Box<dyn Template>> {
    vec![
        Box::new(ExistentialTemplate),
        Box::new(UniversalTemplate),
        Box::new(StepTemplate { step: 2, offset: 0 }),
        Box::new(StepTemplate { step: 2, offset: 1 }),
    ]
}

/// A reduced path after generalization: an ordered conjunction of formula
/// parts (plain predicates and quantified conditions).
#[derive(Debug, Clone)]
pub struct GeneralizedPath {
    pub parts: Vec<Formula>,
    /// Whether any quantified condition was introduced.
    pub quantified: bool,
}

impl GeneralizedPath {
    /// The conjunction of all parts.
    pub fn conjunction(&self) -> Formula {
        Formula::and(self.parts.iter().cloned())
    }
}

/// Generalizes one reduced failing path: repeatedly applies the best
/// validating template until none matches.
pub fn generalize_path(
    path: &ReducedPath,
    templates: &[Box<dyn Template>],
    passing_states: &[&MethodEntryState],
) -> GeneralizedPath {
    generalize_path_traced(path, templates, passing_states, &None)
}

/// [`generalize_path`] with an observation-only trace sink: template
/// applications emit `template_match` events when recording, and the §III-A
/// validation runs under a `passing_guard` span. Tracing never changes
/// which templates fire.
pub fn generalize_path_traced(
    path: &ReducedPath,
    templates: &[Box<dyn Template>],
    passing_states: &[&MethodEntryState],
    trace: &Option<std::sync::Arc<obs::TraceSink>>,
) -> GeneralizedPath {
    // Work on a shrinking copy of the path.
    let mut work = path.clone();
    let mut formulas: Vec<(usize, Formula)> = Vec::new(); // (anchor entry position, formula)
    let mut quantified = false;
    loop {
        let mut best: Option<(&'static str, TemplateMatch)> = None;
        for t in templates {
            if let Some(m) = t.instantiate(&work) {
                if m.subsumed.len() >= 2
                    && best
                        .as_ref()
                        .map(|(_, b)| m.subsumed.len() > b.subsumed.len())
                        .unwrap_or(true)
                {
                    let validated = {
                        let _guard_span = obs::maybe_span(trace, obs::Stage::PassingGuard);
                        validates(&work, &m, passing_states)
                    };
                    if validated {
                        best = Some((t.name(), m));
                    }
                }
            }
        }
        let Some((name, m)) = best else { break };
        if let Some(sink) = obs::recording_sink(trace) {
            let formula = m.formula.to_string();
            sink.event(
                "template_match",
                &[
                    ("template", obs::Val::S(name)),
                    ("subsumed", obs::Val::U(m.subsumed.len() as u64)),
                    ("formula", obs::Val::S(&formula)),
                ],
            );
        }
        quantified = true;
        let anchor = *m.subsumed.iter().min().expect("non-empty subsumption");
        // Remove subsumed entries; remember the formula at the anchor.
        let mut kept = Vec::new();
        for (k, e) in work.entries.iter().enumerate() {
            if !m.subsumed.contains(&k) {
                kept.push(e.clone());
            }
        }
        formulas.push((anchor, m.formula));
        work.entries = kept;
        // A second template may still match (e.g. two collections); positions
        // of previous formulas are only used for ordering, which stays stable
        // enough for display purposes.
    }
    let mut parts: Vec<Formula> =
        work.entries.iter().map(|e| Formula::pred(e.pred.clone())).collect();
    for (_, f) in formulas {
        parts.push(f);
    }
    GeneralizedPath { parts, quantified }
}

/// §III-A validation: the generalized disjunct must not hold on any passing
/// state (errors count as "does not hold").
fn validates(work: &ReducedPath, m: &TemplateMatch, passing_states: &[&MethodEntryState]) -> bool {
    let mut parts: Vec<Formula> = work
        .entries
        .iter()
        .enumerate()
        .filter(|(k, _)| !m.subsumed.contains(k))
        .map(|(_, e)| Formula::pred(e.pred.clone()))
        .collect();
    parts.push(m.formula.clone());
    let candidate = Formula::and(parts);
    !passing_states.iter().any(|s| eval_on_state(&candidate, s) == Ok(true))
}

// ---- index abstraction helpers ---------------------------------------------

/// Collects `(collection place, constant index)` dereferences in a predicate.
pub fn index_occurrences(pred: &Pred) -> Vec<(Place, i64)> {
    let mut out = Vec::new();
    let push = |p: &Place, k: i64, out: &mut Vec<(Place, i64)>| {
        if !out.contains(&(*p, k)) {
            out.push((*p, k));
        }
    };
    fn walk_term(t: &Term, push: &mut dyn FnMut(&Place, i64)) {
        match t.node() {
            TermNode::Const(_) => {}
            TermNode::Var(v) => walk_var(v, push),
            TermNode::Add(a, b) | TermNode::Sub(a, b) => {
                walk_term(a, push);
                walk_term(b, push);
            }
            TermNode::Neg(a) | TermNode::Mul(_, a) | TermNode::Div(a, _) | TermNode::Rem(a, _) => {
                walk_term(a, push)
            }
        }
    }
    fn walk_var(v: &SymVar, push: &mut dyn FnMut(&Place, i64)) {
        match v.node() {
            SymVarNode::Int(_) => {}
            SymVarNode::Len(p) => walk_place(p, push),
            SymVarNode::IntElem(p, ix) | SymVarNode::Char(p, ix) => {
                walk_place(p, push);
                if let Some(k) = ix.as_const() {
                    push(p, k);
                }
            }
        }
    }
    fn walk_place(p: &Place, push: &mut dyn FnMut(&Place, i64)) {
        if let PlaceNode::Elem(base, ix) = p.node() {
            walk_place(base, push);
            if let Some(k) = ix.as_const() {
                push(base, k);
            }
        }
    }
    let mut cb = |p: &Place, k: i64| push(p, k, &mut out);
    match pred {
        Pred::Cmp(_, a, b) => {
            walk_term(a, &mut cb);
            walk_term(b, &mut cb);
        }
        Pred::Null { place, .. } => walk_place(place, &mut cb),
        Pred::IsSpace { arg, .. } => walk_term(arg, &mut cb),
        Pred::BoolVar { .. } | Pred::Const(_) => {}
    }
    out
}

/// Rewrites *every* constant element index in `pred` to the bound variable
/// `var`, erasing which iteration produced the predicate. Used by the
/// d-impact comparison: `s[0] == null` and `s[2] == null` express the same
/// violated property, while `d > 0` vs `d + 1 > 0` stay distinct.
pub fn abstract_all_indices(pred: &Pred, var: &str) -> Pred {
    map_pred(pred, &mut |_p: &Place, ix: &Term| {
        if ix.as_const().is_some() {
            Some(Term::var(var))
        } else {
            None
        }
    })
}

/// Rewrites every dereference of `place[k]` in `pred` to `place[var]`.
/// Returns `None` when nothing was rewritten.
pub fn abstract_index(pred: &Pred, place: &Place, k: i64, var: &str) -> Option<Pred> {
    let mut changed = false;
    let out = map_pred(pred, &mut |p: &Place, ix: &Term| {
        if p == place && ix.as_const() == Some(k) {
            changed = true;
            Some(Term::var(var))
        } else {
            None
        }
    });
    if changed {
        Some(out)
    } else {
        None
    }
}

/// Structural map over a predicate, rewriting element indices. The callback
/// receives `(collection place, index term)` and may return a replacement
/// index.
fn map_pred(pred: &Pred, f: &mut dyn FnMut(&Place, &Term) -> Option<Term>) -> Pred {
    match pred {
        Pred::Cmp(op, a, b) => Pred::Cmp(*op, map_term(a, f), map_term(b, f)),
        Pred::Null { place, positive } => {
            Pred::Null { place: map_place(place, f), positive: *positive }
        }
        Pred::IsSpace { arg, positive } => {
            Pred::IsSpace { arg: map_term(arg, f), positive: *positive }
        }
        Pred::BoolVar { .. } | Pred::Const(_) => pred.clone(),
    }
}

// The maps below rebuild through the raw `.intern()` node constructors, not
// the folding builders: index abstraction must preserve the term's shape
// exactly (a folded `s[0+0]` would no longer match its family members).
fn map_term(t: &Term, f: &mut dyn FnMut(&Place, &Term) -> Option<Term>) -> Term {
    match t.node() {
        TermNode::Const(_) => *t,
        TermNode::Var(v) => TermNode::Var(map_var(v, f)).intern(),
        TermNode::Add(a, b) => TermNode::Add(map_term(a, f), map_term(b, f)).intern(),
        TermNode::Sub(a, b) => TermNode::Sub(map_term(a, f), map_term(b, f)).intern(),
        TermNode::Neg(a) => TermNode::Neg(map_term(a, f)).intern(),
        TermNode::Mul(k, a) => TermNode::Mul(*k, map_term(a, f)).intern(),
        TermNode::Div(a, k) => TermNode::Div(map_term(a, f), *k).intern(),
        TermNode::Rem(a, k) => TermNode::Rem(map_term(a, f), *k).intern(),
    }
}

fn map_var(v: &SymVar, f: &mut dyn FnMut(&Place, &Term) -> Option<Term>) -> SymVar {
    match v.node() {
        SymVarNode::Int(_) => *v,
        SymVarNode::Len(p) => SymVarNode::Len(map_place(p, f)).intern(),
        SymVarNode::IntElem(p, ix) => {
            let p2 = map_place(p, f);
            let ix2 = f(p, ix).unwrap_or_else(|| map_term(ix, f));
            SymVarNode::IntElem(p2, ix2).intern()
        }
        SymVarNode::Char(p, ix) => {
            let p2 = map_place(p, f);
            let ix2 = f(p, ix).unwrap_or_else(|| map_term(ix, f));
            SymVarNode::Char(p2, ix2).intern()
        }
    }
}

fn map_place(p: &Place, f: &mut dyn FnMut(&Place, &Term) -> Option<Term>) -> Place {
    match p.node() {
        PlaceNode::Param(_) => *p,
        PlaceNode::Elem(base, ix) => {
            let base2 = map_place(base, f);
            let ix2 = f(base, ix).unwrap_or_else(|| map_term(ix, f));
            PlaceNode::Elem(base2, ix2).intern()
        }
    }
}

// ---- shared matching machinery ----------------------------------------------

/// Canonical predicates of a path, precomputed.
fn canons(path: &ReducedPath) -> Vec<CanonPred> {
    path.entries.iter().map(|e| canon_pred(&e.pred)).collect()
}

/// Indices of entries canonically equal to `pred`.
fn find_all(canon_list: &[CanonPred], pred: &Pred) -> Vec<usize> {
    let c = canon_pred(pred);
    canon_list.iter().enumerate().filter(|(_, x)| **x == c).map(|(k, _)| k).collect()
}

/// The domain predicate `k < len(place)`.
fn bound_pred(place: &Place, k: i64) -> Pred {
    Pred::cmp(CmpOp::Lt, Term::int(k), Term::len(*place))
}

/// The loop-exhaustion predicate `k >= len(place)`.
fn exhaust_pred(place: &Place, k: i64) -> Pred {
    Pred::cmp(CmpOp::Ge, Term::int(k), Term::len(*place))
}

/// The length-pin predicate `len(place) == k` (violating conditions such as
/// `len(s) - k == 0` canonicalize to this form when the loop exhausts the
/// collection).
fn len_eq_pred(place: &Place, k: i64) -> Pred {
    Pred::cmp(CmpOp::Eq, Term::len(*place), Term::int(k))
}

// ---- the Existential template ------------------------------------------------

/// §IV-B Existential Template: only the last visited element satisfies the
/// violation predicate `φ`, every earlier element satisfies `¬φ` — infer
/// `∃i. i < len(a) ∧ φ(a[i])`.
pub struct ExistentialTemplate;

impl Template for ExistentialTemplate {
    fn name(&self) -> &'static str {
        "existential"
    }

    fn instantiate(&self, path: &ReducedPath) -> Option<TemplateMatch> {
        let last_idx = path.entries.iter().rposition(|e| e.kind.is_branch())?;
        let last = &path.entries[last_idx];
        let canon_list = canons(path);
        let mut best: Option<TemplateMatch> = None;
        for (place, kk) in index_occurrences(&last.pred) {
            let Some(phi) = abstract_index(&last.pred, &place, kk, BOUND_VAR) else { continue };
            // Earlier elements must all witness ¬φ.
            let mut subsumed = vec![last_idx];
            let mut complete = true;
            for j in 0..kk {
                let neg = phi.subst_var(BOUND_VAR, &Term::int(j)).negated();
                let hits = find_all(&canon_list, &neg);
                if hits.is_empty() {
                    complete = false;
                    break;
                }
                subsumed.extend(hits);
            }
            if !complete {
                continue;
            }
            // Subsume the per-index domain predicates `j < len(place)`.
            for j in 0..=kk {
                subsumed.extend(find_all(&canon_list, &bound_pred(&place, j)));
            }
            subsumed.sort_unstable();
            subsumed.dedup();
            let body = Formula::and([
                Formula::pred(Pred::cmp(CmpOp::Lt, Term::var(BOUND_VAR), Term::len(place))),
                Formula::pred(phi.subst_var(BOUND_VAR, &Term::var(BOUND_VAR))),
            ]);
            let formula = Formula::exists(BOUND_VAR, body);
            if best.as_ref().map(|b| subsumed.len() > b.subsumed.len()).unwrap_or(true) {
                best = Some(TemplateMatch { formula, subsumed });
            }
        }
        best
    }
}

// ---- the Universal template ----------------------------------------------------

/// §IV-B Universal Template: every element of the (exhausted) collection
/// satisfies `φ` — infer `∀i. (0 ≤ i ∧ i < len(a)) ==> φ(a[i])`.
pub struct UniversalTemplate;

impl Template for UniversalTemplate {
    fn instantiate(&self, path: &ReducedPath) -> Option<TemplateMatch> {
        generalize_family(path, 1, 0)
    }

    fn name(&self) -> &'static str {
        "universal"
    }
}

/// §IV-B extension: elements at indices `≡ offset (mod step)` satisfy `φ` —
/// infer `∀i. (0 ≤ i ∧ i < len(a) ∧ i % step == offset) ==> φ(a[i])`.
/// `StepTemplate { step: 1, offset: 0 }` degenerates to the Universal
/// Template (which is how `UniversalTemplate` is implemented).
pub struct StepTemplate {
    pub step: i64,
    pub offset: i64,
}

impl Template for StepTemplate {
    fn name(&self) -> &'static str {
        "step"
    }

    fn instantiate(&self, path: &ReducedPath) -> Option<TemplateMatch> {
        generalize_family(path, self.step, self.offset)
    }
}

fn generalize_family(path: &ReducedPath, step: i64, offset: i64) -> Option<TemplateMatch> {
    debug_assert!(step >= 1);
    let canon_list = canons(path);
    let env = Env::new(&path.state);
    let mut best: Option<TemplateMatch> = None;
    // Anchor on any entry dereferencing some place at the family's first
    // index (`offset`).
    for anchor in path.entries.iter() {
        for (place, k) in index_occurrences(&anchor.pred) {
            if k != offset {
                continue;
            }
            let Some(phi) = abstract_index(&anchor.pred, &place, k, BOUND_VAR) else { continue };
            // The collection length in the originating failing state.
            let Ok(len) = eval_term(&Term::len(place), &env) else { continue };
            if len < 1 {
                continue;
            }
            // Every family index must witness φ.
            let mut subsumed = Vec::new();
            let mut complete = true;
            let mut j = offset;
            while j < len {
                let inst = phi.subst_var(BOUND_VAR, &Term::int(j));
                let hits = find_all(&canon_list, &inst);
                if hits.is_empty() {
                    complete = false;
                    break;
                }
                subsumed.extend(hits);
                j += step;
            }
            if !complete || subsumed.len() < 2 {
                continue;
            }
            // Subsume domain, exhaustion, and length-pin bookkeeping
            // predicates (`j < len`, `j >= len`, `len == L`).
            for j in 0..=len {
                subsumed.extend(find_all(&canon_list, &bound_pred(&place, j)));
                subsumed.extend(find_all(&canon_list, &exhaust_pred(&place, j)));
            }
            subsumed.extend(find_all(&canon_list, &len_eq_pred(&place, len)));
            subsumed.sort_unstable();
            subsumed.dedup();
            let mut domain = vec![
                Formula::pred(Pred::cmp(CmpOp::Le, Term::int(0), Term::var(BOUND_VAR))),
                Formula::pred(Pred::cmp(CmpOp::Lt, Term::var(BOUND_VAR), Term::len(place))),
            ];
            if step != 1 {
                domain.push(Formula::pred(Pred::cmp(
                    CmpOp::Eq,
                    Term::var(BOUND_VAR).rem(step),
                    Term::int(offset),
                )));
            }
            let formula = Formula::forall(
                BOUND_VAR,
                Formula::implies(Formula::and(domain), Formula::pred(phi.clone())),
            );
            if best.as_ref().map(|b| subsumed.len() > b.subsumed.len()).unwrap_or(true) {
                best = Some(TemplateMatch { formula, subsumed });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::InputValue;
    use symbolic::{EntryKind, PathEntry};

    fn entry(pred: Pred, site: u32) -> PathEntry {
        PathEntry {
            pred,
            kind: EntryKind::ExplicitBranch,
            site: minilang::NodeId(site),
            span: minilang::Span::new(site, 1),
        }
    }

    fn check_entry(pred: Pred, site: u32) -> PathEntry {
        PathEntry {
            pred,
            kind: EntryKind::Check(minilang::CheckId {
                node: minilang::NodeId(site),
                kind: minilang::CheckKind::NullDeref,
            }),
            site: minilang::NodeId(site),
            span: minilang::Span::new(site, 1),
        }
    }

    fn s_elem_null(k: i64, positive: bool) -> Pred {
        Pred::Null { place: Place::elem(Place::param("s"), k), positive }
    }

    fn lt_len(k: i64) -> Pred {
        bound_pred(&Place::param("s"), k)
    }

    /// The paper's t_f3 reduced path: c>0 ∧ d+1>0 ∧ s!=null ∧ 0<len(s) ∧
    /// s[0]!=null ∧ 1<len(s) ∧ s[1]!=null ∧ 2<len(s) ∧ s[2]==null
    /// generalizes to ∃i. i < len(s) ∧ s[i] == null.
    #[test]
    fn existential_template_on_tf3() {
        let entries = vec![
            entry(Pred::cmp(CmpOp::Gt, Term::var("c"), Term::int(0)), 1),
            entry(Pred::cmp(CmpOp::Gt, Term::var("d").add(Term::int(1)), Term::int(0)), 2),
            check_entry(Pred::not_null(Place::param("s")), 3),
            entry(lt_len(0), 4),
            check_entry(s_elem_null(0, false), 5),
            entry(lt_len(1), 4),
            check_entry(s_elem_null(1, false), 5),
            entry(lt_len(2), 4),
            check_entry(s_elem_null(2, true), 5),
        ];
        let a = Some(vec![97i64]);
        let state = MethodEntryState::from_pairs([
            ("s".to_string(), InputValue::ArrayStr(Some(vec![a.clone(), a, None]))),
            ("c".to_string(), InputValue::Int(1)),
            ("d".to_string(), InputValue::Int(0)),
        ]);
        let path = ReducedPath { entries, state };
        let m = ExistentialTemplate.instantiate(&path).expect("template matches");
        assert_eq!(m.formula.to_string(), "exists i. i < len(s) && s[i] == null");
        // Subsumes the element family, bounds, and the last branch: 6 of 9.
        assert_eq!(m.subsumed.len(), 6);
        let g = generalize_path(&path, &default_templates(), &[]);
        assert!(g.quantified);
        assert_eq!(
            g.conjunction().to_string(),
            "c > 0 && (d + 1) > 0 && s != null && (exists i. i < len(s) && s[i] == null)"
        );
    }

    #[test]
    fn existential_requires_earlier_negations() {
        // s[1] == null without the s[0] != null witness must NOT generalize.
        let entries = vec![
            check_entry(Pred::not_null(Place::param("s")), 3),
            entry(lt_len(1), 4),
            check_entry(s_elem_null(1, true), 5),
        ];
        let state = MethodEntryState::from_pairs([(
            "s",
            InputValue::ArrayStr(Some(vec![Some(vec![97]), None])),
        )]);
        let path = ReducedPath { entries, state };
        assert!(ExistentialTemplate.instantiate(&path).is_none());
    }

    #[test]
    fn universal_template_on_exhausted_family() {
        // All three elements are zero and the loop exhausted the array:
        // a[0]==0 ∧ 1<len ∧ a[1]==0 ∧ 2<len ∧ a[2]==0 ∧ 3>=len → ∀.
        let a = Place::param("a");
        let elem_zero =
            |k: i64| Pred::cmp(CmpOp::Eq, Term::int_elem(a, Term::int(k)), Term::int(0));
        let entries = vec![
            check_entry(Pred::not_null(a), 1),
            entry(bound_pred(&a, 0), 2),
            entry(elem_zero(0), 3),
            entry(bound_pred(&a, 1), 2),
            entry(elem_zero(1), 3),
            entry(bound_pred(&a, 2), 2),
            entry(elem_zero(2), 3),
            entry(exhaust_pred(&a, 3), 2),
            entry(Pred::cmp(CmpOp::Gt, Term::len(a), Term::int(0)), 9),
        ];
        let state =
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(Some(vec![0, 0, 0])))]);
        let path = ReducedPath { entries, state };
        let m = UniversalTemplate.instantiate(&path).expect("matches");
        assert_eq!(m.formula.to_string(), "forall i. (0 <= i && i < len(a) ==> a[i] == 0)");
        assert!(m.subsumed.len() >= 7);
    }

    #[test]
    fn step_template_matches_even_indices() {
        let a = Place::param("a");
        let elem_zero =
            |k: i64| Pred::cmp(CmpOp::Eq, Term::int_elem(a, Term::int(k)), Term::int(0));
        let entries =
            vec![check_entry(Pred::not_null(a), 1), entry(elem_zero(0), 3), entry(elem_zero(2), 3)];
        let state =
            MethodEntryState::from_pairs([("a", InputValue::ArrayInt(Some(vec![0, 5, 0, 5])))]);
        let path = ReducedPath { entries, state };
        let m = StepTemplate { step: 2, offset: 0 }.instantiate(&path).expect("matches");
        assert!(m.formula.to_string().contains("(i % 2) == 0"), "{}", m.formula);
        // Plain universal must NOT match (a[1] family member missing).
        assert!(UniversalTemplate.instantiate(&path).is_none());
    }

    #[test]
    fn validation_rejects_overgeneralization() {
        // Same family as the t_f3 test, but with a passing state that the
        // generalized disjunct would capture.
        let entries = vec![
            check_entry(Pred::not_null(Place::param("s")), 3),
            entry(lt_len(0), 4),
            check_entry(s_elem_null(0, true), 5),
        ];
        let state = MethodEntryState::from_pairs([(
            "s".to_string(),
            InputValue::ArrayStr(Some(vec![None])),
        )]);
        let path = ReducedPath { entries, state };
        // A passing state with a null element (pretend the loop is guarded
        // differently): generalization must be rejected.
        let passing = MethodEntryState::from_pairs([(
            "s".to_string(),
            InputValue::ArrayStr(Some(vec![Some(vec![97]), None])),
        )]);
        let g = generalize_path(&path, &default_templates(), &[&passing]);
        assert!(!g.quantified, "validation must reject: {:?}", g.conjunction().to_string());
    }

    #[test]
    fn char_families_generalize_for_reverse_words_shape() {
        // All characters whitespace, string exhausted → universal over chars.
        let v = Place::param("value");
        let ws = |k: i64| Pred::IsSpace { arg: Term::char_at(v, Term::int(k)), positive: true };
        let entries = vec![
            check_entry(Pred::not_null(v), 1),
            entry(ws(0), 2),
            entry(ws(1), 2),
            entry(ws(2), 2),
        ];
        let state = MethodEntryState::from_pairs([("value", InputValue::str_from("   "))]);
        let path = ReducedPath { entries, state };
        let m = UniversalTemplate.instantiate(&path).expect("matches");
        assert_eq!(
            m.formula.to_string(),
            "forall i. (0 <= i && i < len(value) ==> is_space(char_at(value, i)))"
        );
    }
}
