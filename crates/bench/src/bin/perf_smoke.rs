//! Perf smoke: times end-to-end inference with the solver cache and the
//! parallel driver against the serial/uncached baseline and emits
//! `BENCH_solver_cache.json` in the working directory, plus a tiered-vs-
//! simplex-only backend comparison emitted as `BENCH_solver_tiers.json`.
//!
//! This is the quick, scriptable counterpart of `cargo bench -p bench
//! --bench solver_cache`: a handful of repetitions per configuration, the
//! minimum wall-clock kept (least-noise estimator), plus the cache's
//! hit/miss counters from the cached run.

use preinfer_core::{infer_all_preconditions, PreInferConfig};
use report::{evaluate_corpus, EvalConfig};
use solver::{BackendKind, CacheStats, CanonQuery, SolverCache, TierSnapshot};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use subjects::SubjectMethod;
use symbolic::linform::{CPred, CanonPred, LinExpr, Monomial};
use testgen::{generate_tests, TestGenConfig};

const REPS: usize = 3;

/// Reps for the incremental-vs-scratch case, which gates on a ratio of two
/// sub-100ms wall clocks and so needs more samples than the tier timings.
const INCREMENTAL_REPS: usize = 8;

struct CaseResult {
    name: String,
    serial_uncached_ns: u128,
    serial_cached_ns: u128,
    parallel_cached_ns: u128,
    /// Median of per-rep paired uncached/cached ratios (see
    /// [`measure_cache_arms`]) — the number the check-script gate consumes.
    speedup_cache: f64,
    speedup_cache_parallel: f64,
    stats: CacheStats,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Reps for the cached-vs-uncached cases, whose gate consumes a ratio of
/// two single-digit-millisecond wall clocks and therefore needs the same
/// robust treatment as `trace_overhead`, not a best-of-3.
const CACHE_REPS: usize = 7;

/// How a timed inference sample is configured in [`measure_cache_arms`].
#[derive(Clone, Copy)]
enum Arm {
    Uncached,
    Cached,
    Parallel,
}

/// Robust timings for one cache case. `*_ns` are best-of-all-samples per
/// arm (the least-noise *time* estimator); the speedups are medians of
/// per-rep *paired* ratios, each cached/parallel sample compared against
/// the mean of the two uncached samples bracketing it in time.
struct ArmStats {
    uncached_ns: u128,
    cached_ns: u128,
    parallel_ns: u128,
    speedup_cache: f64,
    speedup_parallel: f64,
    /// Median |gap| between the two uncached samples of a rep, in percent
    /// — pure run-to-run noise, used to pick the quietest pass.
    noise_pct: f64,
}

/// Samples the three arms bracketed (uncached, cached, uncached,
/// parallel) per rep so machine-level drift cancels out of the paired
/// ratios, and a few descheduled reps cannot move the median the way
/// they move a ratio of two block minima. The first uncached sample laid
/// down by the caller's warm-up is not part of any rep, so cold-start
/// costs (page cache, lazy statics, the term interner's dedup map) are
/// charged to no arm.
fn measure_cache_arms(mut once: impl FnMut(Arm) -> u128) -> ArmStats {
    once(Arm::Uncached); // warm-up, untimed
    let (mut u_min, mut c_min, mut p_min) = (u128::MAX, u128::MAX, u128::MAX);
    let (mut ratios, mut pratios, mut noises) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..CACHE_REPS {
        let u1 = once(Arm::Uncached);
        let c = once(Arm::Cached);
        let u2 = once(Arm::Uncached);
        let p = once(Arm::Parallel);
        u_min = u_min.min(u1).min(u2);
        c_min = c_min.min(c);
        p_min = p_min.min(p);
        let base = (u1 as f64 + u2 as f64) / 2.0;
        ratios.push(base / c as f64);
        pratios.push(base / p as f64);
        noises.push(100.0 * ((u2 as f64 - u1 as f64) / u1 as f64).abs());
    }
    ArmStats {
        uncached_ns: u_min,
        cached_ns: c_min,
        parallel_ns: p_min,
        speedup_cache: median(ratios),
        speedup_parallel: median(pratios),
        noise_pct: median(noises),
    }
}

/// Runs `pass` up to four times and keeps the quietest result (smallest
/// uncached-vs-uncached noise estimate), stopping early once a pass is
/// quiet enough (≤2%). Same shape as `trace_overhead`'s retry: the
/// selection criterion is *noise*, never the gated ratio itself, so a
/// real regression — which shows up in every pass — cannot be retried
/// away, while one descheduled measurement window can.
fn quietest_pass(mut pass: impl FnMut() -> ArmStats) -> ArmStats {
    let mut best = pass();
    for _ in 0..3 {
        if best.noise_pct <= 2.0 {
            break;
        }
        let next = pass();
        if next.noise_pct < best.noise_pct {
            best = next;
        }
    }
    best
}

/// One timed inference under the given cache/jobs configuration. The
/// cache is cleared first so every sample pays the warm-up misses again.
fn time_inference_once(
    m: &SubjectMethod,
    tp: &minilang::TypedProgram,
    suite: &testgen::Suite,
    cache: Option<&Arc<SolverCache>>,
    jobs: usize,
) -> u128 {
    if let Some(c) = cache {
        c.clear();
    }
    let mut cfg = PreInferConfig::default();
    cfg.prune.solver_cache = cache.cloned();
    cfg.prune.jobs = jobs;
    let start = Instant::now();
    let out = infer_all_preconditions(tp, m.name, suite, &cfg, jobs);
    let elapsed = start.elapsed().as_nanos();
    assert!(!out.is_empty(), "{} inferred nothing", m.name);
    elapsed
}

fn run_case(m: &SubjectMethod, jobs: usize) -> CaseResult {
    let tp = m.compile();
    let suite = generate_tests(&tp, m.name, &TestGenConfig::default());
    let cache = Arc::new(SolverCache::new());
    let parallel_cache = Arc::new(SolverCache::new());
    let stats = quietest_pass(|| {
        measure_cache_arms(|arm| match arm {
            Arm::Uncached => time_inference_once(m, &tp, &suite, None, 1),
            Arm::Cached => time_inference_once(m, &tp, &suite, Some(&cache), 1),
            Arm::Parallel => time_inference_once(m, &tp, &suite, Some(&parallel_cache), jobs),
        })
    });
    // Stats from the final serial-cached repetition: one full inference's
    // traffic against an initially empty cache.
    CaseResult {
        name: format!("{}::{}", m.namespace, m.name),
        serial_uncached_ns: stats.uncached_ns,
        serial_cached_ns: stats.cached_ns,
        parallel_cached_ns: stats.parallel_ns,
        speedup_cache: stats.speedup_cache,
        speedup_cache_parallel: stats.speedup_parallel,
        stats: cache.stats(),
    }
}

/// The `paper_tables` workload: the full Section V protocol
/// ([`evaluate_corpus`]: generation, inference, both baselines, scoring)
/// over a representative corpus slice, as the table benches run it.
fn run_tables_case(jobs: usize) -> CaseResult {
    let names = ["bubble_sort", "guarded_div", "stack_pop", "inverse_sum", "binary_search"];
    let methods: Vec<SubjectMethod> =
        subjects::all_subjects().into_iter().filter(|m| names.contains(&m.name)).collect();
    // One timed corpus evaluation, recording cache traffic on the side.
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut once = |solver_cache: bool, jobs: usize| -> u128 {
        let cfg = EvalConfig { jobs, solver_cache, ..EvalConfig::default() };
        let start = Instant::now();
        let results = evaluate_corpus(&methods, &cfg);
        let elapsed = start.elapsed().as_nanos();
        if solver_cache {
            hits = results.iter().map(|r| r.solver_cache_hits).sum();
            misses = results.iter().map(|r| r.solver_cache_misses).sum();
        }
        elapsed
    };
    let stats = quietest_pass(|| {
        measure_cache_arms(|arm| match arm {
            Arm::Uncached => once(false, 1),
            Arm::Cached => once(true, 1),
            Arm::Parallel => once(true, jobs),
        })
    });
    CaseResult {
        name: format!("paper_tables::{}_method_slice", methods.len()),
        serial_uncached_ns: stats.uncached_ns,
        serial_cached_ns: stats.cached_ns,
        parallel_cached_ns: stats.parallel_ns,
        speedup_cache: stats.speedup_cache,
        speedup_cache_parallel: stats.speedup_parallel,
        stats: CacheStats { hits, misses, evictions: 0, evicted_entries: 0, entries: 0 },
    }
}

/// The tiered-backend comparison: the same Section V slice as
/// [`run_tables_case`], solver cache *off* (every query executes, so the
/// timing difference is pure backend cost and the counters reflect raw
/// query traffic), tiered vs simplex-only.
struct SolverTiersResult {
    tiered_ms: f64,
    simplex_only_ms: f64,
    tiers: TierSnapshot,
}

/// Times the corpus-slice workload under both backend stacks. Reps are
/// interleaved (tiered, simplex, tiered, simplex, …) so machine-level
/// drift hits both configurations the same way; the minimum per
/// configuration is kept.
fn run_solver_tiers_case() -> SolverTiersResult {
    let names = ["bubble_sort", "guarded_div", "stack_pop", "inverse_sum", "binary_search"];
    let methods: Vec<SubjectMethod> =
        subjects::all_subjects().into_iter().filter(|m| names.contains(&m.name)).collect();
    let run = |backend: BackendKind| -> (u128, TierSnapshot) {
        let cfg = EvalConfig {
            jobs: 1,
            solver_cache: false,
            solver_backend: backend,
            ..EvalConfig::default()
        };
        let start = Instant::now();
        let results = evaluate_corpus(&methods, &cfg);
        let elapsed = start.elapsed().as_nanos();
        let tiers =
            results.iter().fold(TierSnapshot::default(), |acc, r| acc.plus(&r.solver_tiers));
        (elapsed, tiers)
    };
    let (mut tiered_ns, mut simplex_ns) = (u128::MAX, u128::MAX);
    let mut tiers = TierSnapshot::default();
    for _ in 0..REPS {
        let (t, snapshot) = run(BackendKind::Tiered);
        tiered_ns = tiered_ns.min(t);
        tiers = snapshot; // identical every rep: counters are per-run
        let (s, _) = run(BackendKind::Simplex);
        simplex_ns = simplex_ns.min(s);
    }
    SolverTiersResult {
        tiered_ms: tiered_ns as f64 / 1e6,
        simplex_only_ms: simplex_ns as f64 / 1e6,
        tiers,
    }
}

/// The incremental-solving comparison: warm [`IncrementalSession`]s vs
/// from-scratch [`solve_preds_with`] on the *solver workload itself* —
/// Algorithm 1's implied-check sweeps replayed from the corpus's real
/// failing paths.
struct SolverIncrementalResult {
    incremental_ms: f64,
    scratch_ms: f64,
    sweeps: usize,
    queries: usize,
}

/// One failing path's implied-check sweep: for entries `e_0 … e_{n-1}`,
/// the queries `e_0 ∧ … ∧ e_{j-1} ∧ ¬e_j` for `j = n-1` down to `0` —
/// exactly the per-path query sequence the pruning loop issues.
struct PathSweep {
    sig: solver::FuncSig,
    queries: Vec<Vec<symbolic::pred::Pred>>,
}

/// Times the incremental session against the scratch entry point on the
/// corpus's deep failing-path sweeps (paths with at least six entries —
/// the prefix-sharing regime the session exists for; shallower paths
/// measure session setup, not sharing). The pipeline around the solver
/// (interpreter, test generation) is identical in both modes, so this
/// case replays the solver calls alone: the warm arm pays session
/// creation, diffing, pushes *and* solves; the scratch arm pays
/// canonicalization and building per query. Reps are interleaved (warm,
/// scratch, warm, scratch, …) so machine-level drift hits both arms the
/// same way; the minimum per arm is kept, and extra reps because the
/// gate consumes a ratio of two small numbers.
fn run_solver_incremental_case() -> SolverIncrementalResult {
    const MIN_PATH_DEPTH: usize = 6;
    let mut sweeps: Vec<PathSweep> = Vec::new();
    for m in subjects::all_subjects() {
        let tp = m.compile();
        let sig = solver::FuncSig::of(m.func(&tp));
        let suite = generate_tests(&tp, m.name, &TestGenConfig::default());
        for run in suite.runs.iter().filter(|r| r.failed()) {
            let entries = &run.path.entries;
            if entries.len() < MIN_PATH_DEPTH {
                continue;
            }
            let queries = (0..entries.len())
                .rev()
                .map(|j| {
                    let mut preds: Vec<symbolic::pred::Pred> =
                        entries[..j].iter().map(|e| e.pred.clone()).collect();
                    preds.push(entries[j].pred.negated());
                    preds
                })
                .collect();
            sweeps.push(PathSweep { sig: sig.clone(), queries });
        }
    }
    let queries: usize = sweeps.iter().map(|s| s.queries.len()).sum();
    assert!(queries > 0, "incremental bench found no deep failing-path sweeps");

    let cfg = solver::SolverConfig::default();
    let warm = || -> u128 {
        let start = Instant::now();
        for sw in &sweeps {
            let mut session = solver::IncrementalSession::new(&sw.sig, &cfg, None);
            for q in &sw.queries {
                let _ = session.solve_preds(q);
            }
        }
        start.elapsed().as_nanos()
    };
    let scratch = || -> u128 {
        let start = Instant::now();
        for sw in &sweeps {
            for q in &sw.queries {
                let _ = solver::solve_preds_with(q, &sw.sig, &cfg, None);
            }
        }
        start.elapsed().as_nanos()
    };
    // Warm-up pass doubling as an equivalence spot check (the dedicated
    // differential suite is the real guarantee; this catches a broken
    // build before it pollutes the timing).
    for sw in &sweeps {
        let mut session = solver::IncrementalSession::new(&sw.sig, &cfg, None);
        for q in &sw.queries {
            let (w, _) = session.solve_preds(q);
            let (s, _) = solver::solve_preds_with(q, &sw.sig, &cfg, None);
            assert_eq!(w, s, "incremental/scratch divergence in bench workload");
        }
    }
    let (mut incremental_ns, mut scratch_ns) = (u128::MAX, u128::MAX);
    for _ in 0..INCREMENTAL_REPS {
        incremental_ns = incremental_ns.min(warm());
        scratch_ns = scratch_ns.min(scratch());
    }
    SolverIncrementalResult {
        incremental_ms: incremental_ns as f64 / 1e6,
        scratch_ms: scratch_ns as f64 / 1e6,
        sweeps: sweeps.len(),
        queries,
    }
}

/// The CacheKey-construction microbench: the interned key path against a
/// deep-structure baseline replaying what the pre-interning representation
/// paid per key.
struct CacheKeyMicrobench {
    queries: usize,
    interned_ns_per_key: f64,
    deep_baseline_ns_per_key: f64,
    speedup_interned: f64,
}

// Owned mirror of the canonical-predicate tree — the shape of the
// pre-interning `Vec<CanonPred>` cache key, where every node was its own
// allocation and `Hash`/`Clone` walked the whole structure. The baseline
// arm rebuilds, hashes, and clones this mirror per key; the interned arm
// hashes a precomputed digest and memcpys a `Vec` of ids.
#[derive(Clone, Hash)]
enum DeepMono {
    Var(String),
    Div(Box<DeepLin>, i64),
    Rem(Box<DeepLin>, i64),
}

#[derive(Clone, Hash)]
struct DeepLin {
    terms: Vec<(DeepMono, i64)>,
    constant: i64,
}

#[derive(Clone, Hash)]
enum DeepPred {
    Le(DeepLin),
    Eq(DeepLin),
    Ne(DeepLin),
    Null { place: String, positive: bool },
    Bool { name: String, positive: bool },
    IsSpace { arg: DeepLin, positive: bool },
    Const(bool),
}

fn deep_mono(m: &Monomial) -> DeepMono {
    match m {
        Monomial::Var(v) => DeepMono::Var(v.to_string()),
        Monomial::Div(e, k) => DeepMono::Div(Box::new(deep_lin(e)), *k),
        Monomial::Rem(e, k) => DeepMono::Rem(Box::new(deep_lin(e)), *k),
    }
}

fn deep_lin(e: &LinExpr) -> DeepLin {
    DeepLin {
        terms: e.terms().map(|(m, c)| (deep_mono(m), c)).collect(),
        constant: e.constant_part(),
    }
}

fn deep_pred(p: &CPred) -> DeepPred {
    match p.node() {
        CanonPred::Le(e) => DeepPred::Le(deep_lin(e)),
        CanonPred::Eq(e) => DeepPred::Eq(deep_lin(e)),
        CanonPred::Ne(e) => DeepPred::Ne(deep_lin(e)),
        CanonPred::Null { place, positive } => {
            DeepPred::Null { place: place.to_string(), positive: *positive }
        }
        CanonPred::Bool { name, positive } => {
            DeepPred::Bool { name: name.clone(), positive: *positive }
        }
        CanonPred::IsSpace { arg, positive } => {
            DeepPred::IsSpace { arg: deep_lin(arg), positive: *positive }
        }
        CanonPred::Const(b) => DeepPred::Const(*b),
    }
}

/// Times cache-key construction-plus-probe on the corpus's real failing
/// path conditions. Both arms pay `CanonQuery::build` (so the comparison
/// is conservative: the old code built deep trees there too, which is not
/// charged to the baseline); on top of that the interned arm pays what a
/// cache probe and store actually pay now — hashing the precomputed
/// digest and cloning a `Vec` of `Copy` ids — while the baseline arm pays
/// what they used to: a deep structural rebuild, a full-tree hash walk,
/// and a deep clone. Arms are interleaved per rep so drift hits both the
/// same way; the minimum per arm is kept.
fn run_cachekey_microbench() -> CacheKeyMicrobench {
    const PASSES: usize = 40;
    const MICRO_REPS: usize = 5;
    let mut workload: Vec<(solver::FuncSig, Vec<symbolic::pred::Pred>)> = Vec::new();
    for m in subjects::all_subjects() {
        let tp = m.compile();
        let sig = solver::FuncSig::of(m.func(&tp));
        let suite = generate_tests(&tp, m.name, &TestGenConfig::default());
        for run in suite.runs.iter().filter(|r| r.failed()) {
            let preds: Vec<symbolic::pred::Pred> =
                run.path.entries.iter().map(|e| e.pred.clone()).collect();
            if !preds.is_empty() {
                workload.push((sig.clone(), preds));
            }
        }
    }
    assert!(!workload.is_empty(), "cache-key microbench found no failing paths");

    use std::hash::{Hash, Hasher};
    let cfg = solver::SolverConfig::default();
    let interned_pass = || -> u128 {
        let start = Instant::now();
        for _ in 0..PASSES {
            for (sig, preds) in &workload {
                let q = CanonQuery::build(preds, sig, &cfg);
                let mut h = std::collections::hash_map::DefaultHasher::new();
                q.key().hash(&mut h);
                std::hint::black_box((h.finish(), q.key().clone()));
            }
        }
        start.elapsed().as_nanos()
    };
    let deep_pass = || -> u128 {
        let start = Instant::now();
        for _ in 0..PASSES {
            for (sig, preds) in &workload {
                let q = CanonQuery::build(preds, sig, &cfg);
                let deep: Vec<DeepPred> = q.canon_preds().iter().map(deep_pred).collect();
                let mut h = std::collections::hash_map::DefaultHasher::new();
                deep.hash(&mut h);
                std::hint::black_box((h.finish(), deep.clone()));
            }
        }
        start.elapsed().as_nanos()
    };
    // Warm-up: fills the interner's dedup map and the page cache so the
    // first timed pass is not charged cold-start costs.
    std::hint::black_box((interned_pass(), deep_pass()));
    let (mut interned_ns, mut deep_ns) = (u128::MAX, u128::MAX);
    for _ in 0..MICRO_REPS {
        interned_ns = interned_ns.min(interned_pass());
        deep_ns = deep_ns.min(deep_pass());
    }
    let keys = (PASSES * workload.len()) as f64;
    let interned_ns_per_key = interned_ns as f64 / keys;
    let deep_baseline_ns_per_key = deep_ns as f64 / keys;
    CacheKeyMicrobench {
        queries: workload.len(),
        interned_ns_per_key,
        deep_baseline_ns_per_key,
        speedup_interned: deep_baseline_ns_per_key / interned_ns_per_key,
    }
}

/// The interprocedural comparison: inline callee unrolling vs bottom-up
/// ψ-summary application over the multi-function corpus slice, end to end
/// (generation + inference per method). The summary arm runs against one
/// warm [`SummaryTable`] shared across methods and reps — the serving
/// scenario, where every α-equivalent callee closure after the first is a
/// table hit and the per-request cost is resolution plus the collapsed
/// entry-level path space.
struct InterprocResult {
    methods: usize,
    inline_ms: f64,
    summary_ms: f64,
    ratio: f64,
    table_entries: usize,
    table_hits: u64,
    applies: u64,
}

/// Reps for the interproc case: interleaved (inline, summary, inline, …)
/// so machine-level drift hits both modes the same way; minimum per arm.
const INTERPROC_REPS: usize = 7;

fn run_interproc_case() -> InterprocResult {
    use preinfer_core::{build_summaries, SummaryBuildConfig, SummaryTable};
    let methods: Vec<(SubjectMethod, minilang::TypedProgram)> = subjects::all_subjects()
        .into_iter()
        .filter(|m| m.namespace == "Interproc.Summaries")
        .map(|m| {
            let tp = m.compile();
            (m, tp)
        })
        .collect();
    assert!(!methods.is_empty(), "interproc bench found no multi-function subjects");

    let inline_pass = || -> u128 {
        let start = Instant::now();
        for (m, tp) in &methods {
            let suite = generate_tests(tp, m.name, &TestGenConfig::default());
            let mut cfg = PreInferConfig::default();
            cfg.prune.jobs = 1;
            let out = infer_all_preconditions(tp, m.name, &suite, &cfg, 1);
            std::hint::black_box(out);
        }
        start.elapsed().as_nanos()
    };
    // The summary arm times the daemon's steady state: the table was
    // populated when each closure was first seen and the per-program
    // `ResolvedSummaries` handle is reused across requests, so a request
    // pays generation + inference with callee paths collapsed to ψ atoms —
    // not the one-time bottom-up build. The build cost is what the first
    // column of the report's inline-vs-summary axis accounts for.
    let table = Arc::new(SummaryTable::new());
    let apply_stats: Arc<concolic::SummaryApplyStats> = Default::default();
    let resolved: Vec<Option<Arc<concolic::ResolvedSummaries>>> = methods
        .iter()
        .map(|(m, tp)| {
            let build = build_summaries(
                tp,
                m.name,
                &table,
                &SummaryBuildConfig {
                    testgen: TestGenConfig::default(),
                    prune: PreInferConfig::default().prune,
                    jobs: 1,
                    stats: apply_stats.clone(),
                },
            );
            (!build.resolved.is_empty()).then_some(build.resolved)
        })
        .collect();
    let summary_pass = || -> u128 {
        let start = Instant::now();
        for ((m, tp), res) in methods.iter().zip(&resolved) {
            let mut tg = TestGenConfig::default();
            let mut cfg = PreInferConfig::default();
            cfg.prune.jobs = 1;
            if let Some(res) = res {
                tg.concolic.summaries = Some(res.clone());
                cfg.prune.concolic.summaries = Some(res.clone());
            }
            let suite = generate_tests(tp, m.name, &tg);
            let out = infer_all_preconditions(tp, m.name, &suite, &cfg, 1);
            std::hint::black_box(out);
        }
        start.elapsed().as_nanos()
    };
    // Warm-up (untimed) for both arms, then prove the table is warm: a
    // re-resolution of every method's closures must be all hits.
    std::hint::black_box((inline_pass(), summary_pass()));
    let hits_before = table.hits();
    for (m, tp) in &methods {
        let build = build_summaries(
            tp,
            m.name,
            &table,
            &SummaryBuildConfig {
                testgen: TestGenConfig::default(),
                prune: PreInferConfig::default().prune,
                jobs: 1,
                stats: apply_stats.clone(),
            },
        );
        std::hint::black_box(build);
    }
    let warm_hits = table.hits() - hits_before;
    let (mut inline_ns, mut summary_ns) = (u128::MAX, u128::MAX);
    for _ in 0..INTERPROC_REPS {
        inline_ns = inline_ns.min(inline_pass());
        summary_ns = summary_ns.min(summary_pass());
    }
    let inline_ms = inline_ns as f64 / 1e6;
    let summary_ms = summary_ns as f64 / 1e6;
    InterprocResult {
        methods: methods.len(),
        inline_ms,
        summary_ms,
        ratio: summary_ms / inline_ms,
        table_entries: table.len(),
        table_hits: warm_hits,
        applies: apply_stats.applies(),
    }
}

/// Everything `trace_overhead` measures, in the units the JSON footer
/// reports: best-of-N per-inference times plus robust paired overhead
/// estimates (percent).
struct TraceOverhead {
    disabled_ms: f64,
    disabled_rerun_ms: f64,
    aggregate_ms: f64,
    disabled_overhead_percent: f64,
    aggregate_overhead_percent: f64,
}

/// Measures the cost of the observability layer on the motivating example.
/// Each round samples disabled tracing, an aggregate sink, and disabled
/// tracing again, back to back, so machine-level drift hits all three the
/// same way. The overhead estimates are *medians of per-round paired
/// differences* — the two disabled samples against each other (their gap
/// is pure noise: the disabled path is code-identical either way), and the
/// aggregate sample against the mean of the two disabled samples that
/// bracket it in time (cancelling linear drift) — so a few descheduled
/// rounds cannot move the estimate the way they move a best-of-N minimum.
///
/// On a machine with persistent background load even the paired median
/// wanders a couple of percent, so the whole measurement runs up to six
/// passes and keeps the quietest one (smallest |disabled| estimate). That
/// still catches a real disabled-path regression — real cost shows up in
/// *every* pass — while not failing the gate on one noisy window.
fn trace_overhead() -> TraceOverhead {
    let m = subjects::motivating::motivating();
    let tp = m.compile();
    let suite = generate_tests(&tp, m.name, &TestGenConfig::default());
    // One timed sample = a batch of 10 back-to-back inferences (each with a
    // fresh cache), long enough that scheduler hiccups average out within
    // the sample instead of dominating it.
    let run_batch = |sink: &Option<Arc<obs::TraceSink>>| -> f64 {
        let start = Instant::now();
        for _ in 0..10 {
            let mut cfg = PreInferConfig::default();
            cfg.prune.solver_cache = Some(Arc::new(SolverCache::new()));
            cfg.prune.solver.trace = sink.clone();
            cfg.prune.trace = sink.clone();
            let out = infer_all_preconditions(&tp, m.name, &suite, &cfg, 1);
            assert!(!out.is_empty(), "motivating example inferred nothing");
        }
        start.elapsed().as_nanos() as f64
    };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    let aggregate = Some(Arc::new(obs::TraceSink::aggregate()));
    let measure_once = || -> TraceOverhead {
        let (mut d1_min, mut agg_min, mut d2_min) = (f64::MAX, f64::MAX, f64::MAX);
        let (mut noise_pcts, mut agg_pcts) = (Vec::new(), Vec::new());
        run_batch(&None); // warm-up: page cache, allocator, branch predictors
        for round in 0..12 {
            let d1 = run_batch(&None);
            let agg = run_batch(&aggregate);
            let d2 = run_batch(&None);
            d1_min = d1_min.min(d1);
            agg_min = agg_min.min(agg);
            d2_min = d2_min.min(d2);
            // Alternate which position is the baseline so any systematic
            // early-vs-late-in-round skew flips sign and cancels in the
            // median instead of accumulating.
            if round % 2 == 0 {
                noise_pcts.push(100.0 * (d2 - d1) / d1);
            } else {
                noise_pcts.push(100.0 * (d1 - d2) / d2);
            }
            agg_pcts.push(100.0 * (agg - (d1 + d2) / 2.0) / ((d1 + d2) / 2.0));
        }
        TraceOverhead {
            disabled_ms: d1_min / 1e7,
            disabled_rerun_ms: d2_min / 1e7,
            aggregate_ms: agg_min / 1e7,
            disabled_overhead_percent: median(noise_pcts),
            aggregate_overhead_percent: median(agg_pcts),
        }
    };
    let mut best = measure_once();
    for _ in 0..5 {
        if best.disabled_overhead_percent.abs() <= 1.0 {
            break;
        }
        let next = measure_once();
        if next.disabled_overhead_percent.abs() < best.disabled_overhead_percent.abs() {
            best = next;
        }
    }
    best
}

fn main() {
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut picks = vec![subjects::motivating::motivating()];
    let all = subjects::all_subjects();
    for name in ["bubble_sort", "inverse_sum", "binary_search"] {
        if let Some(m) = all.iter().find(|m| m.name == name) {
            picks.push(m.clone());
        }
    }

    let mut results: Vec<CaseResult> = picks.iter().map(|m| run_case(m, jobs)).collect();
    results.push(run_tables_case(jobs));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"reps\": {CACHE_REPS},");
    let _ = writeln!(json, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let hit_rate = r.stats.hit_rate();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"case\": \"{}\",", r.name);
        let _ = writeln!(
            json,
            "      \"serial_uncached_ms\": {:.3},",
            r.serial_uncached_ns as f64 / 1e6
        );
        let _ =
            writeln!(json, "      \"serial_cached_ms\": {:.3},", r.serial_cached_ns as f64 / 1e6);
        let _ = writeln!(
            json,
            "      \"parallel_cached_ms\": {:.3},",
            r.parallel_cached_ns as f64 / 1e6
        );
        let _ = writeln!(json, "      \"cache_hits\": {},", r.stats.hits);
        let _ = writeln!(json, "      \"cache_misses\": {},", r.stats.misses);
        let _ = writeln!(json, "      \"cache_hit_rate\": {hit_rate:.4},");
        let _ = writeln!(json, "      \"speedup_cache\": {:.3},", r.speedup_cache);
        let _ = writeln!(json, "      \"speedup_cache_parallel\": {:.3}", r.speedup_cache_parallel);
        let _ = write!(json, "    }}");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    let mb = run_cachekey_microbench();
    let _ = writeln!(json, "  \"cachekey_microbench\": {{");
    let _ = writeln!(json, "    \"queries\": {},", mb.queries);
    let _ = writeln!(json, "    \"interned_ns_per_key\": {:.1},", mb.interned_ns_per_key);
    let _ = writeln!(json, "    \"deep_baseline_ns_per_key\": {:.1},", mb.deep_baseline_ns_per_key);
    let _ = writeln!(json, "    \"speedup_interned\": {:.3}", mb.speedup_interned);
    let _ = writeln!(json, "  }},");

    let TraceOverhead {
        disabled_ms,
        disabled_rerun_ms,
        aggregate_ms,
        disabled_overhead_percent,
        aggregate_overhead_percent,
    } = trace_overhead();
    let _ = writeln!(json, "  \"trace_overhead\": {{");
    let _ = writeln!(json, "    \"disabled_ms\": {disabled_ms:.3},");
    let _ = writeln!(json, "    \"disabled_rerun_ms\": {disabled_rerun_ms:.3},");
    let _ = writeln!(json, "    \"aggregate_ms\": {aggregate_ms:.3},");
    let _ = writeln!(json, "    \"disabled_overhead_percent\": {disabled_overhead_percent:.3},");
    let _ = writeln!(json, "    \"aggregate_overhead_percent\": {aggregate_overhead_percent:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write("BENCH_solver_cache.json", &json).expect("write BENCH_solver_cache.json");

    let st = run_solver_tiers_case();
    let t = &st.tiers;
    let mut tiers_json = String::from("{\n");
    let _ = writeln!(tiers_json, "  \"case\": \"paper_tables::5_method_slice\",");
    let _ = writeln!(tiers_json, "  \"reps\": {REPS},");
    let _ = writeln!(tiers_json, "  \"tiered_ms\": {:.3},", st.tiered_ms);
    let _ = writeln!(tiers_json, "  \"simplex_only_ms\": {:.3},", st.simplex_only_ms);
    let _ = writeln!(
        tiers_json,
        "  \"tiered_vs_simplex_ratio\": {:.4},",
        st.tiered_ms / st.simplex_only_ms
    );
    let _ = writeln!(tiers_json, "  \"answered_by_syntactic\": {},", t.answered_by_syntactic);
    let _ = writeln!(tiers_json, "  \"answered_by_interval\": {},", t.answered_by_interval);
    let _ = writeln!(tiers_json, "  \"answered_by_simplex\": {},", t.answered_by_simplex);
    let _ = writeln!(tiers_json, "  \"escalations\": {},", t.escalations);
    let _ = writeln!(tiers_json, "  \"tier1_answer_rate\": {:.4}", t.tier1_rate());
    tiers_json.push_str("}\n");
    std::fs::write("BENCH_solver_tiers.json", &tiers_json).expect("write BENCH_solver_tiers.json");

    let si = run_solver_incremental_case();
    let mut inc_json = String::from("{\n");
    let _ = writeln!(inc_json, "  \"case\": \"corpus_failing_paths::algorithm1_sweeps\",");
    let _ = writeln!(inc_json, "  \"reps\": {INCREMENTAL_REPS},");
    let _ = writeln!(inc_json, "  \"sweeps\": {},", si.sweeps);
    let _ = writeln!(inc_json, "  \"queries\": {},", si.queries);
    let _ = writeln!(inc_json, "  \"incremental_ms\": {:.3},", si.incremental_ms);
    let _ = writeln!(inc_json, "  \"scratch_ms\": {:.3},", si.scratch_ms);
    let _ = writeln!(
        inc_json,
        "  \"incremental_vs_scratch_ratio\": {:.4}",
        si.incremental_ms / si.scratch_ms
    );
    inc_json.push_str("}\n");
    std::fs::write("BENCH_solver_incremental.json", &inc_json)
        .expect("write BENCH_solver_incremental.json");

    let ip = run_interproc_case();
    let mut ip_json = String::from("{\n");
    let _ = writeln!(ip_json, "  \"case\": \"interproc::summary_vs_inline\",");
    let _ = writeln!(ip_json, "  \"reps\": {INTERPROC_REPS},");
    let _ = writeln!(ip_json, "  \"methods\": {},", ip.methods);
    let _ = writeln!(ip_json, "  \"inline_ms\": {:.3},", ip.inline_ms);
    let _ = writeln!(ip_json, "  \"summary_ms\": {:.3},", ip.summary_ms);
    let _ = writeln!(ip_json, "  \"summary_vs_inline_ratio\": {:.4},", ip.ratio);
    let _ = writeln!(ip_json, "  \"table_entries\": {},", ip.table_entries);
    let _ = writeln!(ip_json, "  \"table_hits\": {},", ip.table_hits);
    let _ = writeln!(ip_json, "  \"summary_applies\": {}", ip.applies);
    ip_json.push_str("}\n");
    std::fs::write("BENCH_interproc.json", &ip_json).expect("write BENCH_interproc.json");

    println!(
        "perf smoke: {jobs} thread(s), {CACHE_REPS} bracketed reps per cache case \
         (median paired speedups)"
    );
    for r in &results {
        println!(
            "  {:<44} serial {:>8.2} ms | cached {:>8.2} ms ({:.2}x) | parallel+cached {:>8.2} ms ({:.2}x) | hit rate {:.1}%",
            r.name,
            r.serial_uncached_ns as f64 / 1e6,
            r.serial_cached_ns as f64 / 1e6,
            r.speedup_cache,
            r.parallel_cached_ns as f64 / 1e6,
            r.speedup_cache_parallel,
            r.stats.hit_rate() * 100.0,
        );
    }
    println!(
        "  cache-key microbench: interned {:.0} ns/key vs deep baseline {:.0} ns/key \
         ({:.2}x) over {} corpus queries",
        mb.interned_ns_per_key, mb.deep_baseline_ns_per_key, mb.speedup_interned, mb.queries,
    );
    println!(
        "  trace overhead: disabled {disabled_ms:.2} ms / rerun {disabled_rerun_ms:.2} ms \
         ({disabled_overhead_percent:+.2}% noise) | aggregate sink {aggregate_ms:.2} ms \
         ({aggregate_overhead_percent:+.2}%)"
    );
    println!(
        "  solver tiers: tiered {:.2} ms vs simplex-only {:.2} ms ({:.3}x) | \
         {} syntactic / {} interval / {} simplex, {} escalation(s) ({:.1}% above simplex)",
        st.tiered_ms,
        st.simplex_only_ms,
        st.tiered_ms / st.simplex_only_ms,
        t.answered_by_syntactic,
        t.answered_by_interval,
        t.answered_by_simplex,
        t.escalations,
        100.0 * t.tier1_rate(),
    );
    println!(
        "  solver incremental: warm sessions {:.2} ms vs scratch {:.2} ms ({:.3}x) \
         over {} Algorithm-1 sweeps / {} queries",
        si.incremental_ms,
        si.scratch_ms,
        si.incremental_ms / si.scratch_ms,
        si.sweeps,
        si.queries,
    );
    println!(
        "  interproc: summary {:.2} ms vs inline {:.2} ms ({:.3}x) over {} multi-function \
         methods | {} table entries, {} warm hits, {} summary applies",
        ip.summary_ms,
        ip.inline_ms,
        ip.ratio,
        ip.methods,
        ip.table_entries,
        ip.table_hits,
        ip.applies,
    );
    println!(
        "wrote BENCH_solver_cache.json, BENCH_solver_tiers.json, BENCH_solver_incremental.json \
         and BENCH_interproc.json"
    );
}
