//! Perf smoke: times end-to-end inference with the solver cache and the
//! parallel driver against the serial/uncached baseline and emits
//! `BENCH_solver_cache.json` in the working directory.
//!
//! This is the quick, scriptable counterpart of `cargo bench -p bench
//! --bench solver_cache`: a handful of repetitions per configuration, the
//! minimum wall-clock kept (least-noise estimator), plus the cache's
//! hit/miss counters from the cached run.

use preinfer_core::{infer_all_preconditions, PreInferConfig};
use report::{evaluate_corpus, EvalConfig};
use solver::{CacheStats, SolverCache};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use subjects::SubjectMethod;
use testgen::{generate_tests, TestGenConfig};

const REPS: usize = 3;

struct CaseResult {
    name: String,
    serial_uncached_ns: u128,
    serial_cached_ns: u128,
    parallel_cached_ns: u128,
    stats: CacheStats,
}

fn time_inference(
    m: &SubjectMethod,
    tp: &minilang::TypedProgram,
    suite: &testgen::Suite,
    cache: Option<Arc<SolverCache>>,
    jobs: usize,
) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        if let Some(c) = &cache {
            c.clear(); // each rep pays the warm-up misses again
        }
        let mut cfg = PreInferConfig::default();
        cfg.prune.solver_cache = cache.clone();
        cfg.prune.jobs = jobs;
        let start = Instant::now();
        let out = infer_all_preconditions(tp, m.name, suite, &cfg, jobs);
        best = best.min(start.elapsed().as_nanos());
        assert!(!out.is_empty(), "{} inferred nothing", m.name);
    }
    best
}

fn run_case(m: &SubjectMethod, jobs: usize) -> CaseResult {
    let tp = m.compile();
    let suite = generate_tests(&tp, m.name, &TestGenConfig::default());
    let serial_uncached_ns = time_inference(m, &tp, &suite, None, 1);
    let cache = Arc::new(SolverCache::new());
    let serial_cached_ns = time_inference(m, &tp, &suite, Some(cache.clone()), 1);
    let parallel_cache = Arc::new(SolverCache::new());
    let parallel_cached_ns = time_inference(m, &tp, &suite, Some(parallel_cache.clone()), jobs);
    // Stats from the final serial-cached repetition: one full inference's
    // traffic against an initially empty cache.
    CaseResult {
        name: format!("{}::{}", m.namespace, m.name),
        serial_uncached_ns,
        serial_cached_ns,
        parallel_cached_ns,
        stats: cache.stats(),
    }
}

/// The `paper_tables` workload: the full Section V protocol
/// ([`evaluate_corpus`]: generation, inference, both baselines, scoring)
/// over a representative corpus slice, as the table benches run it.
fn run_tables_case(jobs: usize) -> CaseResult {
    let names = ["bubble_sort", "guarded_div", "stack_pop", "inverse_sum", "binary_search"];
    let methods: Vec<SubjectMethod> =
        subjects::all_subjects().into_iter().filter(|m| names.contains(&m.name)).collect();
    let timed = |solver_cache: bool, jobs: usize| -> (u128, u64, u64) {
        let mut best = u128::MAX;
        let (mut hits, mut misses) = (0, 0);
        for _ in 0..REPS {
            let cfg = EvalConfig { jobs, solver_cache, ..EvalConfig::default() };
            let start = Instant::now();
            let results = evaluate_corpus(&methods, &cfg);
            best = best.min(start.elapsed().as_nanos());
            hits = results.iter().map(|r| r.solver_cache_hits).sum();
            misses = results.iter().map(|r| r.solver_cache_misses).sum();
        }
        (best, hits, misses)
    };
    let (serial_uncached_ns, _, _) = timed(false, 1);
    let (serial_cached_ns, hits, misses) = timed(true, 1);
    let (parallel_cached_ns, _, _) = timed(true, jobs);
    CaseResult {
        name: format!("paper_tables::{}_method_slice", methods.len()),
        serial_uncached_ns,
        serial_cached_ns,
        parallel_cached_ns,
        stats: CacheStats { hits, misses, evictions: 0, entries: 0 },
    }
}

fn ratio(base: u128, improved: u128) -> f64 {
    if improved == 0 {
        return 0.0;
    }
    base as f64 / improved as f64
}

fn main() {
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut picks = vec![subjects::motivating::motivating()];
    let all = subjects::all_subjects();
    for name in ["bubble_sort", "inverse_sum", "binary_search"] {
        if let Some(m) = all.iter().find(|m| m.name == name) {
            picks.push(m.clone());
        }
    }

    let mut results: Vec<CaseResult> = picks.iter().map(|m| run_case(m, jobs)).collect();
    results.push(run_tables_case(jobs));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let hit_rate = r.stats.hit_rate();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"case\": \"{}\",", r.name);
        let _ = writeln!(
            json,
            "      \"serial_uncached_ms\": {:.3},",
            r.serial_uncached_ns as f64 / 1e6
        );
        let _ =
            writeln!(json, "      \"serial_cached_ms\": {:.3},", r.serial_cached_ns as f64 / 1e6);
        let _ = writeln!(
            json,
            "      \"parallel_cached_ms\": {:.3},",
            r.parallel_cached_ns as f64 / 1e6
        );
        let _ = writeln!(json, "      \"cache_hits\": {},", r.stats.hits);
        let _ = writeln!(json, "      \"cache_misses\": {},", r.stats.misses);
        let _ = writeln!(json, "      \"cache_hit_rate\": {hit_rate:.4},");
        let _ = writeln!(
            json,
            "      \"speedup_cache\": {:.3},",
            ratio(r.serial_uncached_ns, r.serial_cached_ns)
        );
        let _ = writeln!(
            json,
            "      \"speedup_cache_parallel\": {:.3}",
            ratio(r.serial_uncached_ns, r.parallel_cached_ns)
        );
        let _ = write!(json, "    }}");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_solver_cache.json", &json).expect("write BENCH_solver_cache.json");

    println!("perf smoke: {jobs} thread(s), best of {REPS} reps per configuration");
    for r in &results {
        println!(
            "  {:<44} serial {:>8.2} ms | cached {:>8.2} ms ({:.2}x) | parallel+cached {:>8.2} ms ({:.2}x) | hit rate {:.1}%",
            r.name,
            r.serial_uncached_ns as f64 / 1e6,
            r.serial_cached_ns as f64 / 1e6,
            ratio(r.serial_uncached_ns, r.serial_cached_ns),
            r.parallel_cached_ns as f64 / 1e6,
            ratio(r.serial_uncached_ns, r.parallel_cached_ns),
            r.stats.hit_rate() * 100.0,
        );
    }
    println!("wrote BENCH_solver_cache.json");
}
