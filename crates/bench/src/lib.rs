//! Benchmark support crate; see `benches/` for the Criterion harnesses.
