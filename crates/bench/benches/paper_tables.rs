//! One benchmark per paper table/figure: times the regeneration of each
//! artifact (on bounded corpus slices, so Criterion's iteration counts stay
//! reasonable). The artifacts' *contents* are produced by
//! `cargo run --release --bin tables`; these benches measure the machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use report::{evaluate_corpus, EvalConfig};
use std::hint::black_box;

fn slice(names: &[&str]) -> Vec<subjects::SubjectMethod> {
    subjects::all_subjects().into_iter().filter(|m| names.contains(&m.name)).collect()
}

/// Table I/II: collecting the motivating example's failing path conditions.
fn bench_table_1_2(c: &mut Criterion) {
    c.bench_function("table_1_2_path_conditions", |b| {
        b.iter(|| black_box(report::table_1_2()));
    });
}

/// Table III: corpus statistics.
fn bench_table_3(c: &mut Criterion) {
    c.bench_function("table_3_corpus_stats", |b| {
        b.iter(|| black_box(report::table_3()));
    });
}

/// Table IV: test generation + coverage on one representative method.
fn bench_table_4(c: &mut Criterion) {
    let methods = slice(&["bubble_sort"]);
    let cfg = EvalConfig::default();
    c.bench_function("table_4_coverage_one_method", |b| {
        b.iter(|| {
            let results = evaluate_corpus(&methods, &cfg);
            black_box(report::table_4(&results))
        });
    });
}

/// Table V: the full three-approach comparison on a two-method slice.
fn bench_table_5(c: &mut Criterion) {
    let methods = slice(&["guarded_div", "stack_pop"]);
    let cfg = EvalConfig::default();
    let mut g = c.benchmark_group("table_5");
    g.sample_size(10);
    g.bench_function("three_approaches_two_methods", |b| {
        b.iter(|| {
            let results = evaluate_corpus(&methods, &cfg);
            black_box(report::table_5(&results))
        });
    });
    g.finish();
}

/// Table VI: a collection-element case end to end.
fn bench_table_6(c: &mut Criterion) {
    let methods = slice(&["inverse_sum"]);
    let cfg = EvalConfig::default();
    let mut g = c.benchmark_group("table_6");
    g.sample_size(10);
    g.bench_function("quantified_case", |b| {
        b.iter(|| {
            let results = evaluate_corpus(&methods, &cfg);
            black_box(report::table_6(&results))
        });
    });
    g.finish();
}

/// Figure 3: relative-complexity aggregation (on precomputed results).
fn bench_figure_3(c: &mut Criterion) {
    let methods = slice(&["guarded_div", "inverse_sum", "requires_range"]);
    let results = evaluate_corpus(&methods, &EvalConfig::default());
    c.bench_function("figure_3_aggregation", |b| {
        b.iter(|| black_box(report::figure_3(&results)));
    });
}

criterion_group!(
    tables,
    bench_table_1_2,
    bench_table_3,
    bench_table_4,
    bench_table_5,
    bench_table_6,
    bench_figure_3
);
criterion_main!(tables);
