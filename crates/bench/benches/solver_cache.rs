//! Benchmarks for the canonicalizing solver cache and the parallel
//! inference driver: solver-level warm-cache speedup, and end-to-end
//! inference serial/uncached vs cached vs cached+parallel.

use concolic::{run_concolic, ConcolicConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use minilang::{compile, InputValue, MethodEntryState, TypedProgram};
use preinfer_core::{infer_all_preconditions, PreInferConfig};
use solver::{solve_preds, solve_preds_with, FuncSig, SolverCache, SolverConfig};
use std::hint::black_box;
use std::sync::Arc;
use symbolic::Pred;
use testgen::{generate_tests, Suite, TestGenConfig};

const FIG1: &str = "
fn example(s [str], a int, b int, c int, d int) -> int {
    let sum = 0;
    if (a > 0) { b = b + 1; }
    if (c > 0) { d = d + 1; }
    if (b > 0) { sum = sum + 1; }
    if (d > 0) {
        for (let i = 0; i < len(s); i = i + 1) {
            sum = sum + strlen(s[i]);
        }
        return sum;
    }
    return sum;
}";

fn fig1() -> (TypedProgram, Suite) {
    let tp = compile(FIG1).unwrap();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    (tp, suite)
}

fn infer_cfg(cache: bool, jobs: usize) -> PreInferConfig {
    let mut cfg = PreInferConfig::default();
    cfg.prune.solver_cache = cache.then(|| Arc::new(SolverCache::new()));
    cfg.prune.jobs = jobs;
    cfg
}

/// Solver level: repeated solves of one concrete path condition, uncached
/// vs through a warm cache (the steady-state hit path).
fn bench_cache_hit_path(c: &mut Criterion) {
    let (tp, _) = fig1();
    let func = tp.func("example").unwrap();
    let sig = FuncSig::of(func);
    let a = Some(vec![97i64]);
    let state = MethodEntryState::from_pairs([
        ("s".to_string(), InputValue::ArrayStr(Some(vec![a.clone(), a, None]))),
        ("a".to_string(), InputValue::Int(1)),
        ("b".to_string(), InputValue::Int(0)),
        ("c".to_string(), InputValue::Int(1)),
        ("d".to_string(), InputValue::Int(0)),
    ]);
    let out = run_concolic(&tp, "example", &state, &ConcolicConfig::default());
    let preds: Vec<Pred> = out.path.entries.iter().map(|e| e.pred.clone()).collect();
    let solver_cfg = SolverConfig::default();
    c.bench_function("solve_path_uncached", |b| {
        b.iter(|| black_box(solve_preds(&preds, &sig, &solver_cfg)));
    });
    let cache = SolverCache::new();
    let _ = solve_preds_with(&preds, &sig, &solver_cfg, Some(&cache)); // warm
    c.bench_function("solve_path_warm_cache", |b| {
        b.iter(|| black_box(solve_preds_with(&preds, &sig, &solver_cfg, Some(&cache)).0));
    });
}

/// End to end: all-ACL inference on the motivating example, the three
/// configurations the CLI exposes. A fresh cache per iteration, so the
/// cached numbers include the misses that warm it.
fn bench_inference_configs(c: &mut Criterion) {
    let (tp, suite) = fig1();
    let mut g = c.benchmark_group("infer_fig1");
    g.sample_size(10);
    g.bench_function("serial_uncached", |b| {
        b.iter(|| {
            let cfg = infer_cfg(false, 1);
            black_box(infer_all_preconditions(&tp, "example", &suite, &cfg, 1))
        });
    });
    g.bench_function("serial_cached", |b| {
        b.iter(|| {
            let cfg = infer_cfg(true, 1);
            black_box(infer_all_preconditions(&tp, "example", &suite, &cfg, 1))
        });
    });
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    g.bench_function("parallel_cached", |b| {
        b.iter(|| {
            let cfg = infer_cfg(true, jobs);
            black_box(infer_all_preconditions(&tp, "example", &suite, &cfg, jobs))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache_hit_path, bench_inference_configs);
criterion_main!(benches);
