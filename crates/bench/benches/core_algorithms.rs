//! Microbenchmarks of the core algorithms: concolic execution, constraint
//! solving, generational test generation, dynamic predicate pruning, and
//! collection-element generalization — plus ablations for the design
//! choices DESIGN.md calls out (dynamic witnesses on/off, removal
//! verification on/off).

use concolic::{run_concolic, ConcolicConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use interp::{run, InterpConfig};
use minilang::{compile, InputValue, MethodEntryState, TypedProgram};
use preinfer_core::{
    generalize_path, infer_precondition, prune_failing_paths, PreInferConfig, PruneConfig,
};
use solver::{solve_preds, FuncSig, SolverConfig};
use std::hint::black_box;
use symbolic::Pred;
use testgen::{generate_tests, TestGenConfig};

const FIG1: &str = "
fn example(s [str], a int, b int, c int, d int) -> int {
    let sum = 0;
    if (a > 0) { b = b + 1; }
    if (c > 0) { d = d + 1; }
    if (b > 0) { sum = sum + 1; }
    if (d > 0) {
        for (let i = 0; i < len(s); i = i + 1) {
            sum = sum + strlen(s[i]);
        }
        return sum;
    }
    return sum;
}";

fn fig1() -> TypedProgram {
    compile(FIG1).unwrap()
}

fn tf3_state() -> MethodEntryState {
    let a = Some(vec![97i64]);
    MethodEntryState::from_pairs([
        ("s".to_string(), InputValue::ArrayStr(Some(vec![a.clone(), a, None]))),
        ("a".to_string(), InputValue::Int(1)),
        ("b".to_string(), InputValue::Int(0)),
        ("c".to_string(), InputValue::Int(1)),
        ("d".to_string(), InputValue::Int(0)),
    ])
}

fn bench_execution(c: &mut Criterion) {
    let tp = fig1();
    let state = tf3_state();
    c.bench_function("interp_fig1_tf3", |b| {
        b.iter(|| black_box(run(&tp, "example", &state, &InterpConfig::default())));
    });
    c.bench_function("concolic_fig1_tf3", |b| {
        b.iter(|| black_box(run_concolic(&tp, "example", &state, &ConcolicConfig::default())));
    });
}

fn bench_solver(c: &mut Criterion) {
    let tp = fig1();
    let func = tp.func("example").unwrap();
    let sig = FuncSig::of(func);
    let out = run_concolic(&tp, "example", &tf3_state(), &ConcolicConfig::default());
    let preds: Vec<Pred> = out.path.entries.iter().map(|e| e.pred.clone()).collect();
    c.bench_function("solve_fig1_tf3_path_condition", |b| {
        b.iter(|| black_box(solve_preds(&preds, &sig, &SolverConfig::default())));
    });
}

fn bench_testgen(c: &mut Criterion) {
    let tp = fig1();
    let mut g = c.benchmark_group("testgen");
    g.sample_size(10);
    g.bench_function("generate_fig1_suite", |b| {
        b.iter(|| black_box(generate_tests(&tp, "example", &TestGenConfig::default())));
    });
    g.finish();
}

fn element_acl(suite: &testgen::Suite) -> minilang::CheckId {
    suite
        .triggered_acls()
        .into_iter()
        .find(|a| {
            let (_, fail) = suite.partition(*a);
            fail.iter().any(|r| {
                r.path.last_branch().map(|e| e.pred.to_string().starts_with("s[")).unwrap_or(false)
            })
        })
        .expect("element ACL")
}

fn bench_pruning_ablations(c: &mut Criterion) {
    let tp = fig1();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    let acl = element_acl(&suite);
    let (pass, fail) = suite.partition(acl);
    let mut g = c.benchmark_group("pruning");
    g.sample_size(10);
    g.bench_function("full_dynamic", |b| {
        b.iter(|| {
            black_box(prune_failing_paths(
                &tp,
                "example",
                acl,
                &pass,
                &fail,
                &PruneConfig::default(),
            ))
        });
    });
    // Ablation: witnesses only from the suite (no manufactured deviations).
    let static_cfg =
        PruneConfig { dynamic_witnesses: false, verify_removals: false, ..Default::default() };
    g.bench_function("static_witnesses_only", |b| {
        b.iter(|| black_box(prune_failing_paths(&tp, "example", acl, &pass, &fail, &static_cfg)));
    });
    g.finish();
}

fn bench_generalization(c: &mut Criterion) {
    let tp = fig1();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    let acl = element_acl(&suite);
    let (pass, fail) = suite.partition(acl);
    let (reduced, _) =
        prune_failing_paths(&tp, "example", acl, &pass, &fail, &PruneConfig::default());
    let templates = preinfer_core::default_templates();
    let states: Vec<&MethodEntryState> = pass.iter().map(|r| &r.state).collect();
    c.bench_function("generalize_reduced_paths", |b| {
        b.iter(|| {
            for r in &reduced {
                black_box(generalize_path(r, &templates, &states));
            }
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let tp = fig1();
    let suite = generate_tests(&tp, "example", &TestGenConfig::default());
    let acl = element_acl(&suite);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("infer_precondition_fig1", |b| {
        b.iter(|| {
            black_box(infer_precondition(&tp, "example", acl, &suite, &PreInferConfig::default()))
        });
    });
    g.finish();
}

criterion_group!(
    core_algorithms,
    bench_execution,
    bench_solver,
    bench_testgen,
    bench_pruning_ablations,
    bench_generalization,
    bench_end_to_end
);
criterion_main!(core_algorithms);
