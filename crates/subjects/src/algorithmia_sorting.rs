//! `Algorithmia.Sorting` — sorting routines ported from the Algorithmia
//! project's sorting namespace: comparison sorts over `[int]`, a
//! string-length sort over `[str]`, and small pivot/median helpers.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "Algorithmia.Sorting";
const SUBJ: &str = "Algorithmia";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "bubble_sort",
            source: "
fn bubble_sort(a [int]) {
    let n = len(a);
    for (let i = 0; i < n; i = i + 1) {
        for (let j = 0; j + 1 < n - i; j = j + 1) {
            if (a[j] > a[j + 1]) {
                let t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "insertion_sort",
            source: "
fn insertion_sort(a [int]) {
    let n = len(a);
    let i = 1;
    while (i < n) {
        let key = a[i];
        let j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
        i = i + 1;
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "is_sorted_at",
            source: "
fn is_sorted_at(a [int], i int) -> bool {
    return a[i] <= a[i + 1];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && (i < 0 || i >= len(a))",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 1,
                    alpha: "a != null && i >= 0 && i < len(a) && i + 1 >= len(a)",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "median_of_three",
            source: "
fn median_of_three(a [int]) -> int {
    let lo = a[0];
    let mid = a[len(a) / 2];
    let hi = a[len(a) - 1];
    if (lo > mid) { let t = lo; lo = mid; mid = t; }
    if (mid > hi) { let t = mid; mid = hi; hi = t; }
    if (lo > mid) { let t = lo; lo = mid; mid = t; }
    return mid;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && len(a) == 0",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "sort_strings_by_length",
            source: "
fn sort_strings_by_length(s [str]) {
    let n = len(s);
    for (let i = 0; i < n; i = i + 1) {
        for (let j = 0; j + 1 < n - i; j = j + 1) {
            if (strlen(s[j]) > strlen(s[j + 1])) {
                let t = s[j];
                s[j] = s[j + 1];
                s[j + 1] = t;
            }
        }
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "s == null",
                    quantified: false,
                },
                // strlen(s[j]) — the first element-null dereference.
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 2,
                    // Single-element arrays never compare, so a null element
                    // only fails from length 2 upward.
                    alpha: "s != null && len(s) >= 2 && exists i. i < len(s) && s[i] == null",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "count_inversions_bounded",
            // The inversion count is a data-dependent aggregate: the target
            // precondition is not expressible in the first-order template
            // language, so no ground truth is annotated for the assert (the
            // paper's "complex loop" category).
            source: "
fn count_inversions_bounded(a [int], limit int) -> int {
    if (a == null) { return 0; }
    let count = 0;
    for (let i = 0; i < len(a); i = i + 1) {
        for (let j = i + 1; j < len(a); j = j + 1) {
            if (a[i] > a[j]) { count = count + 1; }
        }
    }
    assert(count <= limit);
    return count;
}",
            truths: vec![],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "swap_range_prefix",
            source: "
fn swap_range_prefix(a [int], k int) {
    // reverse the first k elements
    let lo = 0;
    let hi = k - 1;
    while (lo < hi) {
        let t = a[lo];
        a[lo] = a[hi];
        a[hi] = t;
        lo = lo + 1;
        hi = hi - 1;
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "k >= 2 && a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    // a[lo] with lo = 0 on an empty array.
                    alpha: "k >= 2 && a != null && len(a) == 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 2,
                    // the a[hi] read (site #2: the write's own check is #1
                    // but the value is evaluated first): hi = k-1 past the
                    // end on the first iteration.
                    alpha: "k >= 2 && a != null && len(a) >= 1 && k - 1 >= len(a)",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "gnome_sort",
            source: "
fn gnome_sort(a [int]) {
    let i = 0;
    while (i < len(a)) {
        if (i == 0 || a[i] >= a[i - 1]) {
            i = i + 1;
        } else {
            let t = a[i];
            a[i] = a[i - 1];
            a[i - 1] = t;
            i = i - 1;
        }
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "partition_pivot",
            source: "
fn partition_pivot(a [int], p int) -> int {
    let pivot = a[p];
    let smaller = 0;
    for (let i = 0; i < len(a); i = i + 1) {
        if (a[i] < pivot) { smaller = smaller + 1; }
    }
    return smaller;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && (p < 0 || p >= len(a))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "min_index_from",
            source: "
fn min_index_from(a [int], k int) -> int {
    let best = k;
    let v = a[k];
    for (let i = k + 1; i < len(a); i = i + 1) {
        if (a[i] < v) { v = a[i]; best = i; }
    }
    return best;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && (k < 0 || k >= len(a))",
                    quantified: false,
                },
            ],
        },
    ]
}
