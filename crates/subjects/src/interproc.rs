//! `Interproc.Summaries` — the multi-function extension corpus: entry
//! methods whose assertion-containing locations live inside callees,
//! exercising both interprocedural modes (inlined callee bodies and
//! bottom-up ψ-summary application). Shapes covered: a lifted callee
//! assert, a helper shared by three call sites, a diamond call graph, a
//! bounded recursive callee (the summary builder's typed inline fallback),
//! null/bounds checks through callees, a three-level chain, a guarded
//! call, and a boolean actual.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "Interproc.Summaries";
const SUBJ: &str = "Interproc";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "lift_guard",
            // The callee's assert must surface as a caller precondition over
            // the substituted actual.
            source: "
fn check_pos(v int) -> int {
    assert(v > 0);
    return v;
}
fn lift_guard(x int) -> int {
    return check_pos(x - 3);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "x <= 3",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "shared_helper",
            // One helper, three call sites: the single callee ACL aggregates
            // failures from every caller position.
            source: "
fn nz_div(a int, b int) -> int {
    return a / b;
}
fn shared_helper(p int, q int) -> int {
    let s = nz_div(10, p);
    let t = nz_div(p, q);
    return nz_div(s + t, p + q);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "p == 0 || q == 0 || p + q == 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "diamond",
            // Diamond call graph: both arms funnel into one base ACL with
            // different actual shifts.
            source: "
fn base(v int) -> int {
    return 100 / v;
}
fn left(x int) -> int {
    return base(x - 1);
}
fn right(x int) -> int {
    return base(x + 1);
}
fn diamond(x int) -> int {
    return left(x) + right(x);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "x == 1 || x == -1",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "bounded_rec",
            // Recursive callee: the summary builder must fall back (typed
            // `Recursive`) and calls inline as before. The entry assert
            // bounds the depth so passing runs never exhaust the call stack.
            source: "
fn sum_to(n int) -> int {
    if (n <= 0) { return 0; }
    return n + sum_to(n - 1);
}
fn bounded_rec(n int) -> int {
    assert(n <= 8);
    let s = sum_to(n);
    return 10 / (s - 6);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "n > 8",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    // sum_to(n) == 6 exactly at n == 3 within the asserted
                    // range.
                    alpha: "n == 3",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "callee_null",
            source: "
fn str_len(s str) -> int {
    return strlen(s);
}
fn callee_null(s str, k int) -> int {
    if (k > 0) { return str_len(s); }
    return 0;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "k > 0 && s == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "callee_bounds",
            source: "
fn at(a [int], i int) -> int {
    return a[i];
}
fn callee_bounds(a [int], i int) -> int {
    return at(a, i + 1);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && (i + 1 < 0 || i + 1 >= len(a))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "chain_depth",
            // Three-level chain: the actual substitutes through two layers
            // of canonical parameters before reaching the leaf ACL.
            source: "
fn leaf3(d int) -> int {
    return 10 / d;
}
fn mid3(a int) -> int {
    return leaf3(a - 1);
}
fn chain_depth(x int) -> int {
    return mid3(x - 2);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "x == 3",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "guarded_call",
            // The caller's branch guards one call site completely; only the
            // other can fail, and only on part of its branch's inputs.
            source: "
fn req_pos(v int) -> int {
    assert(v > 0);
    return v;
}
fn guarded_call(x int) -> int {
    if (x > 0) { return req_pos(x); }
    return req_pos(x + 5);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "x <= -5",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "branchy_scale",
            // A callee whose internal control flow is wide (eight symbolic
            // branches) but whose precondition is one atom: inlining
            // re-explores the branch cascade at every call site of every
            // test run, while summary application collapses each call to
            // ψ(actuals) = `d != 0`. This is the perf-smoke subject that
            // separates the two interprocedural modes.
            source: "
fn scale6(n int, d int) -> int {
    let acc = 100;
    if (n > 4) { acc = acc + 1; }
    if (n > 8) { acc = acc + 2; }
    if (n > 16) { acc = acc + 4; }
    if (n > 32) { acc = acc + 8; }
    if (n > 64) { acc = acc + 16; }
    if (n > 128) { acc = acc + 32; }
    if (n > 256) { acc = acc + 64; }
    if (n > 512) { acc = acc + 128; }
    return acc / d;
}
fn branchy_scale(n int, d int) -> int {
    return scale6(n, d) + scale6(n + 1, d) + scale6(n + 2, d) + scale6(n + 3, d);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "d == 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "bool_pass",
            // A boolean actual flows into the callee's branch structure.
            source: "
fn pick(flag bool, v int) -> int {
    if (flag) {
        assert(v > 0);
        return v;
    }
    return 0;
}
fn bool_pass(b bool, v int) -> int {
    return pick(b, v - 2);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "b && v <= 2",
                quantified: false,
            }],
        },
    ]
}
