//! The paper's Figure 1 motivating example, with its two ground-truth
//! preconditions (Lines 3 and 5 of the figure). Not part of the Table V
//! corpus — exposed separately for the quickstart example and tests.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

/// Figure 1's `example` method.
pub fn motivating() -> SubjectMethod {
    SubjectMethod {
        namespace: "Motivating",
        subject: "Motivating",
        name: "example",
        source: "
fn example(s [str], a int, b int, c int, d int) -> int {
    let sum = 0;
    if (a > 0) { b = b + 1; }
    if (c > 0) { d = d + 1; }
    if (b > 0) { sum = sum + 1; }
    if (d > 0) {
        for (let i = 0; i < len(s); i = i + 1) {
            sum = sum + strlen(s[i]);
        }
        return sum;
    }
    return sum;
}",
        truths: vec![
            // Paper Line 3: the exception at (paper) Lines 14-15 — here the
            // `len(s)` dereference of a null `s`.
            GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "((c > 0 && d + 1 > 0) || (c <= 0 && d > 0)) && s == null",
                quantified: false,
            },
            // Paper Line 5: the exception at (paper) Lines 16-17 — here the
            // `strlen(s[i])` dereference of a null element.
            GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 2,
                alpha: "((c > 0 && d + 1 > 0) || (c <= 0 && d > 0)) && s != null \
                        && exists i. i < len(s) && s[i] == null",
                quantified: true,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_compiles_and_truths_resolve() {
        let m = motivating();
        let tp = m.compile();
        let func = m.func(&tp);
        let sites = minilang::check_sites(func);
        let nulls: Vec<_> = sites.iter().filter(|s| s.id.kind == CheckKind::NullDeref).collect();
        assert_eq!(nulls.len(), 3); // len(s), s[i], strlen(s[i])
        assert!(m.truth_alpha(&tp, nulls[0].id).is_some());
        assert!(m.truth_alpha(&tp, nulls[2].id).is_some());
        assert!(m.truth_alpha(&tp, nulls[1].id).is_none());
    }
}
