//! `CodeContracts.ArrayPurityI` — array-focused cccheck regression tests:
//! element-wise contracts, range manipulation, and the quantified cases the
//! static analyzer's array abstract domains target.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "CodeContracts.ArrayPurityI";
const SUBJ: &str = "CodeContracts";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "sum_array",
            source: "
fn sum_array(a [int]) -> int {
    let s = 0;
    for (let i = 0; i < len(a); i = i + 1) {
        s = s + a[i];
    }
    return s;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "inverse_sum",
            // The paper's own illustration: each element is a denominator;
            // the violated property is "no element is zero".
            source: "
fn inverse_sum(a [int]) -> int {
    let s = 0;
    for (let i = 0; i < len(a); i = i + 1) {
        s = s + 100 / a[i];
    }
    return s;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    alpha: "a != null && exists i. i < len(a) && a[i] == 0",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "find_nonzero",
            source: "
fn find_nonzero(a [int]) -> int {
    let i = 0;
    while (i < len(a)) {
        if (a[i] != 0) { return i; }
        i = i + 1;
    }
    return 100 / 0;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    alpha: "a != null && (forall i. (0 <= i && i < len(a)) ==> a[i] == 0)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "copy_range",
            source: "
fn copy_range(src [int], dst [int], n int) {
    for (let i = 0; i < n; i = i + 1) {
        dst[i] = src[i];
    }
}",
            truths: vec![
                // src[i] is evaluated before the dst write's own checks.
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 1,
                    alpha: "n >= 1 && src == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "n >= 1 && src != null && len(src) >= 1 && dst == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 1,
                    alpha: "n >= 1 && src != null && dst != null \
                            && len(src) < n && len(dst) >= len(src)",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "n >= 1 && src != null && dst != null \
                            && len(dst) < n && len(dst) < len(src)",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "zero_fill_window",
            source: "
fn zero_fill_window(a [int], from int, to int) {
    for (let i = from; i < to; i = i + 1) {
        a[i] = 0;
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "from < to && a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "from < to && a != null && (from < 0 || to > len(a))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "last_of_each",
            // A genuinely hard quantified case: the first failing row
            // depends on the order of two different failure modes (null row
            // vs empty row), so the correct precondition needs nested
            // quantifiers — outside the template language.
            source: "
fn last_of_each(rows [str]) -> int {
    let s = 0;
    for (let i = 0; i < len(rows); i = i + 1) {
        s = s + char_at(rows[i], strlen(rows[i]) - 1);
    }
    return s;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "rows == null",
                    quantified: false,
                },
                GroundTruth {
                    // A null row fails at strlen's null check (NullDeref site
                    // order: len(rows) #0, the two rows[i] array checks #1
                    // and #2, strlen #3, char_at #4).
                    kind: CheckKind::NullDeref,
                    nth: 3,
                    alpha: "rows != null && exists i. (i < len(rows) && rows[i] == null \
                            && (forall j. (0 <= j && j < i) \
                                ==> (rows[j] != null && strlen(rows[j]) > 0)))",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "scale_elements",
            source: "
fn scale_elements(a [int], f int) {
    for (let i = 0; i < len(a); i = i + 1) {
        a[i] = a[i] * f;
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "first_equals_last",
            source: "
fn first_equals_last(a [int]) -> bool {
    return a[0] == a[len(a) - 1];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && len(a) == 0",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "reverse_in_place",
            source: "
fn reverse_in_place(a [int]) {
    let lo = 0;
    let hi = len(a) - 1;
    while (lo < hi) {
        let t = a[lo];
        a[lo] = a[hi];
        a[hi] = t;
        lo = lo + 1;
        hi = hi - 1;
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "sum_until_negative",
            source: "
fn sum_until_negative(a [int]) -> int {
    let s = 0;
    let i = 0;
    while (i < len(a) && a[i] >= 0) {
        s = s + a[i];
        i = i + 1;
    }
    return s / (len(a) - i + 1) + 100 / (len(a) - i);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 1,
                    // the scan exhausts iff every element is non-negative
                    alpha: "a != null && (forall i. (0 <= i && i < len(a)) ==> a[i] >= 0)",
                    quantified: true,
                },
            ],
        },
    ]
}
