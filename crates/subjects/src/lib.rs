//! # subjects
//!
//! The evaluation corpus: MiniLang ports mirroring the paper's four subject
//! suites (Table III) organized into the seven namespaces of Table V —
//! `Algorithmia.Sorting`, `Algorithmia.GeneralDataStr`, `DSA.Algorithm`,
//! `CodeContracts.ExamplesPuri`, `CodeContracts.PreInference`,
//! `CodeContracts.ArrayPurityI`, and `SVComp.SVCompCSharp`. Every method is
//! annotated with hand-written ground-truth *failure conditions* (`α*`, in
//! the spec DSL) per assertion-containing location; the ground-truth
//! precondition is `ψ* = ¬α*`.
//!
//! The original C# sources are not reproducible verbatim; these are
//! reimplementations of representative methods from each suite, chosen so
//! every phenomenon the paper measures occurs in the corpus: ACLs before /
//! inside / after loops, quantified ground truths (the Table VI
//! collection-element cases), complex loops outside the template language,
//! and methods whose every input fails.

pub mod algorithmia_gds;
pub mod algorithmia_sorting;
pub mod codecontracts_array;
pub mod codecontracts_examples;
pub mod codecontracts_preinf;
pub mod dsa_algorithm;
pub mod interproc;
pub mod motivating;
pub mod svcomp;

use minilang::{check_sites, CheckId, CheckKind, CheckSite, Func, TypedProgram};
use symbolic::{parse_spec, Formula};

/// A ground-truth annotation for one assertion-containing location,
/// identified by its check kind and its syntactic occurrence index among the
/// entry function's sites of that kind.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub kind: CheckKind,
    /// 0-based occurrence among the program's sites of this kind, in
    /// syntactic order — the entry function's sites first, then each
    /// helper's in program order (so multi-function subjects can annotate
    /// ACLs living inside callees).
    pub nth: usize,
    /// The failure condition `α*` in the spec DSL (`ψ* = ¬α*`).
    pub alpha: &'static str,
    /// Whether the target precondition needs a quantifier (Table VI).
    pub quantified: bool,
}

/// One benchmark method.
#[derive(Debug, Clone)]
pub struct SubjectMethod {
    /// Table V namespace, e.g. `"Algorithmia.Sorting"`.
    pub namespace: &'static str,
    /// Table III subject, e.g. `"Algorithmia"`.
    pub subject: &'static str,
    /// Entry-point function name.
    pub name: &'static str,
    /// Full MiniLang source (entry point plus helpers).
    pub source: &'static str,
    /// Ground truths for the ACLs the test generator is expected to trigger.
    pub truths: Vec<GroundTruth>,
}

impl SubjectMethod {
    /// Compiles the method's source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile — corpus sources are
    /// validated by the crate's tests.
    pub fn compile(&self) -> TypedProgram {
        minilang::compile(self.source).unwrap_or_else(|e| {
            panic!("subject {}::{} does not compile: {e}", self.namespace, self.name)
        })
    }

    /// The entry function within a compiled program.
    ///
    /// # Panics
    ///
    /// Panics if the entry function is missing (validated by crate tests).
    pub fn func<'a>(&self, program: &'a TypedProgram) -> &'a Func {
        program.func(self.name).expect("entry function exists")
    }

    /// All check sites the annotations index: the entry function's in
    /// syntactic order, then each helper's in program order.
    pub fn ordered_sites(&self, program: &TypedProgram) -> Vec<CheckSite> {
        let mut sites = check_sites(self.func(program));
        for f in &program.program().funcs {
            if f.name != self.name {
                sites.extend(check_sites(f));
            }
        }
        sites
    }

    /// Resolves the `(kind, nth)` annotation key for a triggered ACL.
    fn annotation_key(&self, program: &TypedProgram, acl: CheckId) -> Option<(CheckKind, usize)> {
        let mut counter = 0usize;
        for s in self.ordered_sites(program) {
            if s.id.kind == acl.kind {
                if s.id == acl {
                    return Some((acl.kind, counter));
                }
                counter += 1;
            }
        }
        None
    }

    /// Resolves the ground-truth failure condition `α*` for a triggered ACL.
    /// Returns `None` when the ACL carries no annotation.
    ///
    /// # Panics
    ///
    /// Panics when the stored spec does not parse (validated by crate tests).
    pub fn truth_alpha(&self, program: &TypedProgram, acl: CheckId) -> Option<Formula> {
        let (kind, nth) = self.annotation_key(program, acl)?;
        let gt = self.truths.iter().find(|t| t.kind == kind && t.nth == nth)?;
        let func = self.func(program);
        Some(parse_spec(gt.alpha, func).unwrap_or_else(|e| {
            panic!("bad ground truth for {}::{} ({kind}, #{nth}): {e}", self.namespace, self.name)
        }))
    }

    /// Whether a triggered ACL is annotated as a collection-element case.
    pub fn truth_quantified(&self, program: &TypedProgram, acl: CheckId) -> Option<bool> {
        let (kind, nth) = self.annotation_key(program, acl)?;
        self.truths.iter().find(|t| t.kind == kind && t.nth == nth).map(|t| t.quantified)
    }
}

/// The whole corpus, in Table V namespace order.
pub fn all_subjects() -> Vec<SubjectMethod> {
    let mut out = Vec::new();
    out.extend(algorithmia_sorting::methods());
    out.extend(algorithmia_gds::methods());
    out.extend(dsa_algorithm::methods());
    out.extend(codecontracts_examples::methods());
    out.extend(codecontracts_preinf::methods());
    out.extend(codecontracts_array::methods());
    out.extend(svcomp::methods());
    out.extend(interproc::methods());
    out
}

/// The namespaces in Table V row order, plus the reproduction's
/// multi-function extension namespace.
pub const NAMESPACES: [&str; 8] = [
    "Algorithmia.Sorting",
    "Algorithmia.GeneralDataStr",
    "DSA.Algorithm",
    "CodeContracts.ExamplesPuri",
    "CodeContracts.PreInference",
    "CodeContracts.ArrayPurityI",
    "SVComp.SVCompCSharp",
    "Interproc.Summaries",
];

/// The subjects in Table III row order, plus the multi-function extension.
pub const SUBJECTS: [&str; 5] = ["Algorithmia", "CodeContracts", "DSA", "SVComp", "Interproc"];

/// Per-subject corpus characteristics for Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectStats {
    pub subject: &'static str,
    pub namespaces: usize,
    pub methods: usize,
    pub lines: usize,
    pub files: usize,
}

/// Computes Table III's characteristics from the corpus. "Files" counts
/// subject methods (each is one translation unit); "methods" counts `fn`
/// definitions including helpers.
pub fn corpus_stats() -> Vec<SubjectStats> {
    let subjects = all_subjects();
    SUBJECTS
        .iter()
        .map(|&subject| {
            let methods: Vec<&SubjectMethod> =
                subjects.iter().filter(|m| m.subject == subject).collect();
            let mut namespaces: Vec<&str> = methods.iter().map(|m| m.namespace).collect();
            namespaces.sort_unstable();
            namespaces.dedup();
            let lines = methods.iter().map(|m| m.source.lines().count()).sum();
            let fn_count = methods.iter().map(|m| m.source.matches("fn ").count()).sum();
            SubjectStats {
                subject,
                namespaces: namespaces.len(),
                methods: fn_count,
                lines,
                files: methods.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every corpus source compiles, every ground truth parses, and every
    /// annotated (kind, nth) pair resolves to a static check site.
    #[test]
    fn corpus_is_well_formed() {
        let subjects = all_subjects();
        assert!(!subjects.is_empty());
        for m in &subjects {
            let tp = m.compile();
            let sites = m.ordered_sites(&tp);
            for t in &m.truths {
                let of_kind: Vec<_> = sites.iter().filter(|s| s.id.kind == t.kind).collect();
                assert!(
                    t.nth < of_kind.len(),
                    "{}::{}: annotation ({}, #{}) has no matching site (only {} of that kind)",
                    m.namespace,
                    m.name,
                    t.kind,
                    t.nth,
                    of_kind.len()
                );
                let acl = of_kind[t.nth].id;
                let alpha = m.truth_alpha(&tp, acl).expect("resolves");
                assert_eq!(
                    alpha.is_quantified(),
                    t.quantified,
                    "{}::{}: quantified flag disagrees with α* for ({}, #{})",
                    m.namespace,
                    m.name,
                    t.kind,
                    t.nth
                );
            }
        }
    }

    #[test]
    fn namespaces_cover_table_v() {
        let subjects = all_subjects();
        for ns in NAMESPACES {
            assert!(subjects.iter().any(|m| m.namespace == ns), "namespace {ns} has no methods");
        }
    }

    #[test]
    fn stats_are_nonempty_for_all_subjects() {
        for s in corpus_stats() {
            assert!(s.methods > 0, "{}", s.subject);
            assert!(s.lines > 0);
            assert!(s.namespaces > 0);
        }
    }

    #[test]
    fn entry_functions_exist_and_have_checkable_sites() {
        for m in all_subjects() {
            let tp = m.compile();
            // Multi-function subjects may keep every check inside helpers,
            // so the requirement is program-wide reachability of at least
            // one site, not a site in the entry function itself.
            assert!(
                !m.ordered_sites(&tp).is_empty(),
                "{}::{} has no check sites at all",
                m.namespace,
                m.name
            );
        }
    }
}
