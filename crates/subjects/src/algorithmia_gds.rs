//! `Algorithmia.GeneralDataStr` — array-backed stack / queue / ring-buffer
//! operations from the Algorithmia project's general data-structures
//! namespace.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "Algorithmia.GeneralDataStr";
const SUBJ: &str = "Algorithmia";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "stack_pop",
            source: "
fn stack_pop(stack [int], top int) -> int {
    return stack[top - 1];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "stack == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "stack != null && (top < 1 || top - 1 >= len(stack))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "queue_front",
            source: "
fn queue_front(q [int], head int, count int) -> int {
    assert(count > 0);
    return q[head];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "count <= 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "count > 0 && q == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "count > 0 && q != null && (head < 0 || head >= len(q))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "ring_get",
            source: "
fn ring_get(buf [int], idx int) -> int {
    // fixed capacity-8 ring buffer
    return buf[idx % 8];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "buf == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    // Truncated % keeps the dividend's sign: negative idx
                    // (except multiples of 8) underflows, short buffers
                    // overflow.
                    alpha: "buf != null && (idx % 8 < 0 || idx % 8 >= len(buf))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "append",
            source: "
fn append(a [int], used int, v int) {
    a[used] = v;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && (used < 0 || used >= len(a))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "first_len",
            source: "
fn first_len(items [str]) -> int {
    return strlen(items[0]);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "items == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "items != null && len(items) == 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 1,
                    alpha: "items != null && len(items) >= 1 && items[0] == null",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "total_key_length",
            source: "
fn total_key_length(keys [str]) -> int {
    let total = 0;
    for (let i = 0; i < len(keys); i = i + 1) {
        total = total + strlen(keys[i]);
    }
    return total;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "keys == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 2,
                    alpha: "keys != null && exists i. i < len(keys) && keys[i] == null",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "pop_many",
            source: "
fn pop_many(stack [int], top int, k int) -> int {
    let s = 0;
    for (let j = 1; j <= k; j = j + 1) {
        s = s + stack[top - j];
    }
    return s;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "k >= 1 && stack == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    // Indices top-1, top-2, …, top-k are consecutive, so the
                    // run fails iff the range [top-k, top-1] leaves bounds.
                    alpha: "k >= 1 && stack != null && (top - 1 >= len(stack) || top - k < 0)",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "deque_back",
            source: "
fn deque_back(q [int], head int, count int) -> int {
    assert(count > 0);
    return q[head + count - 1];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "count <= 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "count > 0 && q == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "count > 0 && q != null \
                            && (head + count - 1 < 0 || head + count - 1 >= len(q))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "hash_bucket",
            source: "
fn hash_bucket(keys [str], h int) -> str {
    return keys[h % 16];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "keys == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "keys != null && (h % 16 < 0 || h % 16 >= len(keys))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "resize_copy",
            source: "
fn resize_copy(a [int], n int) -> [int] {
    let out = new_int_array(n);
    let limit = len(a);
    if (n < limit) { limit = n; }
    for (let i = 0; i < limit; i = i + 1) {
        out[i] = a[i];
    }
    return out;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NegativeSize,
                    nth: 0,
                    alpha: "n < 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "n >= 0 && a == null",
                    quantified: false,
                },
            ],
        },
    ]
}
