//! `SVComp.SVCompCSharp` — patterns from the SV-COMP `array-examples`,
//! `loop-acceleration`, and `array-industry-pattern` suites (the C
//! benchmarks the paper translated to C#): per-element assertions, strided
//! loops, search-then-use idioms, and loop-acceleration arithmetic.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "SVComp.SVCompCSharp";
const SUBJ: &str = "SVComp";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "all_equal_42",
            // array-examples/standard_allEqual-style: asserts every element.
            source: "
fn all_equal_42(a [int]) {
    for (let i = 0; i < len(a); i = i + 1) {
        assert(a[i] == 42);
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "a != null && exists i. i < len(a) && a[i] != 42",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "paired_zero",
            // standard_two_index-style: the violated property ranges over
            // two arrays at once — outside the single-collection template
            // language (a Table VI case PreInfer does not handle).
            source: "
fn paired_zero(a [int], b [int]) {
    if (a == null || b == null) { return; }
    if (len(a) != len(b)) { return; }
    for (let i = 0; i < len(a); i = i + 1) {
        assert(a[i] + b[i] != 0);
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "a != null && b != null && len(a) == len(b) \
                        && exists i. i < len(a) && a[i] + b[i] == 0",
                quantified: true,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "even_positions_zero",
            // loop-acceleration stride-2 pattern: the existential family
            // skips odd indices, outside the shipped Existential template.
            source: "
fn even_positions_zero(a [int]) {
    let i = 0;
    while (i < len(a)) {
        assert(a[i] == 0);
        i = i + 2;
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "a != null && exists i. (i < len(a) && i % 2 == 0 && a[i] != 0)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "find_first_zero_div",
            // search-then-use: the scan exhausts iff no zero exists.
            source: "
fn find_first_zero_div(a [int], x int) -> int {
    let i = 0;
    while (i < len(a) && a[i] != 0) {
        i = i + 1;
    }
    return x / (i - len(a));
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    alpha: "a != null && (forall i. (0 <= i && i < len(a)) ==> a[i] != 0)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "stride_gate",
            // loop-acceleration arithmetic: i advances by 3; the assert
            // holds iff n is a non-positive or exact multiple. Every path
            // pins a concrete iteration count, so neither finite disjunction
            // generalizes — hard for all approaches.
            source: "
fn stride_gate(n int) {
    let i = 0;
    while (i < n) {
        i = i + 3;
    }
    assert(i == n || n <= 0);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "n > 0 && n % 3 != 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "min_is_first",
            // array-industry-pattern: the violated property compares
            // elements against a[0], an offset family starting at index 1.
            source: "
fn min_is_first(a [int]) {
    if (a == null) { return; }
    if (len(a) == 0) { return; }
    let m = a[0];
    for (let i = 1; i < len(a); i = i + 1) {
        assert(a[i] >= m);
    }
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "a != null && len(a) >= 1 \
                        && exists i. (1 <= i && i < len(a) && a[i] < a[0])",
                quantified: true,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "bounded_sum_gate",
            source: "
fn bounded_sum_gate(k int) -> int {
    // loop-acceleration: sum of 1..k, then a gate on the closed form
    let s = 0;
    let i = 1;
    while (i <= k) {
        s = s + i;
        i = i + 1;
    }
    assert(s != 10);
    return s;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                // 1+2+3+4 == 10: only k == 4 trips the gate.
                alpha: "k == 4",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "first_half_zero",
            // The quantified domain is len/2, outside the shipped templates'
            // `i < len(a)` bound — another Table VI case PreInfer misses.
            source: "
fn first_half_zero(a [int]) {
    for (let i = 0; i < len(a) / 2; i = i + 1) {
        assert(a[i] == 0);
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "a != null && exists i. (i < len(a) / 2 && a[i] != 0)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "two_phase_parity",
            source: "
fn two_phase_parity(n int) {
    let j = n;
    while (j > 0) {
        j = j - 2;
    }
    assert(j == 0);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "(n > 0 && n % 2 != 0) || n < 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "nonempty_required",
            source: "
fn nonempty_required(a [int]) -> int {
    assert(len(a) > 0);
    return a[0];
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "a != null && len(a) == 0",
                    quantified: false,
                },
            ],
        },
    ]
}
