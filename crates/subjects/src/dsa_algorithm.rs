//! `DSA.Algorithm` — methods ported from the Data Structures and Algorithms
//! (DSA) project, including the paper's Figure 2 case study
//! (`reverse_words`).

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "DSA.Algorithm";
const SUBJ: &str = "DSA";

/// The Figure 2 case study on its own (used by the `reverse_words` example).
pub fn reverse_words() -> SubjectMethod {
    SubjectMethod {
        namespace: NS,
        subject: SUBJ,
        name: "reverse_words",
        // A faithful port of DSA's ReverseWords (paper Fig. 2): the
        // StringBuilder is an int-array buffer; the method returns the
        // output length. The paper's Line-23 IndexOutOfRangeException is the
        // `sb[sb_len - 1]` read on an empty buffer — which happens exactly
        // when every character of `value` is whitespace (or the string is
        // empty).
        source: "
fn reverse_words(value str) -> int {
    let n = strlen(value);
    let sb = new_int_array(n + 1);
    let sb_len = 0;
    let last = n - 1;
    let start = last;
    while (last >= 0) {
        while (start >= 0 && is_space(char_at(value, start))) {
            start = start - 1;
        }
        last = start;
        while (start >= 0 && !is_space(char_at(value, start))) {
            start = start - 1;
        }
        for (let i = start + 1; i < last + 1; i = i + 1) {
            sb[sb_len] = char_at(value, i);
            sb_len = sb_len + 1;
        }
        if (start > 0) {
            sb[sb_len] = 32;
            sb_len = sb_len + 1;
        }
        last = start - 1;
        start = last;
    }
    let last_char = sb[sb_len - 1];
    if (is_space(last_char)) { sb_len = sb_len - 1; }
    return sb_len;
}",
        truths: vec![
            GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "value == null",
                quantified: false,
            },
            GroundTruth {
                // sb[sb_len - 1] — the 6th IndexOutOfRange site: two char_at
                // reads in the word scans (#0, #1), the copy-loop char_at
                // (#2), two sb writes (#3, #4), then this read (#5).
                kind: CheckKind::IndexOutOfRange,
                nth: 5,
                alpha: "value != null \
                        && (forall i. (0 <= i && i < strlen(value)) ==> is_space(char_at(value, i)))",
                quantified: true,
            },
        ],
    }
}

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        reverse_words(),
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "binary_search",
            source: "
fn binary_search(a [int], key int) -> int {
    let lo = 0;
    let hi = len(a) - 1;
    while (lo <= hi) {
        let mid = lo + (hi - lo) / 2;
        if (a[mid] == key) { return mid; }
        if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
    }
    return -1;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "a == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "max_element",
            source: "
fn max_element(a [int]) -> int {
    let m = a[0];
    for (let i = 1; i < len(a); i = i + 1) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "a != null && len(a) == 0",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "char_at_checked",
            source: "
fn char_at_checked(s str, i int) -> int {
    return char_at(s, i);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "s == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::IndexOutOfRange,
                    nth: 0,
                    alpha: "s != null && (i < 0 || i >= strlen(s))",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "leading_space_gate",
            source: "
fn leading_space_gate(s str) -> int {
    // skip leading whitespace, then divide by the remaining length
    let i = 0;
    while (i < strlen(s) && is_space(char_at(s, i))) {
        i = i + 1;
    }
    return 100 / (strlen(s) - i);
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "s == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    // the scan consumes the whole string iff every character
                    // is whitespace (vacuously: the empty string)
                    alpha: "s != null \
                            && (forall i. (0 <= i && i < strlen(s)) ==> is_space(char_at(s, i)))",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "average_positive",
            // The divisor is a data-dependent count — the target
            // precondition (at least one positive element) is quantified but
            // the path conditions tie it to the count arithmetic; annotated
            // with the quantified ground truth to score the approaches.
            source: "
fn average_positive(a [int]) -> int {
    let sum = 0;
    let count = 0;
    for (let i = 0; i < len(a); i = i + 1) {
        if (a[i] > 0) {
            sum = sum + a[i];
            count = count + 1;
        }
    }
    return sum / count;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "a == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    alpha: "a != null && (forall i. (0 <= i && i < len(a)) ==> a[i] <= 0)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "word_count",
            source: "
fn word_count(s str) -> int {
    let words = 0;
    let in_word = 0;
    for (let i = 0; i < strlen(s); i = i + 1) {
        if (is_space(char_at(s, i))) {
            in_word = 0;
        } else {
            if (in_word == 0) { words = words + 1; }
            in_word = 1;
        }
    }
    return words;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "s == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "power_of_two_gate",
            source: "
fn power_of_two_gate(k int) -> int {
    let p = 1;
    let i = 0;
    while (i < k) {
        p = p * 2;
        i = i + 1;
    }
    return 100 / (p - 8);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                // 2^3 == 8: exactly k == 3 trips the gate.
                alpha: "k == 3",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "last_index_of_char",
            source: "
fn last_index_of_char(s str, c int) -> int {
    let i = strlen(s) - 1;
    while (i >= 0) {
        if (char_at(s, i) == c) { return i; }
        i = i - 1;
    }
    return 1 / 0;
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::NullDeref,
                    nth: 0,
                    alpha: "s == null",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::DivByZero,
                    nth: 0,
                    alpha: "s != null \
                            && (forall i. (0 <= i && i < strlen(s)) ==> char_at(s, i) != c)",
                    quantified: true,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "sum_char_codes",
            source: "
fn sum_char_codes(s str) -> int {
    let total = 0;
    for (let i = 0; i < strlen(s); i = i + 1) {
        total = total + char_at(s, i);
    }
    return total;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "s == null",
                quantified: false,
            }],
        },
    ]
}
