//! `CodeContracts.ExamplesPuri` — small scalar examples in the style of the
//! cccheck regression tests' purity examples: arithmetic guards, division
//! gates, simple asserted contracts.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "CodeContracts.ExamplesPuri";
const SUBJ: &str = "CodeContracts";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "safe_div",
            source: "
fn safe_div(x int, y int) -> int {
    return x / y;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "y == 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "guarded_div",
            source: "
fn guarded_div(x int, y int) -> int {
    if (x > 10) {
        return x / y;
    }
    return 0;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                // FixIt's last-branch-only precondition misses the guard.
                alpha: "x > 10 && y == 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "countdown",
            source: "
fn countdown(n int) {
    while (n > 0) {
        n = n - 1;
    }
    assert(n == 0);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "n < 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "midpoint",
            source: "
fn midpoint(lo int, hi int) -> int {
    assert(lo <= hi);
    return lo + (hi - lo) / 2;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "lo > hi",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "clamp",
            source: "
fn clamp(x int, lo int, hi int) -> int {
    assert(lo <= hi);
    if (x < lo) { return lo; }
    if (x > hi) { return hi; }
    return x;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "lo > hi",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "years_since",
            source: "
fn years_since(y int) -> int {
    return 36500 / (y - 2000);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "y == 2000",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "abs_gate",
            source: "
fn abs_gate(x int, y int) -> int {
    // fails when |x| equals y
    return 100 / (abs(x) - y);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "(x >= 0 && x == y) || (x < 0 && 0 - x == y)",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "weekday_gate",
            source: "
fn weekday_gate(d int) -> int {
    assert(d >= 0 && d < 7);
    return d + 1;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "d < 0 || d >= 7",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "percent",
            source: "
fn percent(x int, total int) -> int {
    return x * 100 / total;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "total == 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "interval_width",
            source: "
fn interval_width(lo int, hi int) -> int {
    assert(hi - lo >= 0);
    return hi - lo;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "hi < lo",
                quantified: false,
            }],
        },
    ]
}
