//! `CodeContracts.PreInference` — cccheck regression tests that stress the
//! precondition-inference machinery directly: layered guards, expression
//! preservation across mutations, disjunctive contracts, and the
//! no-passing-tests corner.

use crate::{GroundTruth, SubjectMethod};
use minilang::CheckKind;

const NS: &str = "CodeContracts.PreInference";
const SUBJ: &str = "CodeContracts";

/// The namespace's methods.
pub fn methods() -> Vec<SubjectMethod> {
    vec![
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "requires_positive",
            source: "
fn requires_positive(x int) -> int {
    assert(x > 0);
    return x;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "x <= 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "requires_nonnull",
            source: "
fn requires_nonnull(s str) -> int {
    return strlen(s);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "s == null",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "requires_range",
            source: "
fn requires_range(i int, n int) -> int {
    if (n >= 0) {
        assert(i >= 0 && i < n);
        return i;
    }
    return 0;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "n >= 0 && (i < 0 || i >= n)",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "requires_sum",
            source: "
fn requires_sum(x int, y int) -> int {
    assert(x + y != 10);
    return x + y;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "x + y == 10",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "disjunctive_guard",
            source: "
fn disjunctive_guard(a int, b int) -> int {
    if (a > 0) {
        assert(b > 0);
        return a + b;
    } else {
        assert(b < 0);
        return a - b;
    }
}",
            truths: vec![
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 0,
                    alpha: "a > 0 && b <= 0",
                    quantified: false,
                },
                GroundTruth {
                    kind: CheckKind::AssertFail,
                    nth: 1,
                    alpha: "a <= 0 && b >= 0",
                    quantified: false,
                },
            ],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "incr_gate",
            // Expression preservation: the reachability of the division
            // depends on `d` *after* the conditional increment (the paper's
            // c / d+1 pattern from Figure 1, isolated).
            source: "
fn incr_gate(c int, d int) -> int {
    if (c > 0) { d = d + 1; }
    if (d > 0) {
        return 1 / (c + 5);
    }
    return 0;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                // c == -5 implies the increment did not happen.
                alpha: "c == -5 && d > 0",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "always_fails",
            // Every input fails: no passing paths exist, the corner the
            // paper notes PreInfer handles poorly while DySy still answers.
            source: "
fn always_fails(x int) -> int {
    let zero = x - x;
    return 1 / zero;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::DivByZero,
                nth: 0,
                alpha: "true",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "modulo_requires",
            source: "
fn modulo_requires(k int) -> int {
    assert(k % 3 == 1);
    return k / 3;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "k % 3 != 1",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "nested_guards",
            source: "
fn nested_guards(x int, y int, z int) -> int {
    if (x > 0) {
        if (y > x) {
            assert(z != y);
            return z;
        }
    }
    return 0;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "x > 0 && y > x && z == y",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "loop_then_requires",
            source: "
fn loop_then_requires(n int) -> int {
    let i = 0;
    while (i < n) {
        i = i + 1;
    }
    assert(n <= 5);
    return i;
}",
            truths: vec![GroundTruth {
                kind: CheckKind::AssertFail,
                nth: 0,
                alpha: "n > 5",
                quantified: false,
            }],
        },
        SubjectMethod {
            namespace: NS,
            subject: SUBJ,
            name: "either_null_gate",
            source: "
fn either_null_gate(s str, t str) -> int {
    if (s == null) {
        return strlen(t);
    }
    return strlen(s);
}",
            truths: vec![GroundTruth {
                kind: CheckKind::NullDeref,
                nth: 0,
                alpha: "s == null && t == null",
                quantified: false,
            }],
        },
    ]
}
