//! Interprocedural call-site summaries: callee ψ applied at `Call` sites
//! instead of unrolling the callee body into the caller's path condition.
//!
//! A *check summary* for a callee check `k` is the callee's inferred
//! precondition ψ_k for that check, stored over the canonical positional
//! parameter names `%0, %1, …`. When the executor reaches a call with
//! summaries available it still *executes* the callee concretely (the
//! outcome and the return value must be exact), but records, per check the
//! callee traversed, the short-circuit decomposition of `ψ_k(actuals)` on
//! the passing side — or of `¬ψ_k(actuals)` as the failing-branch
//! predicate — in place of the callee's internal branch atoms. Callee
//! path-space thus collapses to one entry group per traversed check.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use symbolic::Formula;

/// How the executor treats user `Call` expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterprocMode {
    /// Unroll the callee body into the caller's path condition (the
    /// original behaviour).
    #[default]
    Inline,
    /// Apply stored callee ψ-summaries at call sites, falling back to
    /// inlining per call (recursion, originless reference actuals, missing
    /// or disagreeing summaries).
    Summary,
}

impl InterprocMode {
    /// Stable lowercase label (flag value, stats, bench axis).
    pub fn label(self) -> &'static str {
        match self {
            InterprocMode::Inline => "inline",
            InterprocMode::Summary => "summary",
        }
    }
}

impl FromStr for InterprocMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inline" => Ok(InterprocMode::Inline),
            "summary" => Ok(InterprocMode::Summary),
            other => Err(format!("unknown interproc mode `{other}` (inline|summary)")),
        }
    }
}

impl fmt::Display for InterprocMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters for summary application, shared between the executor and
/// whoever serves stats (CLI footer, daemon `summaries` block).
#[derive(Debug, Default)]
pub struct SummaryApplyStats {
    applies: AtomicU64,
    fallbacks: AtomicU64,
}

impl SummaryApplyStats {
    /// Records one check summarized at a call site.
    pub fn apply(&self) {
        self.applies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-check or per-call fallback to inline recording.
    pub fn fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Checks summarized at call sites so far.
    pub fn applies(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }

    /// Fallbacks to inline recording so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }
}

/// Summaries resolved against one concrete program: for each callee
/// function name, the ψ per check site (keyed by the check's id *in this
/// program*), in the canonical `%i` parameter naming.
#[derive(Debug, Default)]
pub struct ResolvedSummaries {
    /// Per-callee check summaries.
    pub by_func: HashMap<String, HashMap<minilang::CheckId, Formula>>,
    /// Shared application counters.
    pub stats: Arc<SummaryApplyStats>,
}

impl ResolvedSummaries {
    /// Whether any callee has a usable summary.
    pub fn is_empty(&self) -> bool {
        self.by_func.values().all(|m| m.is_empty())
    }

    /// Total check summaries across callees.
    pub fn check_count(&self) -> usize {
        self.by_func.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_labels() {
        assert_eq!("inline".parse::<InterprocMode>().unwrap(), InterprocMode::Inline);
        assert_eq!("summary".parse::<InterprocMode>().unwrap(), InterprocMode::Summary);
        assert!("both".parse::<InterprocMode>().is_err());
        assert_eq!(InterprocMode::Summary.label(), "summary");
        assert_eq!(InterprocMode::default(), InterprocMode::Inline);
    }

    #[test]
    fn stats_count() {
        let s = SummaryApplyStats::default();
        s.apply();
        s.apply();
        s.fallback();
        assert_eq!((s.applies(), s.fallbacks()), (2, 1));
    }
}
