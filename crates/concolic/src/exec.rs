//! The concolic executor: concrete execution with a symbolic shadow,
//! producing *sound path conditions* (Section III of the paper).
//!
//! Every decision that depends on the inputs appends a predicate in its
//! taken form: explicit branch atoms (`if`/`while`/`assert` conditions are
//! decomposed through `&&`/`||`/`!` exactly as short-circuit evaluation
//! branches), implicit checks (null, bounds, division, allocation size), and
//! concretization *pins* (when a value leaves the linear fragment — a
//! symbolic×symbolic product, a symbolic divisor, a symbolic array index —
//! the executor pins the offending operand to its concrete value, the
//! standard DART/Pex concretization, recorded so the path condition stays
//! sound).

use crate::cval::{materialize, ArrIntObj, ArrStrObj, CStr, CVal};
use crate::summary::ResolvedSummaries;
use minilang::ast::*;
use minilang::{CheckId, CheckKind, InputValue, MethodEntryState, NodeId, Span, TypedProgram};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use symbolic::rename::{apply_actuals, ActualBinding};
use symbolic::{
    eval_pred, CmpOp, EntryKind, Env, EvalError, Formula, PathCondition, PathEntry, PathOutcome,
    Place, Pred, Term,
};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ConcolicConfig {
    /// Maximum number of statements executed before `OutOfFuel`.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
    /// Maximum number of path-condition entries (guards pathological loops).
    pub max_entries: usize,
    /// Callee ψ-summaries to apply at call sites (`None` = inline every
    /// call, the original behaviour).
    pub summaries: Option<Arc<ResolvedSummaries>>,
    /// Trace sink for `summary_apply` events.
    pub trace: Option<Arc<obs::TraceSink>>,
}

impl Default for ConcolicConfig {
    fn default() -> Self {
        ConcolicConfig {
            fuel: 100_000,
            max_call_depth: 64,
            max_entries: 4_096,
            summaries: None,
            trace: None,
        }
    }
}

/// Result of a concolic run.
#[derive(Debug, Clone)]
pub struct ConcolicOutcome {
    /// The collected path condition; its `outcome` field describes how the
    /// run ended (completed / failed at a check / out of fuel).
    pub path: PathCondition,
    /// Blocks visited (for Table IV coverage).
    pub visited_blocks: HashSet<NodeId>,
}

impl ConcolicOutcome {
    /// The violated check, if the run failed.
    pub fn failed_check(&self) -> Option<CheckId> {
        self.path.outcome.failed_check()
    }
}

/// Runs `func_name` concolically on `state`.
///
/// # Panics
///
/// Panics if the function is unknown or the state does not conform to its
/// signature.
pub fn run_concolic(
    program: &TypedProgram,
    func_name: &str,
    state: &MethodEntryState,
    config: &ConcolicConfig,
) -> ConcolicOutcome {
    let func = program.func(func_name).unwrap_or_else(|| panic!("unknown function {func_name}"));
    assert!(state.conforms_to(func), "state {state} does not conform to {func_name}");
    let mut m =
        Exec { program, config, fuel: config.fuel, entries: Vec::new(), visited: HashSet::new() };
    let mut env: HashMap<String, CVal> = HashMap::new();
    for p in &func.params {
        let place = Place::param(p.name.clone());
        env.insert(p.name.clone(), materialize(state.get(&p.name).expect("conforming"), place));
    }
    let outcome = match m.exec_block(&func.body, &mut Frame { env, depth: 0 }) {
        Ok(_) => PathOutcome::Completed,
        Err(Stop::Check(id)) => PathOutcome::Failed(id),
        Err(Stop::Fuel) => PathOutcome::OutOfFuel,
        Err(Stop::CallDepth) => PathOutcome::CallDepthExceeded,
    };
    ConcolicOutcome {
        path: PathCondition { entries: m.entries, outcome },
        visited_blocks: m.visited,
    }
}

enum Flow {
    Normal,
    Return(CVal),
    Break,
    Continue,
}

enum Stop {
    /// A violated check; the violating predicate is the last recorded entry.
    Check(CheckId),
    /// Step budget exhausted (runaway loop).
    Fuel,
    /// Call-depth bound exceeded (runaway recursion).
    CallDepth,
}

type R<T> = Result<T, Stop>;

struct Frame {
    env: HashMap<String, CVal>,
    depth: u32,
}

struct Exec<'a> {
    program: &'a TypedProgram,
    config: &'a ConcolicConfig,
    fuel: u64,
    entries: Vec<PathEntry>,
    visited: HashSet<NodeId>,
}

impl<'a> Exec<'a> {
    fn tick(&mut self) -> R<()> {
        if self.fuel == 0 || self.entries.len() > self.config.max_entries {
            return Err(Stop::Fuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    // ---- path-condition recording ------------------------------------------

    /// Records an explicit branch decision; constant predicates carry no
    /// information about the inputs and are dropped.
    fn record_branch(&mut self, pred: Pred, site: NodeId, span: Span) {
        if pred.is_trivially_true() || pred.is_trivially_false() {
            return;
        }
        self.entries.push(PathEntry { pred, kind: EntryKind::ExplicitBranch, site, span });
    }

    /// Records a passed check. Check entries are always kept (they witness
    /// that the path traverses the assertion-containing location).
    fn record_check_pass(&mut self, pred: Pred, check: CheckId, site: NodeId, span: Span) {
        self.entries.push(PathEntry { pred, kind: EntryKind::Check(check), site, span });
    }

    /// Records a violated check and aborts.
    fn record_check_fail(&mut self, pred: Pred, check: CheckId, site: NodeId, span: Span) -> Stop {
        self.entries.push(PathEntry { pred, kind: EntryKind::Check(check), site, span });
        Stop::Check(check)
    }

    /// Records a concretization pin (`term == concrete`).
    fn pin(&mut self, term: &Term, concrete: i64, site: NodeId, span: Span) {
        if term.as_const().is_some() {
            return;
        }
        let pred = Pred::cmp(CmpOp::Eq, *term, Term::int(concrete));
        self.entries.push(PathEntry { pred, kind: EntryKind::Pin, site, span });
    }

    // ---- statements ----------------------------------------------------------

    fn exec_block(&mut self, b: &Block, frame: &mut Frame) -> R<Flow> {
        self.visited.insert(b.id);
        // Block scoping: `let`s declared here disappear afterwards, and a
        // shadowed outer binding is restored (mutations of outer variables
        // persist).
        let mut declared: Vec<(String, Option<CVal>)> = Vec::new();
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s, frame, &mut declared)? {
                Flow::Normal => {}
                other => {
                    flow = other;
                    break;
                }
            }
        }
        for (name, prev) in declared.into_iter().rev() {
            match prev {
                Some(v) => {
                    frame.env.insert(name, v);
                }
                None => {
                    frame.env.remove(&name);
                }
            }
        }
        Ok(flow)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        frame: &mut Frame,
        declared: &mut Vec<(String, Option<CVal>)>,
    ) -> R<Flow> {
        self.tick()?;
        match &s.kind {
            StmtKind::Let { name, init, .. } => {
                let v = self.eval(init, frame)?;
                let prev = frame.env.insert(name.clone(), v);
                declared.push((name.clone(), prev));
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                match target {
                    AssignTarget::Var(name) => {
                        let v = self.eval(value, frame)?;
                        frame.env.insert(name.clone(), v);
                    }
                    AssignTarget::Index { array, index } => {
                        let arr = self.eval(array, frame)?;
                        let idx = self.eval(index, frame)?;
                        let v = self.eval(value, frame)?;
                        self.store_elem(s.id, s.span, &arr, idx, v)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_blk, else_blk } => {
                let c = self.eval_condition(cond, frame)?;
                if c {
                    self.exec_block(then_blk, frame)
                } else if let Some(e) = else_blk {
                    self.exec_block(e, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => loop {
                self.tick()?;
                if !self.eval_condition(cond, frame)? {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body, frame)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
            },
            StmtKind::Assert { cond } => {
                let check = CheckId { node: s.id, kind: CheckKind::AssertFail };
                let mark = self.entries.len();
                let c = self.eval_condition(cond, frame)?;
                // The assert's decision is the last branch entry its
                // condition produced; retag it as the check so failing paths
                // end in the assertion-violating condition.
                self.retag_assert(mark, check, c, s.span);
                if c {
                    Ok(Flow::Normal)
                } else {
                    Err(Stop::Check(check))
                }
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => self.eval(e, frame)?,
                    None => CVal::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr { expr } => {
                self.eval(expr, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::BlockStmt { block } => self.exec_block(block, frame),
        }
    }

    fn retag_assert(&mut self, mark: usize, check: CheckId, result: bool, span: Span) {
        let retagged =
            self.entries.len().checked_sub(1).filter(|&last| {
                last >= mark && self.entries[last].kind == EntryKind::ExplicitBranch
            });
        match retagged {
            Some(last) => self.entries[last].kind = EntryKind::Check(check),
            None => {
                // Condition produced no branch entry (constant or pinned):
                // record a constant witness of traversing the location.
                self.entries.push(PathEntry {
                    pred: Pred::Const(result),
                    kind: EntryKind::Check(check),
                    site: check.node,
                    span,
                });
            }
        }
    }

    // ---- conditions -----------------------------------------------------------

    /// Evaluates a boolean expression as a branch condition, decomposing
    /// `&&`/`||`/`!` into the atomic decisions short-circuit evaluation
    /// actually takes, recording one predicate per decision.
    fn eval_condition(&mut self, e: &Expr, frame: &mut Frame) -> R<bool> {
        match &e.kind {
            ExprKind::BoolLit(b) => Ok(*b),
            ExprKind::Unary(UnOp::Not, inner) => Ok(!self.eval_condition(inner, frame)?),
            ExprKind::Binary(BinOp::And, l, r) => {
                if !self.eval_condition(l, frame)? {
                    Ok(false)
                } else {
                    self.eval_condition(r, frame)
                }
            }
            ExprKind::Binary(BinOp::Or, l, r) => {
                if self.eval_condition(l, frame)? {
                    Ok(true)
                } else {
                    self.eval_condition(r, frame)
                }
            }
            ExprKind::Binary(op, l, r)
                if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) =>
            {
                let (lc, lt) = self.eval(l, frame)?.as_int();
                let (rc, rt) = self.eval(r, frame)?.as_int();
                let cmp = match op {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let taken = cmp.eval(lc, rc);
                let pred = Pred::cmp(cmp, lt, rt);
                let pred = if taken { pred } else { pred.negated() };
                self.record_branch(pred, e.id, e.span);
                Ok(taken)
            }
            ExprKind::Binary(op @ (BinOp::Eq | BinOp::Ne), l, r) => {
                self.eval_equality(e, *op, l, r, frame)
            }
            ExprKind::BuiltinCall { builtin: Builtin::IsSpace, args } => {
                let (c, t) = self.eval(&args[0], frame)?.as_int();
                let result = matches!(c, 32 | 9 | 10 | 13);
                if t.as_const().is_none() {
                    self.record_branch(Pred::IsSpace { arg: t, positive: result }, e.id, e.span);
                }
                Ok(result)
            }
            ExprKind::Var(_) | ExprKind::Call { .. } | ExprKind::Index(..) => {
                let v = self.eval(e, frame)?;
                let CVal::Bool(c, origin) = v else { panic!("typechecked bool condition") };
                if let Some(name) = origin {
                    self.record_branch(Pred::BoolVar { name, positive: c }, e.id, e.span);
                }
                Ok(c)
            }
            other => panic!("non-boolean condition {other:?} (typechecked)"),
        }
    }

    fn eval_equality(
        &mut self,
        e: &Expr,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        frame: &mut Frame,
    ) -> R<bool> {
        let want_eq = op == BinOp::Eq;
        let lv = self.eval(l, frame)?;
        let rv = self.eval(r, frame)?;
        match (&lv, &rv) {
            (CVal::Int(lc, lt), CVal::Int(rc, rt)) => {
                let eq = lc == rc;
                let taken = eq == want_eq;
                let cmp = if eq { CmpOp::Eq } else { CmpOp::Ne };
                self.record_branch(Pred::cmp(cmp, *lt, *rt), e.id, e.span);
                Ok(taken)
            }
            (CVal::Bool(lb, _), CVal::Bool(rb, _)) => {
                // Boolean equality: operands were already pinned/recorded by
                // their own evaluation; the comparison itself adds nothing.
                Ok((lb == rb) == want_eq)
            }
            _ => {
                // Reference vs null (the only reference comparison allowed).
                let (refv, _nullv) =
                    if lv.is_null() && lv.ref_origin().is_none() && rv.ref_origin().is_some() {
                        (&rv, &lv)
                    } else {
                        (&lv, &rv)
                    };
                let is_null = refv.is_null();
                // The other side is the null literal (typechecked), so the
                // comparison result is `is_null`.
                let result = is_null == want_eq;
                if let Some(place) = refv.ref_origin() {
                    self.record_branch(
                        Pred::Null { place: *place, positive: is_null },
                        e.id,
                        e.span,
                    );
                }
                Ok(result)
            }
        }
    }

    // ---- expressions ----------------------------------------------------------

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> R<CVal> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(CVal::Int(*v, Term::int(*v))),
            ExprKind::BoolLit(b) => Ok(CVal::Bool(*b, None)),
            ExprKind::StrLit(s) => {
                Ok(CVal::Str(CStr::literal(s.chars().map(|c| c as i64).collect())))
            }
            ExprKind::Null => Ok(match self.program.ty_of(e.id) {
                Ty::ArrayInt => CVal::ArrInt(None, None),
                Ty::ArrayStr => CVal::ArrStr(None, None),
                _ => CVal::Str(CStr::null()),
            }),
            ExprKind::Var(name) => Ok(frame.env.get(name).expect("typechecked var").clone()),
            ExprKind::Unary(UnOp::Neg, inner) => {
                let (c, t) = self.eval(inner, frame)?.as_int();
                Ok(CVal::Int(c.wrapping_neg(), t.neg()))
            }
            ExprKind::Unary(UnOp::Not, _) | ExprKind::Binary(BinOp::And | BinOp::Or, ..) => {
                let c = self.eval_condition(e, frame)?;
                Ok(CVal::Bool(c, None))
            }
            ExprKind::Binary(op, l, r) if op.is_arith() => self.eval_arith(e, *op, l, r, frame),
            ExprKind::Binary(..) => {
                // Comparisons / equality in value position: decide (recording
                // the decision) and pin the result.
                let c = self.eval_condition(e, frame)?;
                Ok(CVal::Bool(c, None))
            }
            ExprKind::Index(arr, idx) => {
                let a = self.eval(arr, frame)?;
                let i = self.eval(idx, frame)?;
                self.load_elem(e.id, e.span, &a, i)
            }
            ExprKind::BuiltinCall { builtin, args } => self.eval_builtin(e, *builtin, args, frame),
            ExprKind::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.call(e.id, e.span, name, vals, frame.depth)
            }
        }
    }

    fn call(
        &mut self,
        site: NodeId,
        span: Span,
        name: &str,
        args: Vec<CVal>,
        depth: u32,
    ) -> R<CVal> {
        if depth + 1 > self.config.max_call_depth {
            return Err(Stop::CallDepth);
        }
        self.tick()?;
        let callee = self.program.func(name).expect("typechecked call");
        if let Some(res) = self.config.summaries.clone() {
            if let Some(checks) = res.by_func.get(name).filter(|c| !c.is_empty()) {
                match bindings_of(&args) {
                    Some(bindings) => {
                        return self.call_summary(
                            site, span, callee, args, depth, checks, &bindings, &res,
                        );
                    }
                    None => {
                        // An actual without a symbolic origin (literal, fresh
                        // allocation, mutated array): ψ(actuals) cannot be
                        // expressed over the inputs — inline this call.
                        res.stats.fallback();
                    }
                }
            }
        }
        self.call_inline(callee, args, depth)
    }

    fn call_inline(&mut self, callee: &Func, args: Vec<CVal>, depth: u32) -> R<CVal> {
        let mut env = HashMap::new();
        for (p, v) in callee.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        let mut frame = Frame { env, depth: depth + 1 };
        match self.exec_block(&callee.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(CVal::Unit),
        }
    }

    /// Executes the callee with a scratch entry buffer, then replaces its
    /// internal path-condition entries by per-check ψ decompositions over
    /// the call-site actuals. The callee still runs concretely: the return
    /// value, visited blocks, fuel consumption and outcome are exact; only
    /// the recorded predicates change.
    #[allow(clippy::too_many_arguments)]
    fn call_summary(
        &mut self,
        site: NodeId,
        span: Span,
        callee: &Func,
        args: Vec<CVal>,
        depth: u32,
        checks: &HashMap<CheckId, Formula>,
        bindings: &[ActualBinding],
        res: &ResolvedSummaries,
    ) -> R<CVal> {
        let synth = synthetic_state(&args);
        let mut env = HashMap::new();
        for (p, v) in callee.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        let mut frame = Frame { env, depth: depth + 1 };
        let saved = std::mem::take(&mut self.entries);
        let result = self.exec_block(&callee.body, &mut frame);
        let scratch = std::mem::replace(&mut self.entries, saved);

        if matches!(result, Err(Stop::Fuel) | Err(Stop::CallDepth)) {
            // Budget exhaustion: the run is discarded by the partition
            // anyway; keep the raw entries for fidelity and propagate.
            self.entries.extend(scratch);
            return result.map(|_| CVal::Unit);
        }
        let failed = match &result {
            Err(Stop::Check(id)) => Some(*id),
            _ => None,
        };

        // Passing region: every check traversed before the violation (or
        // all of them on a completed call), first traversal only.
        let pass_region = &scratch[..scratch.len() - usize::from(failed.is_some())];
        let mut summarized = 0u64;
        let mut seen: Vec<CheckId> = Vec::new();
        for entry in pass_region {
            let Some(id) = entry.kind.check_id() else { continue };
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            let decomposed = checks.get(&id).is_some_and(|psi| {
                self.record_summary_decomposition(psi, bindings, &synth, id, site, span, true)
            });
            if decomposed {
                summarized += 1;
                res.stats.apply();
            } else {
                res.stats.fallback();
                for e in pass_region.iter().filter(|e| e.kind.check_id() == Some(id)) {
                    self.entries.push(e.clone());
                }
            }
        }

        // Pins keep caller-visible terms (return values flowing out of the
        // callee) inside the linear fragment — copied through *after* the
        // summarized atoms: a pin equates a term with its concrete value
        // (e.g. a division's symbolic divisor), so placing it before the
        // check entry would make every flip of ψ(actuals) infeasible.
        for entry in scratch.iter().filter(|e| e.kind == EntryKind::Pin) {
            self.entries.push(entry.clone());
        }

        // Failing side: the last scratch entry is the violating condition;
        // the path condition must end with ¬ψ's decisive atom (or the raw
        // violating predicate on fallback).
        if let Some(id) = failed {
            let decomposed = checks.get(&id).is_some_and(|psi| {
                self.record_summary_decomposition(psi, bindings, &synth, id, site, span, false)
            });
            if decomposed {
                summarized += 1;
                res.stats.apply();
            } else {
                res.stats.fallback();
                self.entries.push(scratch.last().expect("violating entry").clone());
            }
        }

        if summarized > 0 {
            if let Some(trace) = &self.config.trace {
                trace.event(
                    "summary_apply",
                    &[
                        ("func", obs::Val::S(&callee.name)),
                        ("checks", obs::Val::U(summarized)),
                        ("failed", obs::Val::B(failed.is_some())),
                    ],
                );
            }
        }

        match result {
            Ok(Flow::Return(v)) => Ok(v),
            Ok(_) => Ok(CVal::Unit),
            Err(e) => Err(e),
        }
    }

    /// Records the short-circuit decomposition of `ψ(actuals)` for one
    /// check: walks the stored `%i`-form ψ and its actual-substituted twin
    /// in lockstep, evaluating each atom concretely on the synthetic callee
    /// entry state, and records every informative visited atom in its taken
    /// form — the last one tagged as the check entry. Returns `false`
    /// (recording nothing) when evaluation is undefined, the formula is
    /// quantified, or the concrete verdict disagrees with the observed
    /// pass/fail — the caller then falls back to the raw callee entries.
    #[allow(clippy::too_many_arguments)]
    fn record_summary_decomposition(
        &mut self,
        psi: &Formula,
        bindings: &[ActualBinding],
        synth: &MethodEntryState,
        check: CheckId,
        site: NodeId,
        span: Span,
        expect_pass: bool,
    ) -> bool {
        let subst = apply_actuals(psi, bindings);
        let env = Env::new(synth);
        let mut atoms: Vec<Pred> = Vec::new();
        let verdict = match walk_decomposition(psi, &subst, &env, &mut atoms) {
            Ok(v) => v,
            Err(_) => return false,
        };
        if verdict != expect_pass {
            return false;
        }
        match atoms.len() {
            0 => self.entries.push(PathEntry {
                pred: Pred::Const(verdict),
                kind: EntryKind::Check(check),
                site,
                span,
            }),
            n => {
                for (i, pred) in atoms.into_iter().enumerate() {
                    let kind = if i + 1 == n {
                        EntryKind::Check(check)
                    } else {
                        EntryKind::ExplicitBranch
                    };
                    self.entries.push(PathEntry { pred, kind, site, span });
                }
            }
        }
        true
    }

    fn eval_arith(
        &mut self,
        e: &Expr,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        frame: &mut Frame,
    ) -> R<CVal> {
        let (lc, lt) = self.eval(l, frame)?.as_int();
        let (rc, rt) = self.eval(r, frame)?.as_int();
        match op {
            BinOp::Add => Ok(CVal::Int(lc.wrapping_add(rc), lt.add(rt))),
            BinOp::Sub => Ok(CVal::Int(lc.wrapping_sub(rc), lt.sub(rt))),
            BinOp::Mul => {
                let term = match (lt.as_const(), rt.as_const()) {
                    (Some(k), _) => rt.mul(k),
                    (None, Some(k)) => lt.mul(k),
                    (None, None) => {
                        // Nonlinear: pin the right operand (DART-style).
                        self.pin(&rt, rc, e.id, e.span);
                        lt.mul(rc)
                    }
                };
                Ok(CVal::Int(lc.wrapping_mul(rc), term))
            }
            BinOp::Div | BinOp::Rem => {
                let check = CheckId { node: e.id, kind: CheckKind::DivByZero };
                if rc == 0 {
                    let pred = Pred::cmp(CmpOp::Eq, rt, Term::int(0));
                    return Err(self.record_check_fail(pred, check, e.id, e.span));
                }
                let pred = Pred::cmp(CmpOp::Ne, rt, Term::int(0));
                self.record_check_pass(pred, check, e.id, e.span);
                // Keep the divisor constant in the term language.
                let divisor = match rt.as_const() {
                    Some(k) => k,
                    None => {
                        self.pin(&rt, rc, e.id, e.span);
                        rc
                    }
                };
                if op == BinOp::Div {
                    Ok(CVal::Int(lc.wrapping_div(rc), lt.div(divisor)))
                } else {
                    Ok(CVal::Int(lc.wrapping_rem(rc), lt.rem(divisor)))
                }
            }
            _ => unreachable!("non-arith op in eval_arith"),
        }
    }

    /// Emits the implicit null check for a dereference of `v`.
    fn null_check(&mut self, v: &CVal, node: NodeId, span: Span) -> R<()> {
        let check = CheckId { node, kind: CheckKind::NullDeref };
        let pred = match v.ref_origin() {
            Some(place) => Pred::Null { place: *place, positive: v.is_null() },
            None => Pred::Const(!v.is_null()),
        };
        if v.is_null() {
            Err(self.record_check_fail(pred, check, node, span))
        } else {
            self.record_check_pass(pred, check, node, span);
            Ok(())
        }
    }

    /// Emits the implicit bounds check: `0 <= idx < len`.
    fn bounds_check(
        &mut self,
        idx_c: i64,
        idx_t: &Term,
        len_c: i64,
        len_t: &Term,
        node: NodeId,
        span: Span,
    ) -> R<()> {
        let check = CheckId { node, kind: CheckKind::IndexOutOfRange };
        if idx_c < 0 {
            let pred = Pred::cmp(CmpOp::Lt, *idx_t, Term::int(0));
            return Err(self.record_check_fail(pred, check, node, span));
        }
        if idx_c >= len_c {
            let pred = Pred::cmp(CmpOp::Ge, *idx_t, *len_t);
            return Err(self.record_check_fail(pred, check, node, span));
        }
        // Passing side: record the informative upper bound; the lower bound
        // only when the index is symbolic.
        if idx_t.as_const().is_none() {
            self.record_branch(Pred::cmp(CmpOp::Ge, *idx_t, Term::int(0)), node, span);
        }
        self.record_check_pass(Pred::cmp(CmpOp::Lt, *idx_t, *len_t), check, node, span);
        Ok(())
    }

    /// Concretizes a symbolic array/string index (records a pin), returning
    /// the concrete cell number.
    fn concretize_index(&mut self, idx_c: i64, idx_t: &Term, node: NodeId, span: Span) -> usize {
        if idx_t.as_const().is_none() {
            self.pin(idx_t, idx_c, node, span);
        }
        idx_c as usize
    }

    fn load_elem(&mut self, node: NodeId, span: Span, arr: &CVal, idx: CVal) -> R<CVal> {
        self.null_check(arr, node, span)?;
        let (ic, it) = idx.as_int();
        match arr {
            CVal::ArrInt(Some(obj), _) => {
                let obj = obj.borrow();
                let (lc, lt) = (obj.cells.len() as i64, obj.len_term);
                self.bounds_check(ic, &it, lc, &lt, node, span)?;
                let cell = self.concretize_index(ic, &it, node, span);
                let (c, t) = obj.cells[cell];
                Ok(CVal::Int(c, t))
            }
            CVal::ArrStr(Some(obj), _) => {
                let obj = obj.borrow();
                let (lc, lt) = (obj.cells.len() as i64, obj.len_term);
                self.bounds_check(ic, &it, lc, &lt, node, span)?;
                let cell = self.concretize_index(ic, &it, node, span);
                Ok(CVal::Str(obj.cells[cell].clone()))
            }
            other => panic!("typechecked array, got {other:?}"),
        }
    }

    fn store_elem(&mut self, node: NodeId, span: Span, arr: &CVal, idx: CVal, v: CVal) -> R<()> {
        self.null_check(arr, node, span)?;
        let (ic, it) = idx.as_int();
        match arr {
            CVal::ArrInt(Some(obj), _) => {
                let (lc, lt) = {
                    let o = obj.borrow();
                    (o.cells.len() as i64, o.len_term)
                };
                self.bounds_check(ic, &it, lc, &lt, node, span)?;
                let cell = self.concretize_index(ic, &it, node, span);
                let (c, t) = v.as_int();
                obj.borrow_mut().cells[cell] = (c, t);
                Ok(())
            }
            CVal::ArrStr(Some(obj), _) => {
                let (lc, lt) = {
                    let o = obj.borrow();
                    (o.cells.len() as i64, o.len_term)
                };
                self.bounds_check(ic, &it, lc, &lt, node, span)?;
                let cell = self.concretize_index(ic, &it, node, span);
                let CVal::Str(s) = v else { panic!("typechecked element") };
                obj.borrow_mut().cells[cell] = s;
                Ok(())
            }
            other => panic!("typechecked array, got {other:?}"),
        }
    }

    fn eval_builtin(&mut self, e: &Expr, b: Builtin, args: &[Expr], frame: &mut Frame) -> R<CVal> {
        match b {
            Builtin::Len => {
                let v = self.eval(&args[0], frame)?;
                self.null_check(&v, e.id, e.span)?;
                match &v {
                    CVal::ArrInt(Some(obj), _) => {
                        let o = obj.borrow();
                        Ok(CVal::Int(o.cells.len() as i64, o.len_term))
                    }
                    CVal::ArrStr(Some(obj), _) => {
                        let o = obj.borrow();
                        Ok(CVal::Int(o.cells.len() as i64, o.len_term))
                    }
                    other => panic!("typechecked len, got {other:?}"),
                }
            }
            Builtin::StrLen => {
                let v = self.eval(&args[0], frame)?;
                self.null_check(&v, e.id, e.span)?;
                let CVal::Str(s) = &v else { panic!("typechecked strlen") };
                let chars = s.val.as_ref().expect("non-null after check");
                let term = match &s.origin {
                    Some(place) => Term::len(*place),
                    None => Term::int(chars.len() as i64),
                };
                Ok(CVal::Int(chars.len() as i64, term))
            }
            Builtin::CharAt => {
                let v = self.eval(&args[0], frame)?;
                let idx = self.eval(&args[1], frame)?;
                self.null_check(&v, e.id, e.span)?;
                let CVal::Str(s) = &v else { panic!("typechecked char_at") };
                let chars = s.val.as_ref().expect("non-null after check").clone();
                let (ic, it) = idx.as_int();
                let (lc, lt) = (
                    chars.len() as i64,
                    match &s.origin {
                        Some(place) => Term::len(*place),
                        None => Term::int(chars.len() as i64),
                    },
                );
                self.bounds_check(ic, &it, lc, &lt, e.id, e.span)?;
                let cell = self.concretize_index(ic, &it, e.id, e.span);
                let term = match &s.origin {
                    Some(place) => Term::char_at(*place, Term::int(cell as i64)),
                    None => Term::int(chars[cell]),
                };
                Ok(CVal::Int(chars[cell], term))
            }
            Builtin::IsSpace => {
                let c = self.eval_condition(e, frame)?;
                Ok(CVal::Bool(c, None))
            }
            Builtin::NewIntArray | Builtin::NewStrArray => {
                let (nc, nt) = self.eval(&args[0], frame)?.as_int();
                let check = CheckId { node: e.id, kind: CheckKind::NegativeSize };
                if nc < 0 {
                    let pred = Pred::cmp(CmpOp::Lt, nt, Term::int(0));
                    return Err(self.record_check_fail(pred, check, e.id, e.span));
                }
                self.record_check_pass(Pred::cmp(CmpOp::Ge, nt, Term::int(0)), check, e.id, e.span);
                if b == Builtin::NewIntArray {
                    let cells = vec![(0i64, Term::int(0)); nc as usize];
                    let obj = ArrIntObj { cells, len_term: nt, origin: None };
                    Ok(CVal::ArrInt(Some(Rc::new(RefCell::new(obj))), None))
                } else {
                    let cells = vec![CStr::null(); nc as usize];
                    let obj = ArrStrObj { cells, len_term: nt, origin: None };
                    Ok(CVal::ArrStr(Some(Rc::new(RefCell::new(obj))), None))
                }
            }
            Builtin::Abs => {
                let (c, t) = self.eval(&args[0], frame)?.as_int();
                // abs branches internally on the sign.
                if t.as_const().is_none() {
                    let pred = if c >= 0 {
                        Pred::cmp(CmpOp::Ge, t, Term::int(0))
                    } else {
                        Pred::cmp(CmpOp::Lt, t, Term::int(0))
                    };
                    self.record_branch(pred, e.id, e.span);
                }
                let term = if c >= 0 { t } else { t.neg() };
                Ok(CVal::Int(c.wrapping_abs(), term))
            }
        }
    }
}

// ---- summary application helpers -------------------------------------------

/// Positional [`ActualBinding`]s for the call's argument values, or `None`
/// when any actual cannot be bound soundly: a reference without an input
/// origin (literal, fresh allocation) or an array whose shadow cells no
/// longer match its entry-state contents (the caller mutated it, so the
/// stored ψ's `place[k]` atoms would refer to stale values).
fn bindings_of(args: &[CVal]) -> Option<Vec<ActualBinding>> {
    args.iter()
        .map(|v| match v {
            CVal::Int(_, t) => Some(ActualBinding::Int(*t)),
            CVal::Bool(b, origin) => {
                Some(ActualBinding::Bool { origin: origin.clone(), value: *b })
            }
            CVal::Str(s) => s.origin.map(ActualBinding::Ref),
            CVal::ArrInt(obj, origin) => {
                let place = (*origin)?;
                if let Some(obj) = obj {
                    let o = obj.borrow();
                    if o.len_term != Term::len(place) {
                        return None;
                    }
                    for (k, (_, t)) in o.cells.iter().enumerate() {
                        if *t != Term::int_elem(place, Term::int(k as i64)) {
                            return None;
                        }
                    }
                }
                Some(ActualBinding::Ref(place))
            }
            CVal::ArrStr(obj, origin) => {
                let place = (*origin)?;
                if let Some(obj) = obj {
                    let o = obj.borrow();
                    if o.len_term != Term::len(place) {
                        return None;
                    }
                    for (k, cell) in o.cells.iter().enumerate() {
                        if cell.origin != Some(Place::elem(place, k as i64)) {
                            return None;
                        }
                    }
                }
                Some(ActualBinding::Ref(place))
            }
            CVal::Unit => None,
        })
        .collect()
}

/// The callee's entry state under canonical parameter names, for concrete
/// evaluation of stored `%i`-form summaries.
fn synthetic_state(args: &[CVal]) -> MethodEntryState {
    MethodEntryState::from_pairs(
        args.iter().enumerate().map(|(i, v)| (format!("%{i}"), input_of(v))),
    )
}

fn input_of(v: &CVal) -> InputValue {
    match v {
        CVal::Int(c, _) => InputValue::Int(*c),
        CVal::Bool(b, _) => InputValue::Bool(*b),
        CVal::Str(s) => InputValue::Str(s.val.as_ref().map(|rc| rc.as_ref().clone())),
        CVal::ArrInt(obj, _) => InputValue::ArrayInt(
            obj.as_ref().map(|o| o.borrow().cells.iter().map(|(c, _)| *c).collect()),
        ),
        CVal::ArrStr(obj, _) => InputValue::ArrayStr(obj.as_ref().map(|o| {
            o.borrow().cells.iter().map(|s| s.val.as_ref().map(|rc| rc.as_ref().clone())).collect()
        })),
        CVal::Unit => unreachable!("unit argument"),
    }
}

/// Walks a stored summary and its actual-substituted twin in lockstep,
/// mirroring short-circuit evaluation: only the atoms evaluation actually
/// visits are recorded, each in its taken form. The concrete verdict comes
/// from the original `%i`-form against the synthetic state; the recorded
/// predicate is the substituted atom (over the caller's inputs).
/// Quantified summaries are refused (never stored, defensively rejected).
fn walk_decomposition(
    orig: &Formula,
    subst: &Formula,
    env: &Env<'_>,
    atoms: &mut Vec<Pred>,
) -> Result<bool, EvalError> {
    match (orig, subst) {
        (Formula::Pred(p), Formula::Pred(q)) => {
            let v = eval_pred(p, env)?;
            let taken = if v { q.clone() } else { q.negated() };
            if !taken.is_trivially_true() && !taken.is_trivially_false() {
                atoms.push(taken);
            }
            Ok(v)
        }
        (Formula::Not(a), Formula::Not(b)) => Ok(!walk_decomposition(a, b, env, atoms)?),
        (Formula::And(xs), Formula::And(ys)) if xs.len() == ys.len() => {
            for (x, y) in xs.iter().zip(ys) {
                if !walk_decomposition(x, y, env, atoms)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        (Formula::Or(xs), Formula::Or(ys)) if xs.len() == ys.len() => {
            for (x, y) in xs.iter().zip(ys) {
                if walk_decomposition(x, y, env, atoms)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        (Formula::Implies(a, b), Formula::Implies(c, d)) => {
            if !walk_decomposition(a, c, env, atoms)? {
                Ok(true)
            } else {
                walk_decomposition(b, d, env, atoms)
            }
        }
        _ => Err(EvalError::TypeMismatch("unsupported summary shape".to_string())),
    }
}
