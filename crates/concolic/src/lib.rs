//! # concolic
//!
//! Concolic (dynamic symbolic) execution for MiniLang: the reproduction's
//! equivalent of Pex's symbolic engine. Running a method on a concrete
//! method-entry state yields the *path condition* — the ordered conjunction
//! of branch predicates (explicit and implicit) over the symbolic inputs —
//! that the PreInfer core prunes and generalizes.
//!
//! ```
//! use concolic::{run_concolic, ConcolicConfig};
//! use minilang::{compile, InputValue, MethodEntryState};
//!
//! # fn main() {
//! let tp = compile("fn f(x int) -> int { if (x > 3) { return 1; } return 0; }").unwrap();
//! let state = MethodEntryState::from_pairs([("x", InputValue::Int(5))]);
//! let out = run_concolic(&tp, "f", &state, &ConcolicConfig::default());
//! assert_eq!(out.path.to_string(), "x > 3");
//! # }
//! ```

pub mod cval;
pub mod exec;
pub mod summary;

pub use cval::{materialize, ArrIntObj, ArrStrObj, CStr, CVal};
pub use exec::{run_concolic, ConcolicConfig, ConcolicOutcome};
pub use summary::{InterprocMode, ResolvedSummaries, SummaryApplyStats};
