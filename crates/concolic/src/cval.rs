//! Concolic values: concrete runtime data paired with symbolic shadows.
//!
//! Every integer carries the [`Term`] describing it as a function of the
//! method inputs; references carry their input *origin* [`Place`] (if any)
//! plus shadow contents so that values written into arrays keep their
//! symbolic identity when read back.

use interp::StrRef;
use std::cell::RefCell;
use std::rc::Rc;
use symbolic::{Place, Term};

/// A (possibly null) string with its input origin.
#[derive(Debug, Clone)]
pub struct CStr {
    /// Concrete characters, `None` when null.
    pub val: Option<StrRef>,
    /// The input place this string came from (`s`, `s[2]`, …), if any.
    /// Program-created literals have no origin: predicates about them are
    /// constants and are dropped from path conditions.
    pub origin: Option<Place>,
}

impl CStr {
    /// A null string with no origin (the `null` literal).
    pub fn null() -> CStr {
        CStr { val: None, origin: None }
    }

    /// A concrete literal.
    pub fn literal(chars: Vec<i64>) -> CStr {
        CStr { val: Some(Rc::new(chars)), origin: None }
    }
}

/// Shadow object for an `[int]` array.
#[derive(Debug)]
pub struct ArrIntObj {
    /// `(concrete, symbolic)` per cell.
    pub cells: Vec<(i64, Term)>,
    /// Symbolic length (`len(place)` for inputs, a constant for created
    /// arrays — MiniLang arrays never resize).
    pub len_term: Term,
    /// Input origin of the array reference.
    pub origin: Option<Place>,
}

/// Shadow object for a `[str]` array.
#[derive(Debug)]
pub struct ArrStrObj {
    pub cells: Vec<CStr>,
    pub len_term: Term,
    pub origin: Option<Place>,
}

/// A concolic value.
#[derive(Debug, Clone)]
pub enum CVal {
    /// Concrete int + symbolic term.
    Int(i64, Term),
    /// Booleans are concrete; `origin` names a `bool` *parameter* when the
    /// value is exactly that input (branching on it records a `BoolVar`
    /// predicate). Computed booleans are pinned at their defining branches
    /// and carry no symbolic residue.
    Bool(bool, Option<String>),
    Str(CStr),
    /// `None` reference is null; the `Option<Place>` is the reference's
    /// input origin (meaningful even when null — `s == null` needs it).
    ArrInt(Option<Rc<RefCell<ArrIntObj>>>, Option<Place>),
    ArrStr(Option<Rc<RefCell<ArrStrObj>>>, Option<Place>),
    Unit,
}

impl CVal {
    /// The concrete integer and its term.
    ///
    /// # Panics
    ///
    /// Panics on non-int values (the program is type-checked).
    pub fn as_int(&self) -> (i64, Term) {
        match self {
            CVal::Int(c, t) => (*c, *t),
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The concrete boolean.
    ///
    /// # Panics
    ///
    /// Panics on non-bool values.
    pub fn as_bool(&self) -> bool {
        match self {
            CVal::Bool(b, _) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Whether this value is a null reference.
    pub fn is_null(&self) -> bool {
        matches!(
            self,
            CVal::Str(CStr { val: None, .. }) | CVal::ArrInt(None, _) | CVal::ArrStr(None, _)
        )
    }

    /// The input origin of a reference value, if any.
    pub fn ref_origin(&self) -> Option<&Place> {
        match self {
            CVal::Str(s) => s.origin.as_ref(),
            CVal::ArrInt(_, o) | CVal::ArrStr(_, o) => o.as_ref(),
            _ => None,
        }
    }
}

/// Materializes a method-entry input as a concolic value rooted at `place`.
pub fn materialize(input: &minilang::InputValue, place: Place) -> CVal {
    use minilang::InputValue;
    match input {
        InputValue::Int(v) => {
            CVal::Int(*v, Term::of_var(symbolic::SymVar::int(place_name(&place))))
        }
        InputValue::Bool(b) => CVal::Bool(*b, Some(place_name(&place))),
        InputValue::Str(s) => {
            CVal::Str(CStr { val: s.as_ref().map(|cs| Rc::new(cs.clone())), origin: Some(place) })
        }
        InputValue::ArrayInt(a) => match a {
            None => CVal::ArrInt(None, Some(place)),
            Some(xs) => {
                let cells = xs
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| (v, Term::int_elem(place, Term::int(k as i64))))
                    .collect();
                let obj = ArrIntObj { cells, len_term: Term::len(place), origin: Some(place) };
                CVal::ArrInt(Some(Rc::new(RefCell::new(obj))), Some(place))
            }
        },
        InputValue::ArrayStr(a) => match a {
            None => CVal::ArrStr(None, Some(place)),
            Some(xs) => {
                let cells = xs
                    .iter()
                    .enumerate()
                    .map(|(k, s)| CStr {
                        val: s.as_ref().map(|cs| Rc::new(cs.clone())),
                        origin: Some(Place::elem(place, k as i64)),
                    })
                    .collect();
                let obj = ArrStrObj { cells, len_term: Term::len(place), origin: Some(place) };
                CVal::ArrStr(Some(Rc::new(RefCell::new(obj))), Some(place))
            }
        },
    }
}

fn place_name(place: &Place) -> String {
    match place.node() {
        symbolic::PlaceNode::Param(name) => name.clone(),
        _ => panic!("scalar inputs are parameters, got {place}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::InputValue;

    #[test]
    fn materialize_int_array() {
        let v = materialize(&InputValue::ArrayInt(Some(vec![5, 7])), Place::param("a"));
        let CVal::ArrInt(Some(obj), origin) = &v else { panic!() };
        assert_eq!(origin.as_ref().unwrap().to_string(), "a");
        let obj = obj.borrow();
        assert_eq!(obj.cells[1].0, 7);
        assert_eq!(obj.cells[1].1.to_string(), "a[1]");
        assert_eq!(obj.len_term.to_string(), "len(a)");
    }

    #[test]
    fn materialize_str_array_elements_have_places() {
        let v =
            materialize(&InputValue::ArrayStr(Some(vec![None, Some(vec![97])])), Place::param("s"));
        let CVal::ArrStr(Some(obj), _) = &v else { panic!() };
        let obj = obj.borrow();
        assert!(obj.cells[0].val.is_none());
        assert_eq!(obj.cells[0].origin.as_ref().unwrap().to_string(), "s[0]");
        assert_eq!(obj.cells[1].origin.as_ref().unwrap().to_string(), "s[1]");
    }

    #[test]
    fn materialize_null_keeps_origin() {
        let v = materialize(&InputValue::Str(None), Place::param("s"));
        assert!(v.is_null());
        assert_eq!(v.ref_origin().unwrap().to_string(), "s");
    }

    #[test]
    fn bool_param_has_name_origin() {
        let v = materialize(&InputValue::Bool(true), Place::param("flag"));
        let CVal::Bool(true, Some(name)) = &v else { panic!() };
        assert_eq!(name, "flag");
    }
}
