//! Path-condition collection tests, anchored on the paper's Tables I and II,
//! plus the soundness loop: solving a collected path condition and re-running
//! must follow the same path.

use concolic::{run_concolic, ConcolicConfig};
use interp::{run, ExecResult, InterpConfig};
use minilang::{compile, CheckKind, InputValue, MethodEntryState, TypedProgram};
use solver::{solve_preds, FuncSig, SolveResult, SolverConfig};
use symbolic::{EntryKind, PathOutcome};

/// The paper's Figure 1 method, ported to MiniLang. The implicit assertion
/// at the paper's Line 14 (`s != null`) arises from `len(s)`; the one at
/// Line 16 (`s[i] != null`) arises from `strlen(s[i])`.
const FIG1: &str = "
fn example(s [str], a int, b int, c int, d int) -> int {
    let sum = 0;
    if (a > 0) { b = b + 1; }
    if (c > 0) { d = d + 1; }
    if (b > 0) { sum = sum + 1; }
    if (d > 0) {
        for (let i = 0; i < len(s); i = i + 1) {
            sum = sum + strlen(s[i]);
        }
        return sum;
    }
    return sum;
}";

fn fig1() -> TypedProgram {
    compile(FIG1).unwrap()
}

fn fig1_state(s: InputValue, a: i64, b: i64, c: i64, d: i64) -> MethodEntryState {
    MethodEntryState::from_pairs([
        ("s".to_string(), s),
        ("a".to_string(), InputValue::Int(a)),
        ("b".to_string(), InputValue::Int(b)),
        ("c".to_string(), InputValue::Int(c)),
        ("d".to_string(), InputValue::Int(d)),
    ])
}

#[test]
fn table1_path_condition_for_tf1() {
    let tp = fig1();
    // t_f1: (s: {null}, a: 1, b: 0, c: 1, d: 0)
    let state = fig1_state(InputValue::ArrayStr(Some(vec![None])), 1, 0, 1, 0);
    let out = run_concolic(&tp, "example", &state, &ConcolicConfig::default());
    assert!(matches!(out.path.outcome, PathOutcome::Failed(c) if c.kind == CheckKind::NullDeref));
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    // The paper's Table I sequence (we additionally record benign duplicate
    // checks at the element access; canonical dedup removes them later).
    let expected_subsequence =
        ["a > 0", "c > 0", "(b + 1) > 0", "(d + 1) > 0", "s != null", "0 < len(s)", "s[0] == null"];
    let mut pos = 0;
    for want in expected_subsequence {
        pos = preds[pos..]
            .iter()
            .position(|p| p == want)
            .map(|off| pos + off + 1)
            .unwrap_or_else(|| panic!("missing {want:?} in order within {preds:?}"));
    }
    // The last-branch predicate is the assertion-violating condition.
    assert_eq!(out.path.last_branch().unwrap().pred.to_string(), "s[0] == null");
}

#[test]
fn table2_path_condition_for_tf3() {
    let tp = fig1();
    // t_f3: (s: {"a","a",null}, a: 1, b: 0, c: 1, d: 0)
    let a = Some(vec![97i64]);
    let state = fig1_state(InputValue::ArrayStr(Some(vec![a.clone(), a, None])), 1, 0, 1, 0);
    let out = run_concolic(&tp, "example", &state, &ConcolicConfig::default());
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    for want in [
        "a > 0",
        "c > 0",
        "(b + 1) > 0",
        "(d + 1) > 0",
        "s != null",
        "0 < len(s)",
        "s[0] != null",
        "1 < len(s)",
        "s[1] != null",
        "2 < len(s)",
        "s[2] == null",
    ] {
        assert!(preds.contains(&want.to_string()), "missing {want:?} in {preds:?}");
    }
    assert_eq!(out.path.last_branch().unwrap().pred.to_string(), "s[2] == null");
}

#[test]
fn passing_path_tp1_reaches_check_without_violation() {
    let tp = fig1();
    // t_p1-like: (s: {"aa"}, a: 0, b: 1, c: 1, d: 0) — a <= 0 branch, reaches
    // the element check but all elements are non-null.
    let state = fig1_state(InputValue::ArrayStr(Some(vec![Some(vec![97, 97])])), 0, 1, 1, 0);
    let out = run_concolic(&tp, "example", &state, &ConcolicConfig::default());
    assert!(matches!(out.path.outcome, PathOutcome::Completed));
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    assert!(preds.contains(&"a <= 0".to_string()), "{preds:?}");
    assert!(preds.contains(&"s[0] != null".to_string()), "{preds:?}");
    // 1 >= len(s): the loop exits after one iteration.
    assert!(preds.contains(&"1 >= len(s)".to_string()), "{preds:?}");
}

#[test]
fn concolic_and_interp_agree_on_outcomes() {
    let tp = fig1();
    let states = vec![
        fig1_state(InputValue::ArrayStr(None), 1, 0, 1, 0),
        fig1_state(InputValue::ArrayStr(None), 0, 0, 0, 0),
        fig1_state(InputValue::ArrayStr(Some(vec![None])), 0, 0, 0, 5),
        fig1_state(InputValue::ArrayStr(Some(vec![Some(vec![97])])), 2, 2, 2, 2),
        fig1_state(InputValue::ArrayStr(Some(vec![])), 1, 1, 1, 1),
    ];
    for state in states {
        let c = run_concolic(&tp, "example", &state, &ConcolicConfig::default());
        let i = run(&tp, "example", &state, &InterpConfig::default());
        match (&c.path.outcome, &i.result) {
            (PathOutcome::Completed, ExecResult::Completed(_)) => {}
            (PathOutcome::Failed(a), ExecResult::Failed(e)) => assert_eq!(*a, e.check),
            (PathOutcome::OutOfFuel, ExecResult::OutOfFuel) => {}
            (PathOutcome::CallDepthExceeded, ExecResult::CallDepthExceeded) => {}
            other => panic!("outcome mismatch on {state}: {other:?}"),
        }
        assert_eq!(c.visited_blocks, i.visited_blocks, "coverage mismatch on {state}");
    }
}

/// The concolic soundness loop: take a collected path condition, solve it,
/// and re-execute on the model — the run must follow the same path (same
/// branch sites and canonical predicates).
#[test]
fn solved_path_conditions_replay_the_same_path() {
    let tp = fig1();
    let sig = FuncSig::of(tp.func("example").unwrap());
    let cfg = SolverConfig::default();
    let seeds = vec![
        fig1_state(InputValue::ArrayStr(Some(vec![None])), 1, 0, 1, 0),
        fig1_state(InputValue::ArrayStr(Some(vec![Some(vec![97]), None])), 5, -3, 0, 2),
        fig1_state(InputValue::ArrayStr(None), 0, 0, 1, 1),
        fig1_state(InputValue::ArrayStr(Some(vec![])), -1, 4, 2, 0),
    ];
    for seed in seeds {
        let original = run_concolic(&tp, "example", &seed, &ConcolicConfig::default());
        let preds: Vec<_> = original.path.entries.iter().map(|e| e.pred.clone()).collect();
        match solve_preds(&preds, &sig, &cfg) {
            SolveResult::Sat(model) => {
                let replay = run_concolic(&tp, "example", &model, &ConcolicConfig::default());
                assert_eq!(
                    replay.path.entries.len(),
                    original.path.entries.len(),
                    "replay diverged on seed {seed}: model {model}\noriginal: {}\nreplay: {}",
                    original.path,
                    replay.path,
                );
                assert!(
                    original.path.shares_prefix(&replay.path, original.path.entries.len()),
                    "replay path differs for seed {seed} / model {model}"
                );
            }
            other => panic!("own path condition must be satisfiable, got {other:?} for {seed}"),
        }
    }
}

#[test]
fn pins_recorded_for_nonlinear_ops() {
    let tp = compile("fn f(x int, y int) -> int { return x * y; }").unwrap();
    let state = MethodEntryState::from_pairs([
        ("x".to_string(), InputValue::Int(3)),
        ("y".to_string(), InputValue::Int(4)),
    ]);
    let out = run_concolic(&tp, "f", &state, &ConcolicConfig::default());
    let pins: Vec<_> = out.path.entries.iter().filter(|e| e.kind == EntryKind::Pin).collect();
    assert_eq!(pins.len(), 1);
    assert_eq!(pins[0].pred.to_string(), "y == 4");
}

#[test]
fn division_records_check_and_symbolic_quotient() {
    let tp = compile("fn f(x int) -> int { if (x / 2 > 3) { return 1; } return 0; }").unwrap();
    let state = MethodEntryState::from_pairs([("x", InputValue::Int(10))]);
    let out = run_concolic(&tp, "f", &state, &ConcolicConfig::default());
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    assert!(preds.iter().any(|p| p.contains("(x / 2) > 3")), "{preds:?}");
}

#[test]
fn assert_retags_last_decision_as_check() {
    let tp = compile("fn f(x int) { assert(x > 0); }").unwrap();
    let ok = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("x", InputValue::Int(5))]),
        &ConcolicConfig::default(),
    );
    assert!(matches!(ok.path.outcome, PathOutcome::Completed));
    let e = ok.path.entries.last().unwrap();
    assert!(matches!(e.kind, EntryKind::Check(c) if c.kind == CheckKind::AssertFail));
    assert_eq!(e.pred.to_string(), "x > 0");
    let bad = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("x", InputValue::Int(0))]),
        &ConcolicConfig::default(),
    );
    assert!(matches!(bad.path.outcome, PathOutcome::Failed(c) if c.kind == CheckKind::AssertFail));
    assert_eq!(bad.path.last_branch().unwrap().pred.to_string(), "x <= 0");
}

#[test]
fn bool_param_branches_record_boolvar() {
    let tp = compile("fn f(flag bool) -> int { if (flag) { return 1; } return 0; }").unwrap();
    let out = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("flag", InputValue::Bool(true))]),
        &ConcolicConfig::default(),
    );
    assert_eq!(out.path.to_string(), "flag");
    let out = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("flag", InputValue::Bool(false))]),
        &ConcolicConfig::default(),
    );
    assert_eq!(out.path.to_string(), "!flag");
}

#[test]
fn callee_branches_join_callers_path_condition() {
    let src = "
        fn is_valid(x int) -> bool { return x > 10; }
        fn main(x int) -> int {
            if (is_valid(x)) { return 1; }
            return 0;
        }";
    let tp = compile(src).unwrap();
    let out = run_concolic(
        &tp,
        "main",
        &MethodEntryState::from_pairs([("x", InputValue::Int(20))]),
        &ConcolicConfig::default(),
    );
    assert_eq!(out.path.to_string(), "x > 10");
}

#[test]
fn writes_preserve_symbolic_identity() {
    // Writing an input-derived value into a fresh array and reading it back
    // must keep the symbolic term.
    let src = "
        fn f(x int) -> int {
            let a = new_int_array(2);
            a[0] = x + 1;
            if (a[0] > 5) { return 1; }
            return 0;
        }";
    let tp = compile(src).unwrap();
    let out = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("x", InputValue::Int(9))]),
        &ConcolicConfig::default(),
    );
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    assert!(preds.iter().any(|p| p.contains("(x + 1) > 5")), "{preds:?}");
}

#[test]
fn string_chars_symbolic_through_char_at() {
    let src = "fn f(s str) -> int { if (is_space(char_at(s, 0))) { return 1; } return 0; }";
    let tp = compile(src).unwrap();
    let out = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("s", InputValue::str_from(" x"))]),
        &ConcolicConfig::default(),
    );
    let preds: Vec<String> = out.path.entries.iter().map(|e| e.pred.to_string()).collect();
    assert!(preds.contains(&"is_space(char_at(s, 0))".to_string()), "{preds:?}");
}

#[test]
fn is_space_on_literal_strings_is_concrete() {
    let src = r#"fn f(x int) -> int {
        let t = "a";
        if (is_space(char_at(t, 0))) { return 1; }
        return x;
    }"#;
    let tp = compile(src).unwrap();
    let out = run_concolic(
        &tp,
        "f",
        &MethodEntryState::from_pairs([("x", InputValue::Int(1))]),
        &ConcolicConfig::default(),
    );
    // No symbolic content from the literal: only constant checks remain.
    assert!(out.path.entries.iter().all(|e| !matches!(e.kind, EntryKind::ExplicitBranch)
        || !e.pred.to_string().contains("is_space")));
}
