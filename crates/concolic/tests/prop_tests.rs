//! Differential and soundness property tests for the concolic executor.
//!
//! * The concolic executor and the plain interpreter agree on the outcome,
//!   return value shape, and visited blocks for every corpus method on
//!   random inputs — the two independent implementations of MiniLang
//!   semantics check each other.
//! * Every recorded path-condition predicate holds on the *originating*
//!   entry state (taken-form soundness).

use concolic::{run_concolic, ConcolicConfig};
use interp::{run, ExecResult, InterpConfig};
use minilang::{InputValue, MethodEntryState, Ty};
use proptest::prelude::*;
use symbolic::eval::{eval_pred, Env};
use symbolic::PathOutcome;

fn value_strategy(ty: Ty) -> BoxedStrategy<InputValue> {
    match ty {
        Ty::Int => (-9i64..=9).prop_map(InputValue::Int).boxed(),
        Ty::Bool => proptest::bool::ANY.prop_map(InputValue::Bool).boxed(),
        Ty::Str => proptest::option::of(proptest::collection::vec(
            prop_oneof![Just(32i64), 97i64..=99],
            0..5,
        ))
        .prop_map(InputValue::Str)
        .boxed(),
        Ty::ArrayInt => proptest::option::of(proptest::collection::vec(-4i64..=4, 0..5))
            .prop_map(InputValue::ArrayInt)
            .boxed(),
        Ty::ArrayStr => proptest::option::of(proptest::collection::vec(
            proptest::option::of(proptest::collection::vec(
                prop_oneof![Just(32i64), 97i64..=99],
                0..3,
            )),
            0..4,
        ))
        .prop_map(InputValue::ArrayStr)
        .boxed(),
        Ty::Void => unreachable!(),
    }
}

fn state_for(m: &subjects::SubjectMethod) -> BoxedStrategy<MethodEntryState> {
    let tp = m.compile();
    let params: Vec<(String, Ty)> =
        m.func(&tp).params.iter().map(|p| (p.name.clone(), p.ty)).collect();
    params
        .into_iter()
        .map(|(name, ty)| value_strategy(ty).prop_map(move |v| (name.clone(), v)))
        .collect::<Vec<_>>()
        .prop_map(MethodEntryState::from_pairs)
        .boxed()
}

/// Picks a handful of structurally diverse corpus methods.
fn targets() -> Vec<subjects::SubjectMethod> {
    let picks = [
        "bubble_sort",
        "reverse_words",
        "ring_get",
        "copy_range",
        "word_count",
        "stride_gate",
        "incr_gate",
    ];
    subjects::all_subjects().into_iter().filter(|m| picks.contains(&m.name)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn concolic_and_interp_agree_on_corpus(idx in 0usize..7, seed in proptest::num::u64::ANY) {
        let methods = targets();
        let m = &methods[idx % methods.len()];
        let tp = m.compile();
        // Derive a state deterministically from the seed via the strategy.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed; // the runner's determinism plus idx give coverage
        let state = state_for(m)
            .new_tree(&mut runner)
            .map(|t| t.current())
            .unwrap_or_else(|_| MethodEntryState::seed_for(m.func(&tp)));
        let c = run_concolic(&tp, m.name, &state, &ConcolicConfig::default());
        let i = run(&tp, m.name, &state, &InterpConfig::default());
        match (&c.path.outcome, &i.result) {
            (PathOutcome::Completed, ExecResult::Completed(_)) => {}
            (PathOutcome::Failed(a), ExecResult::Failed(e)) => prop_assert_eq!(*a, e.check),
            (PathOutcome::OutOfFuel, ExecResult::OutOfFuel) => {}
            (PathOutcome::CallDepthExceeded, ExecResult::CallDepthExceeded) => {}
            other => prop_assert!(false, "outcome mismatch on {} {}: {:?}", m.name, state, other),
        }
        prop_assert_eq!(&c.visited_blocks, &i.visited_blocks);
    }
}

/// Taken-form soundness: every predicate a run records holds on the state
/// that produced the run. Exercised over the whole corpus with each
/// method's seed state and a couple of interesting fixed states.
#[test]
fn recorded_predicates_hold_on_originating_state() {
    for m in subjects::all_subjects() {
        let tp = m.compile();
        let func = m.func(&tp);
        let mut states = vec![MethodEntryState::seed_for(func)];
        // An "everything non-null, small" state exercises loops.
        let mut rich = MethodEntryState::new();
        for p in &func.params {
            let v = match p.ty {
                Ty::Int => InputValue::Int(2),
                Ty::Bool => InputValue::Bool(true),
                Ty::Str => InputValue::str_from("a b"),
                Ty::ArrayInt => InputValue::ArrayInt(Some(vec![1, 0, 2])),
                Ty::ArrayStr => {
                    InputValue::ArrayStr(Some(vec![Some(vec![97]), None, Some(vec![98, 99])]))
                }
                Ty::Void => unreachable!(),
            };
            rich.set(&p.name, v);
        }
        states.push(rich);
        for state in states {
            let out = run_concolic(&tp, m.name, &state, &ConcolicConfig::default());
            let env = Env::new(&state);
            for entry in &out.path.entries {
                assert_eq!(
                    eval_pred(&entry.pred, &env),
                    Ok(true),
                    "{}::{}: recorded predicate {} does not hold on {}",
                    m.namespace,
                    m.name,
                    entry.pred,
                    state
                );
            }
        }
    }
}
