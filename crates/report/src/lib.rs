//! # report
//!
//! Experiment drivers regenerating every table and figure of the PreInfer
//! paper (see DESIGN.md §4 for the experiment index): corpus evaluation
//! ([`eval`]) and table/figure rendering ([`tables`]).

pub mod eval;
pub mod json;
pub mod tables;

pub use eval::{
    evaluate_corpus, evaluate_method, AclResult, Approach, ApproachResult, EvalConfig,
    MethodResult, StageTiming,
};
pub use json::results_to_json;
pub use tables::{figure_3, interproc_table, table_1_2, table_3, table_4, table_5, table_6};
