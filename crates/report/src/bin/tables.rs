//! Regenerates the paper's tables and figures from the corpus.
//!
//! Usage:
//!   tables                # everything
//!   tables 1 3 4 5 6 f3   # selected tables / figure 3
//!   tables interproc      # inline-vs-summary axis on the multi-function slice
//!   tables --json OUT     # additionally dump per-ACL results as JSON

use report::{evaluate_corpus, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut picks: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next();
        } else {
            picks.push(a);
        }
    }
    let want = |k: &str| picks.is_empty() || picks.iter().any(|p| p == k);

    if want("1") || want("2") {
        println!("{}", report::table_1_2());
    }
    if want("3") {
        println!("{}", report::table_3());
    }
    let needs_eval = want("4") || want("5") || want("6") || want("f3") || json_path.is_some();
    if needs_eval {
        eprintln!("evaluating corpus ({} methods)…", subjects::all_subjects().len());
        let start = std::time::Instant::now();
        let cfg = EvalConfig::default();
        let results = evaluate_corpus(&subjects::all_subjects(), &cfg);
        let hits: u64 = results.iter().map(|r| r.solver_cache_hits).sum();
        let misses: u64 = results.iter().map(|r| r.solver_cache_misses).sum();
        eprintln!(
            "done in {:.1}s ({} threads; solver cache: {} hits / {} misses, {:.1}% hit rate)",
            start.elapsed().as_secs_f64(),
            cfg.jobs,
            hits,
            misses,
            if hits + misses == 0 { 0.0 } else { 100.0 * hits as f64 / (hits + misses) as f64 },
        );
        // Per-stage totals across all methods (from the aggregate sinks).
        let mut stage_totals: std::collections::BTreeMap<&'static str, (u64, u64)> =
            Default::default();
        for r in &results {
            for t in &r.stage_timings {
                let e = stage_totals.entry(t.stage).or_insert((0, 0));
                e.0 += t.count;
                e.1 += t.total_us;
            }
        }
        if !stage_totals.is_empty() {
            eprintln!("stage breakdown (all methods):");
            for (stage, (count, total_us)) in &stage_totals {
                eprintln!("  {stage:>14}: {count:>7} spans, {:.2}s", *total_us as f64 / 1e6);
            }
        }
        if want("4") {
            println!("{}", report::table_4(&results));
        }
        if want("5") {
            println!("{}", report::table_5(&results));
        }
        if want("6") {
            println!("{}", report::table_6(&results));
        }
        if want("f3") {
            println!("{}", report::figure_3(&results));
        }
        if let Some(path) = json_path {
            let json = report::results_to_json(&results);
            std::fs::write(&path, json).expect("write JSON results");
            eprintln!("wrote {path}");
        }
    }
    if !picks.is_empty() && picks.iter().any(|p| p == "interproc") {
        // Multi-function slice, evaluated once per interprocedural mode.
        let slice: Vec<_> = subjects::all_subjects()
            .into_iter()
            .filter(|m| m.namespace == "Interproc.Summaries")
            .collect();
        eprintln!("evaluating interproc slice ({} methods, both modes)…", slice.len());
        let inline_cfg = EvalConfig::default();
        let summary_cfg = EvalConfig {
            interproc: concolic::InterprocMode::Summary,
            summary_table: Some(std::sync::Arc::new(preinfer_core::SummaryTable::new())),
            ..EvalConfig::default()
        };
        let inline = evaluate_corpus(&slice, &inline_cfg);
        let summary = evaluate_corpus(&slice, &summary_cfg);
        println!("{}", report::interproc_table(&inline, &summary));
    }
}
