//! Hand-rolled JSON rendering for evaluation results.
//!
//! The offline build environment has no `serde`, so the per-ACL results are
//! serialized by hand. The shape matches what `#[derive(Serialize)]` used
//! to produce for `Vec<MethodResult>`, keeping downstream consumers of
//! `tables --json` working.

use crate::eval::{AclResult, ApproachResult, MethodResult, StageTiming};
use std::fmt::Write;

/// Serializes the full evaluation output as pretty-printed JSON.
pub fn results_to_json(results: &[MethodResult]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        write_method(&mut out, m, 1);
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

fn write_method(out: &mut String, m: &MethodResult, level: usize) {
    let pad = Indent(level);
    let inner = Indent(level + 1);
    let _ = writeln!(out, "{pad}{{");
    let _ = writeln!(out, "{inner}\"namespace\": {},", json_str(&m.namespace));
    let _ = writeln!(out, "{inner}\"subject\": {},", json_str(&m.subject));
    let _ = writeln!(out, "{inner}\"method\": {},", json_str(&m.method));
    let _ = writeln!(out, "{inner}\"coverage_percent\": {},", json_f64(m.coverage_percent));
    let _ = writeln!(out, "{inner}\"tests\": {},", m.tests);
    let _ = writeln!(out, "{inner}\"solver_cache_hits\": {},", m.solver_cache_hits);
    let _ = writeln!(out, "{inner}\"solver_cache_misses\": {},", m.solver_cache_misses);
    let _ = writeln!(out, "{inner}\"timed_out\": {},", m.timed_out);
    let _ = writeln!(out, "{inner}\"interproc\": {},", json_str(m.interproc));
    let _ = writeln!(out, "{inner}\"summarized_callees\": {},", m.summarized_callees);
    let _ = writeln!(out, "{inner}\"summary_table_hits\": {},", m.summary_table_hits);
    let _ = writeln!(out, "{inner}\"summary_applies\": {},", m.summary_applies);
    let _ = writeln!(out, "{inner}\"summary_fallbacks\": {},", m.summary_fallbacks);
    // Rendered on a single line: timing values vary run to run, so
    // differential consumers can drop this one line and compare the rest.
    let _ = write!(out, "{inner}\"stage_timings\": [");
    for (i, t) in m.stage_timings.iter().enumerate() {
        write_stage_timing(out, t);
        if i + 1 < m.stage_timings.len() {
            out.push_str(", ");
        }
    }
    out.push_str("],\n");
    // Also one line: the tier split is scheduling-dependent under a shared
    // cache (which tier *executes* a query depends on who misses first).
    let t = &m.solver_tiers;
    let _ = writeln!(
        out,
        "{inner}\"solver_tiers\": {{\"answered_by_syntactic\": {}, \
         \"answered_by_interval\": {}, \"answered_by_simplex\": {}, \
         \"escalations\": {}}},",
        t.answered_by_syntactic, t.answered_by_interval, t.answered_by_simplex, t.escalations
    );
    if m.acls.is_empty() {
        let _ = writeln!(out, "{inner}\"acls\": []");
    } else {
        let _ = writeln!(out, "{inner}\"acls\": [");
        for (i, a) in m.acls.iter().enumerate() {
            write_acl(out, a, level + 2);
            out.push_str(if i + 1 < m.acls.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(out, "{inner}]");
    }
    let _ = write!(out, "{pad}}}");
}

fn write_stage_timing(out: &mut String, t: &StageTiming) {
    let _ = write!(
        out,
        "{{\"stage\": {}, \"count\": {}, \"total_us\": {}, \"mean_us\": {}, \
         \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
        json_str(t.stage),
        t.count,
        t.total_us,
        t.mean_us,
        t.p50_us,
        t.p90_us,
        t.p99_us
    );
}

fn write_acl(out: &mut String, a: &AclResult, level: usize) {
    let pad = Indent(level);
    let inner = Indent(level + 1);
    let _ = writeln!(out, "{pad}{{");
    let _ = writeln!(out, "{inner}\"namespace\": {},", json_str(&a.namespace));
    let _ = writeln!(out, "{inner}\"subject\": {},", json_str(&a.subject));
    let _ = writeln!(out, "{inner}\"method\": {},", json_str(&a.method));
    let _ = writeln!(out, "{inner}\"kind\": {},", json_str(&a.kind));
    let _ = writeln!(out, "{inner}\"loop_pos_label\": {},", json_str(&a.loop_pos_label));
    let _ = writeln!(out, "{inner}\"quantified_target\": {},", json_opt_bool(a.quantified_target));
    let _ = write!(out, "{inner}\"preinfer\": ");
    write_approach(out, &a.preinfer, level + 1);
    out.push_str(",\n");
    let _ = write!(out, "{inner}\"fixit\": ");
    write_approach(out, &a.fixit, level + 1);
    out.push_str(",\n");
    let _ = write!(out, "{inner}\"dysy\": ");
    write_approach(out, &a.dysy, level + 1);
    out.push('\n');
    let _ = write!(out, "{pad}}}");
}

fn write_approach(out: &mut String, r: &ApproachResult, level: usize) {
    let pad = Indent(level);
    let inner = Indent(level + 1);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "{inner}\"sufficient\": {},", r.sufficient);
    let _ = writeln!(out, "{inner}\"necessary\": {},", r.necessary);
    let _ = writeln!(out, "{inner}\"correct\": {},", json_opt_bool(r.correct));
    let _ = writeln!(out, "{inner}\"complexity\": {},", r.complexity);
    let rel = match r.relative_complexity {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    };
    let _ = writeln!(out, "{inner}\"relative_complexity\": {rel},");
    let _ = writeln!(out, "{inner}\"quantified\": {},", r.quantified);
    let _ = writeln!(out, "{inner}\"psi\": {}", json_str(&r.psi));
    let _ = write!(out, "{pad}}}");
}

struct Indent(usize);

impl std::fmt::Display for Indent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for _ in 0..self.0 {
            f.write_str("  ")?;
        }
        Ok(())
    }
}

/// Escapes a string per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v}` prints integral floats without a fraction ("75" not
        // "75.0"), which JSON still parses as a number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_bool(v: Option<bool>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_results_render_as_empty_array() {
        assert_eq!(results_to_json(&[]), "[\n]");
    }
}
