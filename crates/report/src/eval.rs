//! Corpus evaluation: runs the Section V protocol over every subject method
//! and scores PreInfer, FixIt and DySy per assertion-containing location.

use baselines::{infer_dysy, infer_fixit};
use concolic::InterprocMode;
use interp::{run, ExecResult, InterpConfig};
use minilang::{program_check_sites, CheckId, LoopPos, MethodEntryState, TypedProgram};
use preinfer_core::{
    build_summaries, evaluate_precondition, infer_precondition, map_parallel, random_probe,
    PreInferConfig, PrecondQuality, ProbeConfig, SummaryBuildConfig, SummaryTable,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use solver::{BackendKind, Deadline, SolverCache, TierCounters, TierSnapshot};
use std::sync::Arc;
use subjects::SubjectMethod;
use symbolic::Formula;
use testgen::{generate_tests, TestGenConfig};

/// The three approaches, in the tables' column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    PreInfer,
    FixIt,
    DySy,
}

impl Approach {
    /// All approaches in table order.
    pub const ALL: [Approach; 3] = [Approach::PreInfer, Approach::FixIt, Approach::DySy];

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::PreInfer => "PreInfer",
            Approach::FixIt => "FixIt",
            Approach::DySy => "DySy",
        }
    }
}

/// One approach's scored result at one ACL.
#[derive(Debug, Clone)]
pub struct ApproachResult {
    pub sufficient: bool,
    pub necessary: bool,
    pub correct: Option<bool>,
    pub complexity: usize,
    pub relative_complexity: Option<f64>,
    /// Whether the inferred precondition contains a quantifier.
    pub quantified: bool,
    /// Rendered `ψ` (truncated for giant DySy formulas).
    pub psi: String,
}

impl ApproachResult {
    /// `#Both`: sufficient and necessary.
    pub fn both(&self) -> bool {
        self.sufficient && self.necessary
    }
}

/// Scored results for one triggered ACL.
#[derive(Debug, Clone)]
pub struct AclResult {
    pub namespace: String,
    pub subject: String,
    pub method: String,
    pub kind: String,
    pub loop_pos_label: String,
    pub loop_pos: LoopPos,
    /// Whether the ground truth needs a quantifier (Table VI membership);
    /// `None` when the ACL carries no annotation.
    pub quantified_target: Option<bool>,
    pub preinfer: ApproachResult,
    pub fixit: ApproachResult,
    pub dysy: ApproachResult,
}

impl AclResult {
    /// The result for a given approach.
    pub fn of(&self, a: Approach) -> &ApproachResult {
        match a {
            Approach::PreInfer => &self.preinfer,
            Approach::FixIt => &self.fixit,
            Approach::DySy => &self.dysy,
        }
    }
}

/// Aggregated timing for one pipeline stage while evaluating a method.
/// Derived from an aggregate [`obs::TraceSink`]; purely diagnostic — the
/// timings never feed back into inference.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage label (`test_gen`, `prune`, `solver`, …).
    pub stage: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
}

/// Per-method evaluation output.
#[derive(Debug, Clone)]
pub struct MethodResult {
    pub namespace: String,
    pub subject: String,
    pub method: String,
    pub coverage_percent: f64,
    pub tests: usize,
    /// Solver-cache hits observed while evaluating this method (0 when the
    /// cache is disabled). Diagnostics: hit counts depend on traffic order.
    pub solver_cache_hits: u64,
    /// Solver-cache misses observed while evaluating this method.
    pub solver_cache_misses: u64,
    /// Whether the per-method deadline ([`EvalConfig::timeout_ms`]) expired
    /// while evaluating this method. A timed-out result is still sound —
    /// test generation stops early and pruning keeps predicates — but may
    /// be less reduced than an unbounded run.
    pub timed_out: bool,
    /// Per-stage timing breakdown (stages with zero samples are omitted;
    /// empty when [`EvalConfig::trace`] is off). Diagnostics only — every
    /// other field is byte-identical with tracing on or off.
    pub stage_timings: Vec<StageTiming>,
    /// Per-tier solver answer counts for this method (executed solves
    /// only — cache hits replay tiers without counting). Diagnostics:
    /// like cache hit counts, the split depends on traffic order.
    pub solver_tiers: TierSnapshot,
    /// The interprocedural mode this method was evaluated under
    /// (`"inline"` or `"summary"`).
    pub interproc: &'static str,
    /// Callees with stored ψ-summaries (0 in inline mode).
    pub summarized_callees: usize,
    /// Summary-table hits during the bottom-up build (α-equivalent closure
    /// reuse; depends on what earlier methods populated when the table is
    /// shared — diagnostics, like the solver-cache counters).
    pub summary_table_hits: u64,
    /// Checks summarized at call sites during this method's executions.
    pub summary_applies: u64,
    /// Per-check or per-call fallbacks to inline recording.
    pub summary_fallbacks: u64,
    pub acls: Vec<AclResult>,
}

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    pub testgen: TestGenConfig,
    pub probes: ProbeConfig,
    /// Extra execution-classified probe states for the Suff/Nece check —
    /// the counterpart of the paper's "re-run Pex against the inserted
    /// precondition" validation: each probe state is executed and labelled
    /// passing/failing per ACL by what actually happens.
    pub check_probes: usize,
    /// Worker threads for [`evaluate_corpus`] (methods are independent, so
    /// any value produces identical results). `0`/`1` is serial.
    pub jobs: usize,
    /// Front every solver call with a per-method canonicalizing cache.
    pub solver_cache: bool,
    /// Solver backend stack ([`BackendKind::Tiered`] by default). Verdicts
    /// — and therefore every scored field — are identical for either
    /// value; only speed and tier attribution differ.
    pub solver_backend: BackendKind,
    /// Solve prefix-sharing queries through warm incremental sessions
    /// (`true` by default). Like the backend choice, results are identical
    /// either way — only speed differs.
    pub incremental: bool,
    /// Per-method wall-clock deadline in milliseconds; `None` is unbounded.
    /// Checked between solver calls, so no single method can hang its
    /// worker; expiry is surfaced as [`MethodResult::timed_out`].
    pub timeout_ms: Option<u64>,
    /// Collect per-stage timing aggregates into
    /// [`MethodResult::stage_timings`] (an aggregate sink: histograms only,
    /// no event buffering). Timings are diagnostics; every other result
    /// field is identical with tracing on or off.
    pub trace: bool,
    /// How user calls are treated: inline the callee body (the default,
    /// the paper's behaviour) or apply bottom-up ψ-summaries at call sites.
    pub interproc: InterprocMode,
    /// Shared summary table for summary mode. `None` gives each method a
    /// private table; a shared [`Arc`] lets α-equivalent callee closures
    /// across methods reuse each other's inference.
    pub summary_table: Option<Arc<SummaryTable>>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            testgen: TestGenConfig::default(),
            probes: ProbeConfig::default(),
            check_probes: 150,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            solver_cache: true,
            solver_backend: BackendKind::default(),
            incremental: true,
            timeout_ms: None,
            trace: true,
            interproc: InterprocMode::default(),
            summary_table: None,
        }
    }
}

/// Executes `check_probes` random states, returning each with the check it
/// failed at (if any). Out-of-fuel runs are dropped.
fn classified_probes(
    tp: &TypedProgram,
    func: &minilang::Func,
    cfg: &EvalConfig,
) -> Vec<(MethodEntryState, Option<CheckId>)> {
    let mut rng = StdRng::seed_from_u64(cfg.probes.rng_seed ^ 0x9E37);
    let mut out = Vec::with_capacity(cfg.check_probes);
    for _ in 0..cfg.check_probes {
        let state = random_probe(func, &mut rng);
        let result = run(tp, &func.name, &state, &InterpConfig::default());
        match result.result {
            ExecResult::OutOfFuel | ExecResult::CallDepthExceeded => {}
            ExecResult::Completed(_) => out.push((state, None)),
            ExecResult::Failed(e) => out.push((state, Some(e.check))),
        }
    }
    out
}

fn render_psi(psi: &Formula) -> String {
    let s = psi.to_string();
    if s.len() > 400 {
        format!("{}… [{} chars]", &s[..400], s.len())
    } else {
        s
    }
}

/// Runs the full protocol on one subject method.
pub fn evaluate_method(m: &SubjectMethod, cfg: &EvalConfig) -> MethodResult {
    let tp = m.compile();
    let func = m.func(&tp).clone();
    // Per-method cache: test generation, pruning and the baselines all hit
    // the same predicate families, so hit rates are high within a method.
    let cache = cfg.solver_cache.then(|| Arc::new(SolverCache::new()));
    let deadline = cfg.timeout_ms.map(Deadline::after_ms).unwrap_or_default();
    // Aggregate sink: per-stage histograms only, no per-event buffering.
    let sink = cfg.trace.then(|| Arc::new(obs::TraceSink::aggregate()));
    // One tier-counter set per method, shared by generation and pruning.
    let tiers = Arc::new(TierCounters::default());
    let mut testgen_cfg = cfg.testgen.clone();
    testgen_cfg.solver_cache = cache.clone();
    testgen_cfg.solver.deadline = deadline.clone();
    testgen_cfg.solver.trace = sink.clone();
    testgen_cfg.solver.backend = cfg.solver_backend;
    testgen_cfg.solver.tiers = tiers.clone();
    testgen_cfg.solver.incremental = cfg.incremental;
    testgen_cfg.trace = sink.clone();
    let mut infer_cfg = PreInferConfig::default();
    infer_cfg.prune.solver_cache = cache.clone();
    infer_cfg.prune.solver.deadline = deadline.clone();
    infer_cfg.prune.solver.trace = sink.clone();
    infer_cfg.prune.solver.backend = cfg.solver_backend;
    infer_cfg.prune.solver.tiers = tiers.clone();
    infer_cfg.prune.solver.incremental = cfg.incremental;
    infer_cfg.prune.trace = sink.clone();
    // Summary mode: infer each reachable callee's ψ once, bottom-up, then
    // point both the generation and the pruning executors at the resolved
    // summaries so call sites apply ψ(actuals) instead of unrolling.
    let mut summarized_callees = 0usize;
    let mut summary_table_hits = 0u64;
    let mut summary_stats = None;
    if cfg.interproc == InterprocMode::Summary {
        let table = cfg.summary_table.clone().unwrap_or_default();
        let build_cfg = SummaryBuildConfig {
            testgen: testgen_cfg.clone(),
            prune: infer_cfg.prune.clone(),
            jobs: 1,
            stats: Default::default(),
        };
        let build = build_summaries(&tp, m.name, &table, &build_cfg);
        summarized_callees = build.summarized.len();
        summary_table_hits = build.table_hits;
        summary_stats = Some(build.resolved.stats.clone());
        if !build.resolved.is_empty() {
            testgen_cfg.concolic.summaries = Some(build.resolved.clone());
            infer_cfg.prune.concolic.summaries = Some(build.resolved);
        }
    }
    let suite = generate_tests(&tp, m.name, &testgen_cfg);
    let coverage = suite.coverage_percent(&func);
    // Program-wide: a triggered ACL may live inside a callee (reached
    // through inlining or reported through a summary application).
    let sites = program_check_sites(tp.program());
    let probes = classified_probes(&tp, &func, cfg);
    let mut acls = Vec::new();
    for acl in suite.triggered_acls() {
        let Some(site) = sites.iter().find(|s| s.id == acl) else { continue };
        let truth_alpha = m.truth_alpha(&tp, acl);
        let truth_psi = truth_alpha.as_ref().map(|a| a.negated());
        let quantified_target = m.truth_quantified(&tp, acl);
        let (pass, fail) = suite.partition(acl);
        // The checking set: the shared suite plus execution-classified
        // probes (the paper's "insert and re-run Pex" validation).
        let mut pass_states: Vec<&MethodEntryState> = pass.iter().map(|r| &r.state).collect();
        let mut fail_states: Vec<&MethodEntryState> = fail.iter().map(|r| &r.state).collect();
        for (state, failed_at) in &probes {
            if *failed_at == Some(acl) {
                fail_states.push(state);
            } else {
                pass_states.push(state);
            }
        }

        let score = |psi: &Formula, quantified: bool| -> ApproachResult {
            let q: PrecondQuality = evaluate_precondition(
                psi,
                &func,
                &pass_states,
                &fail_states,
                truth_psi.as_ref(),
                &cfg.probes,
            );
            ApproachResult {
                sufficient: q.sufficient,
                necessary: q.necessary,
                correct: q.correct,
                complexity: q.complexity,
                relative_complexity: q.relative_complexity,
                quantified,
                psi: render_psi(psi),
            }
        };

        let preinfer = infer_precondition(&tp, m.name, acl, &suite, &infer_cfg)
            .map(|inf| score(&inf.precondition.psi, inf.precondition.quantified))
            .unwrap_or_else(|| score(&Formula::t(), false));
        let fixit = infer_fixit(acl, &suite)
            .map(|p| score(&p.psi, p.psi.is_quantified()))
            .unwrap_or_else(|| score(&Formula::t(), false));
        let dysy = infer_dysy(acl, &suite)
            .map(|p| score(&p.psi, p.psi.is_quantified()))
            .unwrap_or_else(|| score(&Formula::t(), false));

        acls.push(AclResult {
            namespace: m.namespace.to_string(),
            subject: m.subject.to_string(),
            method: m.name.to_string(),
            kind: acl.kind.to_string(),
            loop_pos_label: site.loop_pos.to_string(),
            loop_pos: site.loop_pos,
            quantified_target,
            preinfer,
            fixit,
            dysy,
        });
    }
    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let stage_timings = sink
        .as_ref()
        .map(|s| {
            s.stages()
                .filter(|(_, snap)| snap.count > 0)
                .map(|(stage, snap)| StageTiming {
                    stage: stage.label(),
                    count: snap.count,
                    total_us: snap.total_us,
                    mean_us: snap.mean_us,
                    p50_us: snap.p50_us,
                    p90_us: snap.p90_us,
                    p99_us: snap.p99_us,
                })
                .collect()
        })
        .unwrap_or_default();
    MethodResult {
        namespace: m.namespace.to_string(),
        subject: m.subject.to_string(),
        method: m.name.to_string(),
        coverage_percent: coverage,
        tests: suite.len(),
        solver_cache_hits: cache_stats.hits,
        solver_cache_misses: cache_stats.misses,
        timed_out: deadline.expired(),
        stage_timings,
        solver_tiers: tiers.snapshot(),
        interproc: cfg.interproc.label(),
        summarized_callees,
        summary_table_hits,
        summary_applies: summary_stats.as_ref().map(|s| s.applies()).unwrap_or(0),
        summary_fallbacks: summary_stats.as_ref().map(|s| s.fallbacks()).unwrap_or(0),
        acls,
    }
}

/// Runs the protocol over a set of methods, fanning methods across
/// `cfg.jobs` worker threads. Methods are evaluated independently (each
/// with its own suite, probes, and solver cache), so the results are
/// identical for any thread count; output order follows `methods`.
pub fn evaluate_corpus(methods: &[SubjectMethod], cfg: &EvalConfig) -> Vec<MethodResult> {
    map_parallel(methods, cfg.jobs, |m| evaluate_method(m, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end sanity on a handful of methods spanning the phenomena:
    /// a plain null case, a quantified existential case, and a guard case
    /// where FixIt loses necessity.
    #[test]
    fn spot_check_three_methods() {
        let cfg = EvalConfig::default();
        let all = subjects::all_subjects();

        let bubble = all.iter().find(|m| m.name == "bubble_sort").unwrap();
        let r = evaluate_method(bubble, &cfg);
        assert!(r.coverage_percent > 50.0);
        let null_acl = r.acls.iter().find(|a| a.kind == "NullReference").unwrap();
        assert!(null_acl.preinfer.both(), "psi = {}", null_acl.preinfer.psi);
        assert_eq!(null_acl.preinfer.correct, Some(true), "psi = {}", null_acl.preinfer.psi);

        let inverse = all.iter().find(|m| m.name == "inverse_sum").unwrap();
        let r = evaluate_method(inverse, &cfg);
        let div_acl = r.acls.iter().find(|a| a.kind == "DivideByZero").unwrap();
        assert_eq!(div_acl.quantified_target, Some(true));
        assert!(div_acl.preinfer.quantified, "psi = {}", div_acl.preinfer.psi);
        assert!(div_acl.preinfer.both(), "psi = {}", div_acl.preinfer.psi);
        assert!(!div_acl.fixit.quantified);

        let guarded = all.iter().find(|m| m.name == "guarded_div").unwrap();
        let r = evaluate_method(guarded, &cfg);
        let acl = r.acls.iter().find(|a| a.kind == "DivideByZero").unwrap();
        assert!(acl.preinfer.both(), "psi = {}", acl.preinfer.psi);
        assert_eq!(acl.preinfer.correct, Some(true), "psi = {}", acl.preinfer.psi);
        assert!(!acl.fixit.necessary, "FixIt loses the guard: psi = {}", acl.fixit.psi);
    }
}
