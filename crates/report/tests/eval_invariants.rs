//! Invariants of the evaluation harness itself, checked on corpus slices.

use report::{evaluate_method, Approach, EvalConfig};

fn slice(names: &[&str]) -> Vec<subjects::SubjectMethod> {
    subjects::all_subjects().into_iter().filter(|m| names.contains(&m.name)).collect()
}

/// Every triggered, annotated ACL gets a relative complexity exactly when it
/// gets a correctness verdict, and #Both never exceeds min(#Suff, #Nece).
#[test]
fn score_consistency() {
    let cfg = EvalConfig::default();
    for m in slice(&["queue_front", "median_of_three", "requires_range", "inverse_sum"]) {
        let r = evaluate_method(&m, &cfg);
        assert!(!r.acls.is_empty(), "{} triggered nothing", m.name);
        for acl in &r.acls {
            for ap in Approach::ALL {
                let a = acl.of(ap);
                assert_eq!(
                    a.correct.is_some(),
                    a.relative_complexity.is_some(),
                    "{}: correctness and relative complexity must come together",
                    m.name
                );
                assert!(a.both() <= (a.sufficient && a.necessary));
            }
        }
    }
}

/// Coverage is a percentage and test counts are positive.
#[test]
fn coverage_and_counts_sane() {
    let cfg = EvalConfig::default();
    for m in slice(&["bubble_sort", "safe_div"]) {
        let r = evaluate_method(&m, &cfg);
        assert!(r.coverage_percent > 0.0 && r.coverage_percent <= 100.0);
        assert!(r.tests > 0);
    }
}

/// The evaluation is deterministic: two runs produce identical scores.
#[test]
fn evaluation_is_deterministic() {
    let cfg = EvalConfig::default();
    let m = slice(&["guarded_div"]).pop().unwrap();
    let a = evaluate_method(&m, &cfg);
    let b = evaluate_method(&m, &cfg);
    let fmt = |r: &report::MethodResult| {
        r.acls
            .iter()
            .map(|x| {
                format!(
                    "{}:{}:{}:{:?}|{}:{}|{}:{}",
                    x.kind,
                    x.preinfer.sufficient,
                    x.preinfer.necessary,
                    x.preinfer.correct,
                    x.fixit.sufficient,
                    x.fixit.necessary,
                    x.dysy.sufficient,
                    x.dysy.necessary,
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    };
    assert_eq!(fmt(&a), fmt(&b));
}

/// Quantified targets only ever appear on ACLs with a ground truth, and
/// FixIt never infers a quantifier anywhere.
#[test]
fn quantifier_bookkeeping() {
    let cfg = EvalConfig::default();
    for m in slice(&["inverse_sum", "all_equal_42", "total_key_length"]) {
        let r = evaluate_method(&m, &cfg);
        for acl in &r.acls {
            if acl.quantified_target.is_some() {
                assert!(acl.preinfer.correct.is_some(), "{}: annotated ⇒ scored", m.name);
            }
            assert!(!acl.fixit.quantified, "{}: FixIt cannot quantify", m.name);
        }
        assert!(
            r.acls.iter().any(|a| a.quantified_target == Some(true)),
            "{} is a collection-element subject",
            m.name
        );
    }
}
